// Topology report: an lscpu-style dump of any modelled machine,
// including the SG2042's interleaved NUMA core numbering that the paper
// discovered and exploited for thread placement.
//
//   ./topology_report [machine | file.ini]
// Export a template with: ./topology_report --export sg2042 > my.ini
#include <iostream>
#include <string>

#include <fstream>
#include <sstream>

#include "machine/descriptor.hpp"
#include "machine/serialize.hpp"
#include "machine/placement.hpp"
#include "report/table.hpp"

namespace {

sgp::machine::MachineDescriptor pick_machine(const std::string& name) {
  using namespace sgp::machine;
  if (name.size() > 4 && name.compare(name.size() - 4, 4, ".ini") == 0) {
    std::ifstream f(name);
    if (!f) throw std::invalid_argument("cannot open " + name);
    std::ostringstream ss;
    ss << f.rdbuf();
    return from_ini(ss.str());
  }
  if (name == "sg2042") return sg2042();
  if (name == "rome") return amd_rome();
  if (name == "broadwell") return intel_broadwell();
  if (name == "icelake") return intel_icelake();
  if (name == "sandybridge") return intel_sandybridge();
  if (name == "visionfive1") return visionfive_v1();
  if (name == "visionfive2") return visionfive_v2();
  throw std::invalid_argument("unknown machine: " + name);
}

std::string id_ranges(const std::vector<int>& ids) {
  std::string out;
  std::size_t i = 0;
  while (i < ids.size()) {
    std::size_t j = i;
    while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1) ++j;
    if (!out.empty()) out += ",";
    out += std::to_string(ids[i]);
    if (j > i) out += "-" + std::to_string(ids[j]);
    i = j + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;

  if (argc == 3 && std::string(argv[1]) == "--export") {
    std::cout << machine::to_ini(pick_machine(argv[2]));
    return 0;
  }
  const auto m = pick_machine(argc > 1 ? argv[1] : "sg2042");
  m.validate();

  std::cout << "Machine:        " << m.name << "\n";
  std::cout << "Cores:          " << m.num_cores << " @ "
            << m.core.clock_ghz << " GHz ("
            << (m.core.out_of_order ? "out-of-order" : "in-order")
            << ", decode " << m.core.decode_width << ")\n";
  if (m.core.vector) {
    std::cout << "Vector:         " << m.core.vector->isa << ", "
              << m.core.vector->width_bits << "-bit, FP32 "
              << (m.core.vector->fp32 ? "yes" : "no") << ", FP64 "
              << (m.core.vector->fp64 ? "yes" : "no") << "\n";
  } else {
    std::cout << "Vector:         none\n";
  }
  std::cout << "L1d:            " << m.l1d.size_bytes / 1024
            << " KB private\n";
  std::cout << "L2:             " << m.l2.size_bytes / 1024
            << " KB shared by " << m.l2.shared_by << " core(s)\n";
  if (m.l3.present()) {
    std::cout << "L3:             " << m.l3.size_bytes / (1024 * 1024)
              << " MB shared by " << m.l3.shared_by << " core(s)"
              << (m.l3_memory_side ? " (memory-side system cache)" : "")
              << "\n";
  } else {
    std::cout << "L3:             none\n";
  }
  std::cout << "Memory:         " << report::Table::num(m.total_mem_bw_gbs(), 0)
            << " GB/s sustained over " << m.numa.size()
            << " NUMA region(s)\n\n";

  report::Table numa({"NUMA region", "core ids", "controllers", "GB/s"});
  for (std::size_t r = 0; r < m.numa.size(); ++r) {
    numa.add_row({std::to_string(r), id_ranges(m.numa[r].cores),
                  std::to_string(m.numa[r].controllers),
                  report::Table::num(m.numa[r].mem_bw_gbs, 1)});
  }
  std::cout << numa.render() << "\n";

  if (m.name.find("SG2042") != std::string::npos) {
    std::cout
        << "Note the interleaved numbering: each region holds two\n"
           "non-adjacent blocks of eight core ids. Block placement of 32\n"
           "threads therefore lands on just two regions (two memory\n"
           "controllers) -- the Table 1 pathology in the paper.\n\n";
  }

  std::cout << "Example placements of 8 threads:\n";
  report::Table pl({"policy", "cores"});
  for (const auto p : machine::all_placements) {
    if (m.num_cores < 8) break;
    std::vector<int> cores = machine::assign_cores(m, p, 8);
    std::string s;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(cores[i]);
    }
    pl.add_row({std::string(machine::to_string(p)), s});
  }
  std::cout << pl.render();
  return 0;
}
