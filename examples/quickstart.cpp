// Quickstart: run a few kernels natively (really executing the loops),
// then ask the performance model what the same kernels would do on the
// SG2042 and a modern x86 CPU.
//
//   ./quickstart [size_factor]
#include <cstdlib>
#include <iostream>

#include "experiments/experiments.hpp"
#include "kernels/register_all.hpp"
#include "native/suite_runner.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace sgp;

  core::RunParams rp;
  rp.size_factor = argc > 1 ? std::atof(argv[1]) : 0.05;
  rp.rep_factor = 0.02;
  rp.num_threads = 2;

  const auto registry = kernels::make_registry();
  native::SuiteRunner runner(registry, rp);

  std::cout << "== Native execution (this machine, " << rp.num_threads
            << " threads, size factor " << rp.size_factor << ") ==\n";
  report::Table native_table(
      {"kernel", "class", "precision", "reps", "ms/rep", "checksum"});
  for (const char* name : {"TRIAD", "DAXPY", "GEMM", "FIR", "JACOBI_2D"}) {
    for (const auto prec :
         {core::Precision::FP32, core::Precision::FP64}) {
      const auto rec = runner.run_one(name, prec);
      native_table.add_row(
          {rec.name, std::string(core::to_string(rec.group)),
           std::string(core::to_string(prec)), std::to_string(rec.reps),
           report::Table::num(rec.seconds_per_rep() * 1e3, 3),
           report::Table::num(static_cast<double>(rec.checksum), 4)});
    }
  }
  std::cout << native_table.render() << "\n";

  std::cout << "== Model estimates (full problem sizes) ==\n";
  const sim::Simulator sg(machine::sg2042());
  const sim::Simulator rome(machine::amd_rome());
  report::Table model_table({"kernel", "SG2042 1c FP32 ms",
                             "SG2042 32c FP32 ms", "Rome 64c FP32 ms",
                             "code path on C920"});
  for (const char* name : {"TRIAD", "DAXPY", "GEMM", "FIR", "JACOBI_2D"}) {
    core::KernelSignature sig;
    for (const auto& s : kernels::all_signatures()) {
      if (s.name == name) sig = s;
    }
    sim::SimConfig one;
    one.precision = core::Precision::FP32;
    sim::SimConfig many = one;
    many.nthreads = 32;
    many.placement = machine::Placement::ClusterCyclic;
    sim::SimConfig rome_cfg = one;
    rome_cfg.nthreads = 64;
    const auto bd = sg.run(sig, one);
    model_table.add_row(
        {name, report::Table::num(bd.total_s * 1e3, 2),
         report::Table::num(sg.seconds(sig, many) * 1e3, 2),
         report::Table::num(rome.seconds(sig, rome_cfg) * 1e3, 2),
         bd.note_string(sg.machine().name)});
  }
  std::cout << model_table.render() << "\n";

  std::cout << "Next steps: see examples/placement_explorer and the\n"
               "bench/ binaries, which regenerate every table and figure\n"
               "of the paper.\n";
  return 0;
}
