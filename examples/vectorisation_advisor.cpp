// Vectorisation advisor: per kernel, report which compiler can
// auto-vectorise it, the predicted benefit of VLS/VLA code on the
// SG2042, and a recommendation -- the kernel-by-kernel methodology the
// paper recommends in Section 3.2.
//
//   ./vectorisation_advisor [kernel-name]
#include <iostream>
#include <string>

#include "compiler/model.hpp"
#include "kernels/register_all.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

struct Advice {
  double gcc_speedup = 1.0;        // vector-on vs scalar, GCC VLS
  double clang_vls_speedup = 1.0;  // vs GCC baseline
  double clang_vla_speedup = 1.0;
  std::string recommendation;
};

Advice advise(const sgp::core::KernelSignature& sig,
              const sgp::sim::Simulator& sim) {
  using namespace sgp;
  sim::SimConfig scalar, gcc, clang_vls, clang_vla;
  scalar.precision = gcc.precision = clang_vls.precision =
      clang_vla.precision = core::Precision::FP32;
  scalar.vector_mode = core::VectorMode::Scalar;
  gcc.compiler = core::CompilerId::Gcc;
  clang_vls.compiler = clang_vla.compiler = core::CompilerId::Clang;
  clang_vla.vector_mode = core::VectorMode::VLA;

  Advice a;
  const double t_scalar = sim.seconds(sig, scalar);
  const double t_gcc = sim.seconds(sig, gcc);
  a.gcc_speedup = t_scalar / t_gcc;
  a.clang_vls_speedup = t_gcc / sim.seconds(sig, clang_vls);
  a.clang_vla_speedup = t_gcc / sim.seconds(sig, clang_vla);

  if (!sig.gcc.vectorizes && !sig.clang.vectorizes) {
    a.recommendation = "scalar only (neither compiler vectorises this)";
  } else if (a.clang_vls_speedup > 1.05) {
    a.recommendation =
        "Clang VLS via rvv-rollback (" +
        report::Table::num(a.clang_vls_speedup, 2) + "x over GCC)";
  } else if (a.clang_vls_speedup < 0.95) {
    a.recommendation = "XuanTie GCC (Clang path is slower here)";
  } else {
    a.recommendation = "either toolchain; GCC avoids the rollback step";
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;

  const sim::Simulator sim(machine::sg2042());
  const std::string filter = argc > 1 ? argv[1] : "";

  std::cout
      << "Vectorisation advisor for the SG2042 (C920, RVV v0.7.1, FP32)\n"
      << "GCC path = XuanTie GCC 8.4 VLS; Clang paths require the RVV\n"
      << "v1.0 -> v0.7.1 rollback tool.\n\n";

  report::Table t({"kernel", "GCC vec?", "Clang vec?", "vec/scalar",
                   "ClangVLS/GCC", "ClangVLA/GCC", "recommendation"});
  int shown = 0;
  for (const auto& sig : kernels::all_signatures()) {
    if (!filter.empty() && sig.name != filter) continue;
    const auto a = advise(sig, sim);
    auto facts = [](const core::VectorizationFacts& f) -> std::string {
      if (!f.vectorizes) return "no";
      return f.runtime_vector_path ? "yes" : "yes (scalar at runtime)";
    };
    t.add_row({sig.name, facts(sig.gcc), facts(sig.clang),
               report::Table::num(a.gcc_speedup, 2),
               report::Table::num(a.clang_vls_speedup, 2),
               report::Table::num(a.clang_vla_speedup, 2),
               a.recommendation});
    ++shown;
  }
  if (shown == 0) {
    std::cerr << "unknown kernel '" << filter << "'\n";
    return 1;
  }
  std::cout << t.render();
  return 0;
}
