// Placement explorer: sweep thread counts and placement policies on any
// modelled machine and print the scaling table -- the Section 3.2
// methodology of the paper as a reusable tool.
//
//   ./placement_explorer [machine] [precision]
//     machine:   sg2042 (default) | rome | broadwell | icelake |
//                sandybridge | visionfive2
//     precision: fp32 (default) | fp64
#include <iostream>
#include <map>
#include <string>

#include "kernels/register_all.hpp"
#include "report/ratio.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

sgp::machine::MachineDescriptor pick_machine(const std::string& name) {
  using namespace sgp::machine;
  if (name == "sg2042") return sg2042();
  if (name == "rome") return amd_rome();
  if (name == "broadwell") return intel_broadwell();
  if (name == "icelake") return intel_icelake();
  if (name == "sandybridge") return intel_sandybridge();
  if (name == "visionfive2") return visionfive_v2();
  throw std::invalid_argument("unknown machine: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;

  const std::string machine_name = argc > 1 ? argv[1] : "sg2042";
  const std::string prec_name = argc > 2 ? argv[2] : "fp32";
  const auto m = pick_machine(machine_name);
  const auto prec = prec_name == "fp64" ? core::Precision::FP64
                                        : core::Precision::FP32;

  const sim::Simulator simulator(m);
  const auto sigs = kernels::all_signatures();

  std::cout << "Placement exploration on " << m.name << " ("
            << core::to_string(prec) << ", " << m.num_cores
            << " cores)\n\n";

  for (const auto placement : machine::all_placements) {
    std::cout << "-- placement: " << machine::to_string(placement)
              << " --\n";
    report::Table t({"threads", "speedup (suite avg)", "parallel eff",
                     "best class", "worst class"});

    // Serial baseline per kernel.
    std::map<std::string, double> t1;
    sim::SimConfig cfg;
    cfg.precision = prec;
    cfg.placement = placement;
    for (const auto& sig : sigs) t1[sig.name] = simulator.seconds(sig, cfg);

    for (int threads = 2; threads <= m.num_cores; threads *= 2) {
      cfg.nthreads = threads;
      std::map<core::Group, double> group_sum;
      std::map<core::Group, int> group_n;
      double sum = 0.0;
      for (const auto& sig : sigs) {
        const double su = t1[sig.name] / simulator.seconds(sig, cfg);
        sum += su;
        group_sum[sig.group] += su;
        ++group_n[sig.group];
      }
      const double avg = sum / static_cast<double>(sigs.size());
      core::Group best = core::Group::Basic, worst = core::Group::Basic;
      double best_v = -1.0, worst_v = 1e30;
      for (const auto g : core::all_groups) {
        const double v = group_sum[g] / group_n[g];
        if (v > best_v) {
          best_v = v;
          best = g;
        }
        if (v < worst_v) {
          worst_v = v;
          worst = g;
        }
      }
      t.add_row({std::to_string(threads), report::Table::num(avg, 2),
                 report::Table::num(
                     report::parallel_efficiency(avg, threads), 2),
                 std::string(core::to_string(best)) + " (" +
                     report::Table::num(best_v, 1) + "x)",
                 std::string(core::to_string(worst)) + " (" +
                     report::Table::num(worst_v, 1) + "x)"});
    }
    std::cout << t.render() << "\n";
  }

  std::cout << "Reading the tables: on the SG2042, cluster-aware cyclic\n"
               "placement wins up to 32 threads because it spreads work\n"
               "over all four memory controllers and keeps one active\n"
               "core per 1 MB L2 cluster (paper, Section 3.2).\n";
  return 0;
}
