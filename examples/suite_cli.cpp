// suite_cli: a RAJAPerf-style command-line driver for the native suite.
// Runs kernels for real on this machine and prints per-kernel timings,
// checksums, outcomes and per-class summaries. Long campaigns survive
// misbehaving kernels: with --keep-going every kernel ends in a typed
// outcome (ok / failed / timed-out / skipped / corrupt-checksum) and the
// run continues.
//
//   ./suite_cli [options]
//     --group <name>        run one class (Algorithm, Apps, Basic, Lcals,
//                           Polybench, Stream); default: all
//     --kernel <name>       run one kernel (repeatable via comma list)
//     --precision <p>       fp32 | fp64 | both (default both)
//     --threads <n>         worker threads (default 1)
//     --size-factor <f>     problem size multiplier (default 0.05)
//     --rep-factor <f>      rep count multiplier (default 0.05)
//     --csv <path>          also write a CSV (includes status columns)
//     --keep-going          record failures and continue
//     --kernel-timeout <s>  per-kernel soft deadline, seconds (0 = off)
//     --retries <n>         retry failing kernels up to n more times
//     --backoff-ms <ms>     initial retry backoff (default 10, doubles)
//     --backoff-jitter <j>  deterministic retry jitter in [0,1), spreads
//                           backoffs by +-j (default 0 = exact doubling)
//     --quarantine <list>   comma list of kernels to skip
//     --inject <plan>       fault plan, e.g. "MUL:throw,DOT:nan,
//                           TRIAD:delay:250,COPY:throw:1" (see
//                           docs/RESILIENCE.md for the grammar)
//     --inject-seed <n>     seed for probabilistic fault specs
//     --checkpoint <file>   durable checkpoint: completed-ok kernel runs
//                           are flushed after every kernel
//                           (write-temp-then-rename); an interrupted run
//                           restarted with the same flag and params
//                           replays only the missing kernels. A corrupt
//                           checkpoint is quarantined and the run starts
//                           cold — never fatal.
//     --inject-io <plan>    fault plan armed at the checkpoint I/O sites
//                           persist.write / persist.read /
//                           persist.rename (kinds torn | enospc |
//                           bitflip | renamefail), separate from
//                           --inject so kernel wildcards never hit disk
//     --trace <file>        write a Chrome trace_event JSON (open in
//                           about:tracing or Perfetto)
//     --metrics <file>      write a run manifest + metrics snapshot
//     --machine <name>      simulated mode: instead of running kernels
//                           natively, price the selected suite on the
//                           named machine descriptor through the sweep
//                           engine (machine::shared_registry() resolves
//                           the name; unknown names exit 64 with a
//                           did-you-mean hint). Incompatible with the
//                           native-execution flags (--checkpoint,
//                           --inject*, --retries, ...).
//     --machine-dir <dir>   register every *.ini machine pack in <dir>
//                           into the registry before resolving
//                           --machine (see docs/MACHINES.md)
//
// Exit codes: 0 = all kernels ok (or skipped), 1 = completed with
// partial failures, 2 = fatal error, 64 = usage error.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/fingerprint.hpp"
#include "engine/persist.hpp"
#include "kernels/register_all.hpp"
#include "machine/registry.hpp"
#include "native/suite_runner.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "resilience/fault_injector.hpp"
#include "serve/json.hpp"

namespace {

using namespace sgp;

struct Options {
  std::optional<core::Group> group;
  std::vector<std::string> kernels;
  std::vector<core::Precision> precisions{core::Precision::FP32,
                                          core::Precision::FP64};
  core::RunParams rp;
  native::RunPolicy policy;
  std::optional<std::string> csv_path;
  std::optional<resilience::FaultPlan> fault_plan;
  std::uint64_t inject_seed = 4242u;
  std::optional<std::string> checkpoint_path;
  std::optional<resilience::FaultPlan> io_fault_plan;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> machine;
  std::vector<std::string> machine_dirs;
};

std::optional<core::Group> parse_group(const std::string& s) {
  for (const auto g : core::all_groups) {
    if (s == core::to_string(g)) return g;
  }
  return std::nullopt;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.rp.size_factor = 0.05;
  opt.rp.rep_factor = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    auto next_int = [&]() {
      const auto v = next();
      try {
        std::size_t pos = 0;
        const int x = std::stoi(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return x;
      } catch (const std::exception&) {
        throw std::invalid_argument("bad value '" + v + "' for " + arg);
      }
    };
    auto next_double = [&]() {
      const auto v = next();
      try {
        std::size_t pos = 0;
        const double x = std::stod(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return x;
      } catch (const std::exception&) {
        throw std::invalid_argument("bad value '" + v + "' for " + arg);
      }
    };
    if (arg == "--group") {
      const auto v = next();
      opt.group = parse_group(v);
      if (!opt.group) throw std::invalid_argument("unknown group " + v);
    } else if (arg == "--kernel") {
      for (auto& k : split_commas(next())) opt.kernels.push_back(k);
    } else if (arg == "--precision") {
      const auto v = next();
      if (v == "fp32") {
        opt.precisions = {core::Precision::FP32};
      } else if (v == "fp64") {
        opt.precisions = {core::Precision::FP64};
      } else if (v != "both") {
        throw std::invalid_argument("unknown precision " + v);
      }
    } else if (arg == "--threads") {
      opt.rp.num_threads = next_int();
    } else if (arg == "--size-factor") {
      opt.rp.size_factor = next_double();
    } else if (arg == "--rep-factor") {
      opt.rp.rep_factor = next_double();
    } else if (arg == "--csv") {
      opt.csv_path = next();
    } else if (arg == "--keep-going") {
      opt.policy.keep_going = true;
    } else if (arg == "--kernel-timeout") {
      // Validated here, at parse time: a negative (or NaN) timeout is a
      // usage error (exit 64), not a fatal runtime error later.
      const double t = next_double();
      if (!(t >= 0.0)) {
        throw std::invalid_argument("bad value '" + std::to_string(t) +
                                    "' for " + arg);
      }
      opt.policy.kernel_timeout_s = t;
    } else if (arg == "--retries") {
      // Non-negative integer, validated at parse time — "--retries -2"
      // used to flow through as max_attempts == -1 and only die inside
      // the runner (exit 2 instead of the usage exit 64).
      const auto v = next();
      const auto n = serve::parse_u64(v);
      if (!n || *n > 1000000) {
        throw std::invalid_argument("bad value '" + v + "' for " + arg);
      }
      opt.policy.retry.max_attempts = 1 + static_cast<int>(*n);
    } else if (arg == "--backoff-ms") {
      opt.policy.retry.backoff_initial_ms = next_double();
    } else if (arg == "--backoff-jitter") {
      opt.policy.retry.jitter = next_double();
      opt.policy.retry.validate();
    } else if (arg == "--quarantine") {
      for (auto& k : split_commas(next())) {
        opt.policy.quarantine.push_back(k);
      }
    } else if (arg == "--inject") {
      opt.fault_plan = resilience::FaultPlan::parse(next());
    } else if (arg == "--inject-seed") {
      // Full-range uint64 seed (shared parser with the sgp-serve
      // request validator). std::stoi + static_cast<unsigned> used to
      // wrap negatives silently and reject any seed above INT_MAX.
      const auto v = next();
      const auto seed = serve::parse_u64(v);
      if (!seed) {
        throw std::invalid_argument("bad value '" + v + "' for " + arg);
      }
      opt.inject_seed = *seed;
    } else if (arg == "--checkpoint") {
      opt.checkpoint_path = next();
    } else if (arg == "--inject-io") {
      opt.io_fault_plan = resilience::FaultPlan::parse(next());
    } else if (arg == "--trace") {
      opt.trace_path = next();
    } else if (arg == "--metrics") {
      opt.metrics_path = next();
    } else if (arg == "--machine") {
      opt.machine = next();
    } else if (arg == "--machine-dir") {
      opt.machine_dirs.push_back(next());
    } else {
      throw std::invalid_argument("unknown option " + arg);
    }
  }
  if (opt.machine) {
    // Simulated mode prices the suite analytically; flags that only
    // make sense for native execution are a usage error, not silently
    // ignored.
    if (opt.checkpoint_path || opt.fault_plan || opt.io_fault_plan ||
        opt.policy.keep_going || opt.policy.retry.max_attempts > 1 ||
        opt.policy.kernel_timeout_s > 0.0 ||
        !opt.policy.quarantine.empty()) {
      throw std::invalid_argument(
          "--machine (simulated mode) is incompatible with the native "
          "execution flags (--checkpoint, --inject, --inject-io, "
          "--keep-going, --retries, --kernel-timeout, --quarantine)");
    }
  }
  // Usage errors must surface as exit 64 from here, not exit 2 from the
  // SuiteRunner constructor (which validates again as a backstop).
  opt.policy.validate();
  return opt;
}

/// Fingerprint of everything that changes what a kernel run means; a
/// checkpoint from different params must not be resumed.
std::uint64_t params_fingerprint(const core::RunParams& rp) {
  engine::Fnv1a fp;
  fp.i32(rp.num_threads);
  fp.f64(rp.size_factor);
  fp.f64(rp.rep_factor);
  return fp.digest();
}

// ------------------------------------------------ kernel checkpoint --
//
// The checkpoint is ONE segment file in the engine/persist.hpp format
// (versioned header, per-entry FNV checksums), rewritten atomically
// after every completed kernel. Payload 0 is a params-fingerprint
// header; each further payload is one completed-ok KernelRunRecord.
// Failed/skipped runs are never persisted, so a resume re-runs them.

constexpr std::uint32_t kCkptParamsTag = 1;
constexpr std::uint32_t kCkptRecordTag = 2;

void ckpt_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof v);
  std::memcpy(out.data() + n, &v, sizeof v);
}

void ckpt_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof v);
  std::memcpy(out.data() + n, &v, sizeof v);
}

void ckpt_f64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  ckpt_u64(out, bits);
}

void ckpt_str(std::vector<std::byte>& out, const std::string& s) {
  ckpt_u32(out, static_cast<std::uint32_t>(s.size()));
  const std::size_t n = out.size();
  out.resize(n + s.size());
  std::memcpy(out.data() + n, s.data(), s.size());
}

/// Bounds-checked little reader over a checkpoint payload.
struct CkptReader {
  std::span<const std::byte> buf;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T num() {
    T v{};
    if (pos + sizeof v > buf.size()) {
      ok = false;
      return v;
    }
    std::memcpy(&v, buf.data() + pos, sizeof v);
    pos += sizeof v;
    return v;
  }

  std::string str() {
    const auto n = num<std::uint32_t>();
    if (!ok || pos + n > buf.size()) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(buf.data() + pos), n);
    pos += n;
    return s;
  }
};

std::vector<std::byte> encode_params_header(std::uint64_t fingerprint) {
  std::vector<std::byte> out;
  ckpt_u32(out, kCkptParamsTag);
  ckpt_u64(out, fingerprint);
  return out;
}

std::vector<std::byte> encode_record(const native::KernelRunRecord& rec) {
  std::vector<std::byte> out;
  ckpt_u32(out, kCkptRecordTag);
  ckpt_str(out, rec.name);
  ckpt_u32(out, static_cast<std::uint32_t>(rec.group));
  ckpt_u32(out, static_cast<std::uint32_t>(rec.precision));
  // long double narrows to double: both report surfaces (table and CSV)
  // already render the checksum through a double cast.
  ckpt_f64(out, static_cast<double>(rec.checksum));
  ckpt_f64(out, rec.seconds);
  ckpt_u64(out, rec.reps);
  ckpt_u32(out, static_cast<std::uint32_t>(rec.threads));
  ckpt_u32(out, static_cast<std::uint32_t>(rec.attempts));
  return out;
}

std::optional<native::KernelRunRecord> decode_record(
    std::span<const std::byte> payload) {
  CkptReader r{payload};
  if (r.num<std::uint32_t>() != kCkptRecordTag) return std::nullopt;
  native::KernelRunRecord rec;
  rec.name = r.str();
  const auto group = r.num<std::uint32_t>();
  const auto prec = r.num<std::uint32_t>();
  rec.checksum = r.num<double>();
  rec.seconds = r.num<double>();
  rec.reps = static_cast<std::size_t>(r.num<std::uint64_t>());
  rec.threads = static_cast<int>(r.num<std::uint32_t>());
  rec.attempts = static_cast<int>(r.num<std::uint32_t>());
  if (!r.ok || r.pos != payload.size()) return std::nullopt;
  if (group >= std::size(core::all_groups)) return std::nullopt;
  if (prec >= std::size(core::all_precisions)) return std::nullopt;
  rec.group = static_cast<core::Group>(group);
  rec.precision = static_cast<core::Precision>(prec);
  rec.outcome = resilience::Outcome::Ok;  // only ok runs are persisted
  return rec;
}

/// Completed-ok runs recovered from --checkpoint, keyed (name, prec).
using ResumedRuns =
    std::map<std::pair<std::string, core::Precision>,
             native::KernelRunRecord>;

/// Loads the checkpoint if present. A fingerprint mismatch (different
/// --threads/--size-factor/--rep-factor) discards it with a warning; a
/// corrupt file is quarantined by the loader. Never fatal.
ResumedRuns load_checkpoint(const std::string& path,
                            std::uint64_t fingerprint,
                            sgp::resilience::FaultInjector* injector) {
  ResumedRuns out;
  if (!std::filesystem::exists(path)) return out;
  bool header_ok = false;
  std::vector<native::KernelRunRecord> records;
  const auto parse = engine::load_segment_file(
      path,
      [&](std::span<const std::byte> payload) {
        CkptReader r{payload};
        const auto tag = r.num<std::uint32_t>();
        if (tag == kCkptParamsTag) {
          header_ok = r.num<std::uint64_t>() == fingerprint && r.ok;
        } else if (const auto rec = decode_record(payload)) {
          records.push_back(*rec);
        }
      },
      injector, /*warn=*/true);
  if (parse.status != engine::SegmentStatus::Ok) return out;
  if (!header_ok) {
    std::cerr << "warning: checkpoint " << path
              << " was written with different run params; starting cold\n";
    return out;
  }
  for (auto& rec : records) {
    out.emplace(std::make_pair(rec.name, rec.precision), std::move(rec));
  }
  return out;
}

/// Atomically rewrites the checkpoint with every ok record so far.
/// Failures (including injected ENOSPC / rename faults) warn and keep
/// running — losing a checkpoint must never fail the campaign.
void save_checkpoint(const std::string& path, std::uint64_t fingerprint,
                     const std::vector<native::KernelRunRecord>& records,
                     sgp::resilience::FaultInjector* injector) {
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(records.size() + 1);
  payloads.push_back(encode_params_header(fingerprint));
  for (const auto& rec : records) payloads.push_back(encode_record(rec));
  engine::write_segment_file(path, payloads, injector, /*warn=*/true);
}

/// Writes the --trace/--metrics artifacts. Throws on I/O failure or —
/// defensively — if either artifact fails its own JSON validation.
void write_observability(const Options& opt,
                         const std::map<resilience::Outcome, int>& outcomes,
                         std::uint64_t resumed_points,
                         std::uint64_t checkpoint_flushes) {
  if (opt.trace_path) {
    const std::string json = obs::Tracer::instance().chrome_trace_json();
    if (const auto err = obs::json_error(json)) {
      throw std::runtime_error("trace JSON invalid: " + *err);
    }
    std::ofstream out(*opt.trace_path, std::ios::binary);
    out << json;
    if (!out.flush()) {
      throw std::runtime_error("cannot write " + *opt.trace_path);
    }
  }
  if (opt.metrics_path) {
    obs::RunManifest man("suite_cli");
    man.add("run", "threads",
            static_cast<std::int64_t>(opt.rp.num_threads));
    man.add("run", "size_factor", opt.rp.size_factor);
    man.add("run", "rep_factor", opt.rp.rep_factor);
    man.add("run", "keep_going", opt.policy.keep_going);
    man.add("run", "kernel_timeout_s", opt.policy.kernel_timeout_s);
    {
      char buf[17] = {};
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(
                        params_fingerprint(opt.rp)));
      man.add("run", "params_fingerprint", buf);
    }
    if (opt.checkpoint_path) {
      man.add("persist", "checkpoint", *opt.checkpoint_path);
      man.add("persist", "resumed_points", resumed_points);
      man.add("persist", "flushes", checkpoint_flushes);
    }
    for (const auto& [o, n] : outcomes) {
      if (n > 0) {
        man.add("outcomes", std::string(resilience::to_string(o)),
                static_cast<std::uint64_t>(n));
      }
    }
    man.write(*opt.metrics_path, obs::registry().snapshot());
  }
}

/// Simulated mode (--machine): prices the selected kernels on a
/// registry-resolved machine descriptor through the shared sweep
/// engine, instead of executing them natively. One grid call per
/// precision; the table carries the model's time breakdown.
int run_simulated(const Options& opt) {
  const machine::MachineDescriptor* m = nullptr;
  try {
    m = &machine::shared_registry().descriptor(*opt.machine);
  } catch (const std::out_of_range& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 64;
  }
  if (opt.rp.num_threads > m->num_cores) {
    std::cerr << "error: --threads " << opt.rp.num_threads
              << " exceeds the " << m->num_cores << " cores of '"
              << *opt.machine << "'\n";
    return 64;
  }

  // Same kernel selection rules as the native path, resolved against
  // the model signatures instead of the native registry.
  std::vector<core::KernelSignature> sigs;
  const auto all = kernels::all_signatures();
  if (!opt.kernels.empty()) {
    for (const auto& name : opt.kernels) {
      const auto it = std::find_if(
          all.begin(), all.end(),
          [&](const core::KernelSignature& s) { return s.name == name; });
      if (it == all.end()) {
        std::cerr << "error: unknown kernel '" << name << "'\n";
        return 64;
      }
      sigs.push_back(*it);
    }
  } else {
    for (const auto& s : all) {
      if (!opt.group || s.group == *opt.group) sigs.push_back(s);
    }
  }

  std::vector<sim::SimConfig> cfgs;
  cfgs.reserve(opt.precisions.size());
  for (const auto prec : opt.precisions) {
    sim::SimConfig cfg;
    cfg.precision = prec;
    cfg.nthreads = opt.rp.num_threads;
    cfgs.push_back(cfg);
  }

  auto& eng = engine::shared_engine();
  const auto times = eng.run_grid(*m, sigs, cfgs);

  std::cout << "simulated suite on " << m->name << " (" << m->num_cores
            << " cores, " << opt.rp.num_threads << " threads)\n\n";
  report::Table t({"kernel", "class", "precision", "est ms/rep",
                   "est total s", "serving", "path"});
  report::CsvWriter csv({"kernel", "class", "precision", "threads",
                         "est_seconds", "compute_s", "memory_s", "sync_s",
                         "serving", "vector_path"});
  std::map<core::Group, std::pair<double, int>> class_time;
  for (std::size_t c = 0; c < cfgs.size(); ++c) {
    for (std::size_t s = 0; s < sigs.size(); ++s) {
      const auto& sig = sigs[s];
      const auto& tb = times[c * sigs.size() + s];
      const auto prec = core::to_string(cfgs[c].precision);
      t.add_row({sig.name, std::string(core::to_string(sig.group)),
                 std::string(prec),
                 report::Table::num(tb.total_s / sig.reps * 1e3, 3),
                 report::Table::num(tb.total_s, 3),
                 std::string(sim::to_string(tb.serving)),
                 tb.vector_path ? "vector" : "scalar"});
      csv.add_row({sig.name, std::string(core::to_string(sig.group)),
                   std::string(prec), std::to_string(opt.rp.num_threads),
                   report::Table::num(tb.total_s, 6),
                   report::Table::num(tb.compute_s, 6),
                   report::Table::num(tb.memory_s, 6),
                   report::Table::num(tb.sync_s, 6),
                   std::string(sim::to_string(tb.serving)),
                   tb.vector_path ? "1" : "0"});
      auto& [sum, n] = class_time[sig.group];
      sum += tb.total_s;
      ++n;
    }
  }
  std::cout << t.render() << "\n";

  report::Table summary({"class", "kernels x precisions", "est total s"});
  for (const auto& [g, v] : class_time) {
    summary.add_row({std::string(core::to_string(g)),
                     std::to_string(v.second),
                     report::Table::num(v.first, 3)});
  }
  std::cout << summary.render();

  if (opt.csv_path) {
    try {
      csv.write(*opt.csv_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 64;
  }
  for (const auto& dir : opt.machine_dirs) {
    try {
      const auto report = machine::shared_registry().register_ini_dir(dir);
      for (const auto& err : report.errors) {
        std::cerr << "warning: machine pack " << err.file << ": "
                  << err.message << " (quarantined)\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 64;
    }
  }
  if (opt.machine) return run_simulated(opt);
  if (opt.trace_path) obs::Tracer::instance().enable();

  const auto registry = kernels::make_registry();
  std::vector<std::string> names;
  if (!opt.kernels.empty()) {
    names = opt.kernels;
  } else if (opt.group) {
    names = registry.names(*opt.group);
  } else {
    names = registry.names();
  }

  std::optional<resilience::FaultInjector> injector;
  if (opt.fault_plan) {
    injector.emplace(*opt.fault_plan, opt.inject_seed);
    opt.policy.injector = &*injector;
  }

  // A dedicated injector for the checkpoint I/O sites, so a `*`
  // wildcard in a kernel plan never corrupts the checkpoint and vice
  // versa.
  std::optional<resilience::FaultInjector> io_injector;
  if (opt.io_fault_plan) {
    io_injector.emplace(*opt.io_fault_plan, opt.inject_seed + 1);
  }
  resilience::FaultInjector* io_inj =
      io_injector ? &*io_injector : nullptr;

  const std::uint64_t ckpt_fp = params_fingerprint(opt.rp);
  ResumedRuns resumed;
  if (opt.checkpoint_path) {
    resumed = load_checkpoint(*opt.checkpoint_path, ckpt_fp, io_inj);
    if (!resumed.empty()) {
      std::cerr << "checkpoint: resuming " << resumed.size()
                << " completed kernel runs from " << *opt.checkpoint_path
                << "\n";
    }
  }
  std::vector<native::KernelRunRecord> completed_ok;
  std::uint64_t resumed_points = 0;
  std::uint64_t checkpoint_flushes = 0;

  std::optional<native::SuiteRunner> runner;
  try {
    runner.emplace(registry, opt.rp, opt.policy);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  report::Table t({"kernel", "class", "precision", "reps", "ms/rep",
                   "checksum", "status"});
  report::CsvWriter csv({"kernel", "class", "precision", "threads", "reps",
                         "seconds", "checksum", "status", "attempts",
                         "error"});
  std::map<core::Group, std::pair<double, int>> class_time;
  std::map<resilience::Outcome, int> outcome_count;

  for (const auto& name : names) {
    for (const auto prec : opt.precisions) {
      native::KernelRunRecord rec;
      const auto it = resumed.find(std::make_pair(name, prec));
      if (it != resumed.end()) {
        // Completed in a previous (interrupted) run: reuse the recorded
        // result, skip the kernel entirely.
        rec = it->second;
        ++resumed_points;
        obs::registry().counter("persist.resumed_points").add();
        completed_ok.push_back(rec);
      } else {
        try {
          rec = runner->run_one(name, prec);
        } catch (const std::out_of_range& e) {
          std::cerr << "error: " << e.what() << "\n";
          return 2;
        } catch (const std::exception& e) {
          // Strict mode: the first kernel failure is fatal.
          std::cerr << "error: kernel '" << name << "' ("
                    << core::to_string(prec) << ") failed: " << e.what()
                    << "\n";
          return 2;
        }
        if (opt.checkpoint_path && rec.ok()) {
          // Flush after every completed kernel: the checkpoint is
          // rewritten atomically, so a kill leaves either the previous
          // one or this one — both resumable.
          completed_ok.push_back(rec);
          save_checkpoint(*opt.checkpoint_path, ckpt_fp, completed_ok,
                          io_inj);
          ++checkpoint_flushes;
          obs::registry().counter("persist.flushes").add();
        }
      }
      ++outcome_count[rec.outcome];
      t.add_row({rec.name, std::string(core::to_string(rec.group)),
                 std::string(core::to_string(prec)),
                 std::to_string(rec.reps),
                 report::Table::num_or(rec.seconds_per_rep() * 1e3, 3,
                                       rec.ok()),
                 report::Table::num_or(static_cast<double>(rec.checksum), 4,
                                       rec.ok()),
                 std::string(resilience::to_string(rec.outcome))});
      csv.add_row({rec.name, std::string(core::to_string(rec.group)),
                   std::string(core::to_string(prec)),
                   std::to_string(rec.threads), std::to_string(rec.reps),
                   report::Table::num_or(rec.seconds, 6, rec.ok()),
                   report::Table::num_or(static_cast<double>(rec.checksum),
                                         6, rec.ok()),
                   std::string(resilience::to_string(rec.outcome)),
                   std::to_string(rec.attempts), rec.error});
      if (rec.ok()) {
        auto& [sum, n] = class_time[rec.group];
        sum += rec.seconds;
        ++n;
      }
    }
  }
  std::cout << t.render() << "\n";

  report::Table summary({"class", "kernels x precisions", "total s"});
  for (const auto& [g, v] : class_time) {
    summary.add_row({std::string(core::to_string(g)),
                     std::to_string(v.second),
                     report::Table::num(v.first, 3)});
  }
  std::cout << summary.render();

  int failures = 0;
  for (const auto& [o, n] : outcome_count) {
    if (resilience::is_failure(o)) failures += n;
  }
  if (failures > 0 || outcome_count[resilience::Outcome::Skipped] > 0) {
    report::Table outcomes({"outcome", "count"});
    for (const auto& [o, n] : outcome_count) {
      if (n > 0) {
        outcomes.add_row({std::string(resilience::to_string(o)),
                          std::to_string(n)});
      }
    }
    std::cout << "\n" << outcomes.render();
  }

  if (opt.csv_path) {
    try {
      csv.write(*opt.csv_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }
  if (opt.checkpoint_path) {
    std::cout << "checkpoint: " << resumed_points << " resumed, "
              << checkpoint_flushes << " flushes -> "
              << *opt.checkpoint_path << "\n";
  }
  try {
    write_observability(opt, outcome_count, resumed_points,
                        checkpoint_flushes);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return failures > 0 ? 1 : 0;
}
