// suite_cli: a RAJAPerf-style command-line driver for the native suite.
// Runs kernels for real on this machine and prints per-kernel timings,
// checksums and per-class summaries.
//
//   ./suite_cli [options]
//     --group <name>       run one class (Algorithm, Apps, Basic, Lcals,
//                          Polybench, Stream); default: all
//     --kernel <name>      run one kernel (repeatable via comma list)
//     --precision <p>      fp32 | fp64 | both (default both)
//     --threads <n>        worker threads (default 1)
//     --size-factor <f>    problem size multiplier (default 0.05)
//     --rep-factor <f>     rep count multiplier (default 0.05)
//     --csv <path>         also write a CSV
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/register_all.hpp"
#include "native/suite_runner.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace {

using namespace sgp;

struct Options {
  std::optional<core::Group> group;
  std::vector<std::string> kernels;
  std::vector<core::Precision> precisions{core::Precision::FP32,
                                          core::Precision::FP64};
  core::RunParams rp;
  std::optional<std::string> csv_path;
};

std::optional<core::Group> parse_group(const std::string& s) {
  for (const auto g : core::all_groups) {
    if (s == core::to_string(g)) return g;
  }
  return std::nullopt;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.rp.size_factor = 0.05;
  opt.rp.rep_factor = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--group") {
      const auto v = next();
      opt.group = parse_group(v);
      if (!opt.group) throw std::invalid_argument("unknown group " + v);
    } else if (arg == "--kernel") {
      std::stringstream ss(next());
      std::string item;
      while (std::getline(ss, item, ',')) opt.kernels.push_back(item);
    } else if (arg == "--precision") {
      const auto v = next();
      if (v == "fp32") {
        opt.precisions = {core::Precision::FP32};
      } else if (v == "fp64") {
        opt.precisions = {core::Precision::FP64};
      } else if (v != "both") {
        throw std::invalid_argument("unknown precision " + v);
      }
    } else if (arg == "--threads") {
      opt.rp.num_threads = std::stoi(next());
    } else if (arg == "--size-factor") {
      opt.rp.size_factor = std::stod(next());
    } else if (arg == "--rep-factor") {
      opt.rp.rep_factor = std::stod(next());
    } else if (arg == "--csv") {
      opt.csv_path = next();
    } else {
      throw std::invalid_argument("unknown option " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 64;
  }

  const auto registry = kernels::make_registry();
  std::vector<std::string> names;
  if (!opt.kernels.empty()) {
    names = opt.kernels;
  } else if (opt.group) {
    names = registry.names(*opt.group);
  } else {
    names = registry.names();
  }

  native::SuiteRunner runner(registry, opt.rp);
  report::Table t(
      {"kernel", "class", "precision", "reps", "ms/rep", "checksum"});
  report::CsvWriter csv({"kernel", "class", "precision", "threads", "reps",
                         "seconds", "checksum"});
  std::map<core::Group, std::pair<double, int>> class_time;

  for (const auto& name : names) {
    for (const auto prec : opt.precisions) {
      native::KernelRunRecord rec;
      try {
        rec = runner.run_one(name, prec);
      } catch (const std::out_of_range&) {
        std::cerr << "unknown kernel '" << name << "'\n";
        return 1;
      }
      t.add_row({rec.name, std::string(core::to_string(rec.group)),
                 std::string(core::to_string(prec)),
                 std::to_string(rec.reps),
                 report::Table::num(rec.seconds_per_rep() * 1e3, 3),
                 report::Table::num(static_cast<double>(rec.checksum), 4)});
      csv.add_row({rec.name, std::string(core::to_string(rec.group)),
                   std::string(core::to_string(prec)),
                   std::to_string(rec.threads), std::to_string(rec.reps),
                   report::Table::num(rec.seconds, 6),
                   report::Table::num(static_cast<double>(rec.checksum),
                                      6)});
      auto& [sum, n] = class_time[rec.group];
      sum += rec.seconds;
      ++n;
    }
  }
  std::cout << t.render() << "\n";

  report::Table summary({"class", "kernels x precisions", "total s"});
  for (const auto& [g, v] : class_time) {
    summary.add_row({std::string(core::to_string(g)),
                     std::to_string(v.second),
                     report::Table::num(v.first, 3)});
  }
  std::cout << summary.render();

  if (opt.csv_path) csv.write(*opt.csv_path);
  return 0;
}
