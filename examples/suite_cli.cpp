// suite_cli: a RAJAPerf-style command-line driver for the native suite.
// Runs kernels for real on this machine and prints per-kernel timings,
// checksums, outcomes and per-class summaries. Long campaigns survive
// misbehaving kernels: with --keep-going every kernel ends in a typed
// outcome (ok / failed / timed-out / skipped / corrupt-checksum) and the
// run continues.
//
//   ./suite_cli [options]
//     --group <name>        run one class (Algorithm, Apps, Basic, Lcals,
//                           Polybench, Stream); default: all
//     --kernel <name>       run one kernel (repeatable via comma list)
//     --precision <p>       fp32 | fp64 | both (default both)
//     --threads <n>         worker threads (default 1)
//     --size-factor <f>     problem size multiplier (default 0.05)
//     --rep-factor <f>      rep count multiplier (default 0.05)
//     --csv <path>          also write a CSV (includes status columns)
//     --keep-going          record failures and continue
//     --kernel-timeout <s>  per-kernel soft deadline, seconds (0 = off)
//     --retries <n>         retry failing kernels up to n more times
//     --backoff-ms <ms>     initial retry backoff (default 10, doubles)
//     --quarantine <list>   comma list of kernels to skip
//     --inject <plan>       fault plan, e.g. "MUL:throw,DOT:nan,
//                           TRIAD:delay:250,COPY:throw:1" (see
//                           docs/RESILIENCE.md for the grammar)
//     --inject-seed <n>     seed for probabilistic fault specs
//     --trace <file>        write a Chrome trace_event JSON (open in
//                           about:tracing or Perfetto)
//     --metrics <file>      write a run manifest + metrics snapshot
//
// Exit codes: 0 = all kernels ok (or skipped), 1 = completed with
// partial failures, 2 = fatal error, 64 = usage error.
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/fingerprint.hpp"
#include "kernels/register_all.hpp"
#include "native/suite_runner.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "resilience/fault_injector.hpp"

namespace {

using namespace sgp;

struct Options {
  std::optional<core::Group> group;
  std::vector<std::string> kernels;
  std::vector<core::Precision> precisions{core::Precision::FP32,
                                          core::Precision::FP64};
  core::RunParams rp;
  native::RunPolicy policy;
  std::optional<std::string> csv_path;
  std::optional<resilience::FaultPlan> fault_plan;
  unsigned inject_seed = 4242u;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
};

std::optional<core::Group> parse_group(const std::string& s) {
  for (const auto g : core::all_groups) {
    if (s == core::to_string(g)) return g;
  }
  return std::nullopt;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.rp.size_factor = 0.05;
  opt.rp.rep_factor = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    auto next_int = [&]() {
      const auto v = next();
      try {
        std::size_t pos = 0;
        const int x = std::stoi(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return x;
      } catch (const std::exception&) {
        throw std::invalid_argument("bad value '" + v + "' for " + arg);
      }
    };
    auto next_double = [&]() {
      const auto v = next();
      try {
        std::size_t pos = 0;
        const double x = std::stod(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return x;
      } catch (const std::exception&) {
        throw std::invalid_argument("bad value '" + v + "' for " + arg);
      }
    };
    if (arg == "--group") {
      const auto v = next();
      opt.group = parse_group(v);
      if (!opt.group) throw std::invalid_argument("unknown group " + v);
    } else if (arg == "--kernel") {
      for (auto& k : split_commas(next())) opt.kernels.push_back(k);
    } else if (arg == "--precision") {
      const auto v = next();
      if (v == "fp32") {
        opt.precisions = {core::Precision::FP32};
      } else if (v == "fp64") {
        opt.precisions = {core::Precision::FP64};
      } else if (v != "both") {
        throw std::invalid_argument("unknown precision " + v);
      }
    } else if (arg == "--threads") {
      opt.rp.num_threads = next_int();
    } else if (arg == "--size-factor") {
      opt.rp.size_factor = next_double();
    } else if (arg == "--rep-factor") {
      opt.rp.rep_factor = next_double();
    } else if (arg == "--csv") {
      opt.csv_path = next();
    } else if (arg == "--keep-going") {
      opt.policy.keep_going = true;
    } else if (arg == "--kernel-timeout") {
      opt.policy.kernel_timeout_s = next_double();
    } else if (arg == "--retries") {
      opt.policy.retry.max_attempts = 1 + next_int();
    } else if (arg == "--backoff-ms") {
      opt.policy.retry.backoff_initial_ms = next_double();
    } else if (arg == "--quarantine") {
      for (auto& k : split_commas(next())) {
        opt.policy.quarantine.push_back(k);
      }
    } else if (arg == "--inject") {
      opt.fault_plan = resilience::FaultPlan::parse(next());
    } else if (arg == "--inject-seed") {
      opt.inject_seed = static_cast<unsigned>(next_int());
    } else if (arg == "--trace") {
      opt.trace_path = next();
    } else if (arg == "--metrics") {
      opt.metrics_path = next();
    } else {
      throw std::invalid_argument("unknown option " + arg);
    }
  }
  return opt;
}

/// Writes the --trace/--metrics artifacts. Throws on I/O failure or —
/// defensively — if either artifact fails its own JSON validation.
void write_observability(const Options& opt,
                         const std::map<resilience::Outcome, int>& outcomes) {
  if (opt.trace_path) {
    const std::string json = obs::Tracer::instance().chrome_trace_json();
    if (const auto err = obs::json_error(json)) {
      throw std::runtime_error("trace JSON invalid: " + *err);
    }
    std::ofstream out(*opt.trace_path, std::ios::binary);
    out << json;
    if (!out.flush()) {
      throw std::runtime_error("cannot write " + *opt.trace_path);
    }
  }
  if (opt.metrics_path) {
    obs::RunManifest man("suite_cli");
    man.add("run", "threads",
            static_cast<std::int64_t>(opt.rp.num_threads));
    man.add("run", "size_factor", opt.rp.size_factor);
    man.add("run", "rep_factor", opt.rp.rep_factor);
    man.add("run", "keep_going", opt.policy.keep_going);
    man.add("run", "kernel_timeout_s", opt.policy.kernel_timeout_s);
    {
      engine::Fnv1a fp;
      fp.i32(opt.rp.num_threads);
      fp.f64(opt.rp.size_factor);
      fp.f64(opt.rp.rep_factor);
      char buf[17] = {};
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(fp.digest()));
      man.add("run", "params_fingerprint", buf);
    }
    for (const auto& [o, n] : outcomes) {
      if (n > 0) {
        man.add("outcomes", std::string(resilience::to_string(o)),
                static_cast<std::uint64_t>(n));
      }
    }
    man.write(*opt.metrics_path, obs::registry().snapshot());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 64;
  }
  if (opt.trace_path) obs::Tracer::instance().enable();

  const auto registry = kernels::make_registry();
  std::vector<std::string> names;
  if (!opt.kernels.empty()) {
    names = opt.kernels;
  } else if (opt.group) {
    names = registry.names(*opt.group);
  } else {
    names = registry.names();
  }

  std::optional<resilience::FaultInjector> injector;
  if (opt.fault_plan) {
    injector.emplace(*opt.fault_plan, opt.inject_seed);
    opt.policy.injector = &*injector;
  }

  std::optional<native::SuiteRunner> runner;
  try {
    runner.emplace(registry, opt.rp, opt.policy);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  report::Table t({"kernel", "class", "precision", "reps", "ms/rep",
                   "checksum", "status"});
  report::CsvWriter csv({"kernel", "class", "precision", "threads", "reps",
                         "seconds", "checksum", "status", "attempts",
                         "error"});
  std::map<core::Group, std::pair<double, int>> class_time;
  std::map<resilience::Outcome, int> outcome_count;

  for (const auto& name : names) {
    for (const auto prec : opt.precisions) {
      native::KernelRunRecord rec;
      try {
        rec = runner->run_one(name, prec);
      } catch (const std::out_of_range& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      } catch (const std::exception& e) {
        // Strict mode: the first kernel failure is fatal.
        std::cerr << "error: kernel '" << name << "' ("
                  << core::to_string(prec) << ") failed: " << e.what()
                  << "\n";
        return 2;
      }
      ++outcome_count[rec.outcome];
      t.add_row({rec.name, std::string(core::to_string(rec.group)),
                 std::string(core::to_string(prec)),
                 std::to_string(rec.reps),
                 report::Table::num_or(rec.seconds_per_rep() * 1e3, 3,
                                       rec.ok()),
                 report::Table::num_or(static_cast<double>(rec.checksum), 4,
                                       rec.ok()),
                 std::string(resilience::to_string(rec.outcome))});
      csv.add_row({rec.name, std::string(core::to_string(rec.group)),
                   std::string(core::to_string(prec)),
                   std::to_string(rec.threads), std::to_string(rec.reps),
                   report::Table::num_or(rec.seconds, 6, rec.ok()),
                   report::Table::num_or(static_cast<double>(rec.checksum),
                                         6, rec.ok()),
                   std::string(resilience::to_string(rec.outcome)),
                   std::to_string(rec.attempts), rec.error});
      if (rec.ok()) {
        auto& [sum, n] = class_time[rec.group];
        sum += rec.seconds;
        ++n;
      }
    }
  }
  std::cout << t.render() << "\n";

  report::Table summary({"class", "kernels x precisions", "total s"});
  for (const auto& [g, v] : class_time) {
    summary.add_row({std::string(core::to_string(g)),
                     std::to_string(v.second),
                     report::Table::num(v.first, 3)});
  }
  std::cout << summary.render();

  int failures = 0;
  for (const auto& [o, n] : outcome_count) {
    if (resilience::is_failure(o)) failures += n;
  }
  if (failures > 0 || outcome_count[resilience::Outcome::Skipped] > 0) {
    report::Table outcomes({"outcome", "count"});
    for (const auto& [o, n] : outcome_count) {
      if (n > 0) {
        outcomes.add_row({std::string(resilience::to_string(o)),
                          std::to_string(n)});
      }
    }
    std::cout << "\n" << outcomes.render();
  }

  if (opt.csv_path) {
    try {
      csv.write(*opt.csv_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }
  try {
    write_observability(opt, outcome_count);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return failures > 0 ? 1 : 0;
}
