// cluster_planner: given a kernel, how many SG2042 nodes (and which
// interconnect) does a target speedup need? Uses the distributed-memory
// model (the paper's "further work") to answer the procurement-style
// question the paper raises.
//
//   ./cluster_planner <kernel> <target-speedup>
//   e.g. ./cluster_planner JACOBI_2D 16
#include <cstdlib>
#include <iostream>

#include "distributed/dist_simulator.hpp"
#include "kernels/register_all.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace sgp;

  if (argc != 3) {
    std::cerr << "usage: cluster_planner <kernel> <target-speedup>\n";
    return 64;
  }
  const std::string kernel = argv[1];
  const double target = std::atof(argv[2]);
  if (target < 1.0) {
    std::cerr << "target speedup must be >= 1\n";
    return 64;
  }

  core::KernelSignature sig;
  bool found = false;
  for (const auto& s : kernels::all_signatures()) {
    if (s.name == kernel) {
      sig = s;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown kernel '" << kernel << "'\n";
    return 1;
  }

  sim::SimConfig cfg;
  cfg.precision = core::Precision::FP32;
  cfg.nthreads = 32;
  cfg.placement = machine::Placement::ClusterCyclic;

  const distributed::NetworkDescriptor networks[] = {
      distributed::gigabit_ethernet(),
      distributed::ethernet_25g(),
      distributed::infiniband_hdr(),
  };

  std::cout << "Planning for " << kernel << " ("
            << distributed::to_string(
                   distributed::comm_pattern_for(sig))
            << " communication), target " << target
            << "x over one SG2042 node:\n\n";

  report::Table t({"network", "nodes needed", "achieved", "comm share",
                   "verdict"});
  for (const auto& net : networks) {
    distributed::ClusterDescriptor one{machine::sg2042(), net, 1};
    const double t1 =
        distributed::DistributedSimulator(one).seconds(sig, cfg);

    int needed = -1;
    double achieved = 1.0, comm_share = 0.0;
    double best = 1.0;
    for (int nodes = 2; nodes <= 1024; nodes *= 2) {
      distributed::ClusterDescriptor c{machine::sg2042(), net, nodes};
      const auto bd =
          distributed::DistributedSimulator(c).run(sig, cfg);
      const double su = t1 / bd.total_s;
      best = std::max(best, su);
      if (su >= target) {
        needed = nodes;
        achieved = su;
        comm_share = (bd.comm_s + bd.sync_s) / bd.total_s;
        break;
      }
    }
    if (needed > 0) {
      t.add_row({net.name, std::to_string(needed),
                 report::Table::num(achieved, 1) + "x",
                 report::Table::num(100.0 * comm_share, 0) + "%", "ok"});
    } else {
      t.add_row({net.name, "-", report::Table::num(best, 1) + "x max",
                 "-", "unreachable: network-bound"});
    }
  }
  std::cout << t.render();
  std::cout << "\n(Strong scaling at fixed global problem size; 32 "
               "threads/node, cluster placement.)\n";
  return 0;
}
