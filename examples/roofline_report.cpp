// Roofline report: where every kernel sits on a machine's single-core
// roofline, and how the SG2042's roofline compares to the x86 parts --
// a compact explanation of why the paper's FP32/FP64 gap exists.
//
//   ./roofline_report [machine] [fp32|fp64]
#include <algorithm>
#include <iostream>

#include "kernels/register_all.hpp"
#include "report/table.hpp"
#include "sim/roofline.hpp"

namespace {

sgp::machine::MachineDescriptor pick_machine(const std::string& name) {
  using namespace sgp::machine;
  if (name == "sg2042") return sg2042();
  if (name == "rome") return amd_rome();
  if (name == "broadwell") return intel_broadwell();
  if (name == "icelake") return intel_icelake();
  if (name == "sandybridge") return intel_sandybridge();
  if (name == "visionfive2") return visionfive_v2();
  throw std::invalid_argument("unknown machine: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;

  const auto m = pick_machine(argc > 1 ? argv[1] : "sg2042");
  const auto prec = (argc > 2 && std::string(argv[2]) == "fp64")
                        ? core::Precision::FP64
                        : core::Precision::FP32;

  const auto model = sim::roofline_for(m);
  std::cout << "Single-core roofline of " << model.machine << "\n";
  std::cout << "  scalar peak:      "
            << report::Table::num(model.peak_scalar_gflops, 1)
            << " GFLOP/s\n";
  std::cout << "  vector peak FP32: "
            << report::Table::num(model.peak_vector_gflops_fp32, 1)
            << " GFLOP/s\n";
  std::cout << "  vector peak FP64: "
            << report::Table::num(model.peak_vector_gflops_fp64, 1)
            << " GFLOP/s"
            << (m.core.vector && !m.core.vector->fp64
                    ? "  (== scalar: no FP64 vector unit)"
                    : "")
            << "\n";
  std::cout << "  stream bandwidth: "
            << report::Table::num(model.stream_bw_gbs, 1) << " GB/s\n";
  std::cout << "  FP32 ridge point: "
            << report::Table::num(model.ridge_intensity_fp32, 2)
            << " FLOP/byte\n";
  std::cout << "  FP64 ridge point: "
            << report::Table::num(model.ridge_intensity_fp64, 2)
            << " FLOP/byte"
            << (model.ridge_intensity_fp64 < model.ridge_intensity_fp32
                    ? "  (kernels turn compute-bound sooner at FP64)"
                    : "")
            << "\n\n";

  sim::SimConfig cfg;
  cfg.precision = prec;
  auto points =
      sim::roofline_points(m, cfg, kernels::all_signatures());
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) {
              return a.intensity < b.intensity;
            });

  std::cout << "Kernels at " << core::to_string(prec)
            << ", sorted by arithmetic intensity:\n";
  report::Table t({"kernel", "class", "FLOP/byte", "attainable GF/s",
                   "bound"});
  for (const auto& p : points) {
    t.add_row({p.kernel, std::string(core::to_string(p.group)),
               p.intensity > 1e5 ? std::string("resident")
                                 : report::Table::num(p.intensity, 2),
               report::Table::num(p.attainable_gflops, 2),
               p.memory_bound ? "memory" : "compute"});
  }
  std::cout << t.render();

  int memory_bound = 0;
  for (const auto& p : points) memory_bound += p.memory_bound ? 1 : 0;
  std::cout << "\n" << memory_bound << " of " << points.size()
            << " kernels are memory-bound on this machine at "
            << core::to_string(prec) << ".\n";
  return 0;
}
