// rollback_tool: a CLI over the RVV IR, reproducing the workflow of the
// paper's enabling tool (Lee et al., "Backporting RISC-V vector
// assembly"): read RVV v1.0 assembly, rewrite it to v0.7.1, report what
// changed.
//
//   ./rollback_tool <file.s>        rewrite a file (stdout)
//   ./rollback_tool --demo [vla|vls] [32|64]
//                                   generate a demo loop, then roll back
//   ./rollback_tool --verify <file.s> <1.0|0.7.1>
//                                   check dialect validity only
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "rvv/analysis.hpp"
#include "rvv/codegen.hpp"
#include "rvv/rollback.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

int run_rollback(const std::string& text) {
  using namespace sgp::rvv;
  const auto program = parse(text);
  const auto v1_issues = verify(program, Dialect::V1_0);
  if (!v1_issues.empty()) {
    std::cerr << "warning: input is not clean RVV v1.0:\n";
    for (const auto& i : v1_issues) {
      std::cerr << "  line " << i.source_line << ": " << i.message << "\n";
    }
  }
  try {
    const auto result = rollback(program);
    std::cout << print(result.program);
    std::cerr << "# rewrote " << result.rewritten << " of "
              << program.instruction_count() << " instructions\n";
    for (const auto& note : result.notes) std::cerr << "#   " << note << "\n";
    const auto issues = verify(result.program, Dialect::V0_7_1);
    if (!issues.empty()) {
      std::cerr << "# INTERNAL ERROR: output not valid v0.7.1\n";
      return 2;
    }
    return 0;
  } catch (const RollbackError& e) {
    std::cerr << "rollback failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp::rvv;
  try {
    if (argc >= 2 && std::string(argv[1]) == "--demo") {
      const auto mode =
          (argc >= 3 && std::string(argv[2]) == "vls") ? CodegenMode::VLS
                                                       : CodegenMode::VLA;
      LoopSpec spec;
      spec.name = "daxpy";
      spec.sew = (argc >= 4 && std::string(argv[3]) == "64") ? 64 : 32;
      const auto v1 = emit_loop(spec, mode, Dialect::V1_0);
      std::cerr << "# --- Clang-style RVV v1.0 ("
                << to_string(mode) << ", e" << spec.sew << ") ---\n";
      std::cerr << print(v1);
      std::cerr << "# --- rolled back to RVV v0.7.1 (C920) ---\n";
      return run_rollback(print(v1));
    }
    if (argc == 4 && std::string(argv[1]) == "--verify") {
      const auto d = std::string(argv[3]) == "1.0" ? Dialect::V1_0
                                                   : Dialect::V0_7_1;
      const auto issues = verify(parse(read_file(argv[2])), d);
      for (const auto& i : issues) {
        std::cout << "line " << i.source_line << ": " << i.message << "\n";
      }
      std::cout << (issues.empty() ? "OK" : "INVALID") << " for "
                << to_string(d) << "\n";
      return issues.empty() ? 0 : 1;
    }
    if (argc == 3 && std::string(argv[1]) == "--stats") {
      const auto mix = analyze(parse(read_file(argv[2])));
      std::cout << render_mix(mix);
      return 0;
    }
    if (argc == 2) {
      return run_rollback(read_file(argv[1]));
    }
    std::cerr << "usage: rollback_tool <file.s> | --demo [vla|vls] [32|64]"
                 " | --verify <file.s> <1.0|0.7.1> | --stats <file.s>\n";
    return 64;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
