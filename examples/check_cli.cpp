// Cross-model validation oracle (`ctest -L check` runs this):
//   1. replays the invariant checker over every paper machine, all 64
//      kernel signatures and a standard config grid;
//   2. optionally fuzzes the same invariants over random machines;
//   3. asserts the streaming cachesim replay engine and the legacy
//      vector path produce bit-identical statistics on every paper
//      machine plus random fuzzed ones;
//   4. re-executes every figure/table pipeline through the sweep engine
//      twice — forced-serial and parallel — and requires byte-identical
//      CSV artifacts;
//   5. diffs the serial artifacts against the pinned goldens under
//      tests/golden/ with per-column tolerances, reporting the first
//      divergent cell.
//
// --jobs shards the invariant grid, the fuzzers and the engine
// pipelines over a thread pool; reports and artifacts are merged in
// deterministic order, so serial and parallel runs stay byte-identical.
//
//   6. fuzzes the durable-segment parser (truncated, bit-flipped,
//      version-bumped, magic-corrupted, garbage-tailed files): the
//      loader must never crash, never deliver data from a bad segment,
//      and quarantine deterministically;
//   7. with --persist, replays the pipeline artifacts through a
//      persistent engine and a second cold engine resuming from the
//      same store (optionally under --inject-io faults) and requires
//      byte-identical CSVs with zero re-simulations on the clean path.
//
// Machines come from machine::shared_registry(): --machine-dir loads
// INI packs next to the built-ins, --machine restricts the
// invariant/cachesim stages to named machines (default: the paper's
// seven), and --lint-machines <dir> is a standalone mode validating
// every pack in a directory (parse + validate() + the roofline
// invariants with the scalar floor off) — the machine-pack CI gate.
//
//   8. fuzzes the batched evaluation paths: ragged random batches on
//      random machines must be bit-identical across per-point
//      Simulator::run, EvalContext + Simulator::run_batch, and the
//      engine's memo-miss and memo-hit batch paths.
//
//   ./check_cli [--golden <dir>] [--write-golden <dir>] [--fuzz <n>]
//               [--fuzz-cachesim <n>] [--fuzz-segments <n>]
//               [--fuzz-requests <n>] [--fuzz-ini <n>]
//               [--fuzz-batch <n>]
//               [--machine <name>] [--machine-dir <dir>]
//               [--lint-machines <dir>]
//               [--persist <dir>] [--inject-io <plan>] [--jobs <n>]
//               [--skip-invariants]
//
// Exit codes: 0 = all checks pass, 1 = violations or divergences,
// 64 = usage error (matching the suite/bench CLI conventions).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/artifacts.hpp"
#include "check/fuzz.hpp"
#include "check/golden.hpp"
#include "check/invariants.hpp"
#include "engine/engine.hpp"
#include "kernels/register_all.hpp"
#include "machine/descriptor.hpp"
#include "machine/registry.hpp"
#include "machine/serialize.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_injector.hpp"

namespace {

struct Options {
  std::optional<std::string> golden_dir;
  std::optional<std::string> write_golden_dir;
  unsigned fuzz_seeds = 0;
  unsigned fuzz_cachesim_seeds = 4;
  unsigned fuzz_segment_seeds = 4;
  unsigned fuzz_request_seeds = 16;
  unsigned fuzz_ini_seeds = 16;
  unsigned fuzz_batch_seeds = 8;
  std::vector<std::string> machines;      ///< invariant/cachesim set
  std::vector<std::string> machine_dirs;  ///< INI packs to register
  std::optional<std::string> lint_dir;    ///< standalone pack linter
  std::optional<std::string> persist_dir;
  std::optional<sgp::resilience::FaultPlan> io_fault_plan;
  int jobs = 0;  ///< check/fuzz/engine workers; 0 = one per hw thread
  bool skip_invariants = false;
};

[[noreturn]] void usage_error(const char* argv0, const std::string& what) {
  std::cerr << argv0 << ": " << what << "\n"
            << "usage: " << argv0
            << " [--golden <dir>] [--write-golden <dir>] [--fuzz <n>]"
               " [--fuzz-cachesim <n>] [--fuzz-segments <n>]"
               " [--fuzz-requests <n>] [--fuzz-ini <n>]"
               " [--fuzz-batch <n>]"
               " [--machine <name>] [--machine-dir <dir>]"
               " [--lint-machines <dir>]"
               " [--persist <dir>] [--inject-io <plan>] [--jobs <n>]"
               " [--skip-invariants]\n";
  std::exit(64);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for " + arg);
      return argv[++i];
    };
    auto number = [&](const std::string& v) -> long {
      try {
        std::size_t used = 0;
        const long n = std::stol(v, &used);
        if (used != v.size() || n < 0) throw std::invalid_argument(v);
        return n;
      } catch (const std::exception&) {
        usage_error(argv[0], "bad value '" + v + "' for " + arg);
      }
    };
    if (arg == "--golden") {
      opt.golden_dir = value();
    } else if (arg == "--write-golden") {
      opt.write_golden_dir = value();
    } else if (arg == "--fuzz") {
      opt.fuzz_seeds = static_cast<unsigned>(number(value()));
    } else if (arg == "--fuzz-cachesim") {
      opt.fuzz_cachesim_seeds = static_cast<unsigned>(number(value()));
    } else if (arg == "--fuzz-segments") {
      opt.fuzz_segment_seeds = static_cast<unsigned>(number(value()));
    } else if (arg == "--fuzz-requests") {
      opt.fuzz_request_seeds = static_cast<unsigned>(number(value()));
    } else if (arg == "--fuzz-ini") {
      opt.fuzz_ini_seeds = static_cast<unsigned>(number(value()));
    } else if (arg == "--fuzz-batch") {
      opt.fuzz_batch_seeds = static_cast<unsigned>(number(value()));
    } else if (arg == "--machine") {
      opt.machines.push_back(value());
    } else if (arg == "--machine-dir") {
      opt.machine_dirs.push_back(value());
    } else if (arg == "--lint-machines") {
      opt.lint_dir = value();
    } else if (arg == "--persist") {
      opt.persist_dir = value();
    } else if (arg == "--inject-io") {
      try {
        opt.io_fault_plan = sgp::resilience::FaultPlan::parse(value());
      } catch (const std::exception& e) {
        usage_error(argv[0], e.what());
      }
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<int>(number(value()));
    } else if (arg == "--skip-invariants") {
      opt.skip_invariants = true;
    } else {
      usage_error(argv[0], "unknown flag '" + arg + "'");
    }
  }
  return opt;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void print_violations(const sgp::check::CheckReport& report,
                      std::size_t limit = 10) {
  for (std::size_t i = 0; i < report.violations.size() && i < limit; ++i) {
    std::cout << "  VIOLATION: " << to_string(report.violations[i]) << "\n";
  }
  if (report.violations.size() > limit) {
    std::cout << "  ... and " << report.violations.size() - limit
              << " more\n";
  }
}

/// The registry names of the paper's seven machines (the default
/// invariant/cachesim set; the D1 background machine stays opt-in via
/// --machine, as it always has).
std::vector<std::string> default_check_machines() {
  return {"sg2042", "visionfive-v1", "visionfive-v2", "rome",
          "broadwell", "icelake", "sandybridge"};
}

/// Standalone pack linter: parse + validate() + the roofline
/// invariants over the fuzz kernel set with the scalar floor off (a
/// pack need not be calibrated like the paper machines). Exit 0 when
/// every pack passes, 1 on any failure, 64 on a bad directory.
int lint_machines(const std::string& dir, int jobs) {
  namespace fs = std::filesystem;
  using namespace sgp;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::cerr << "check_cli: --lint-machines: not a directory: " << dir
              << "\n";
    return 64;
  }
  std::vector<fs::path> packs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ini") {
      packs.push_back(entry.path());
    }
  }
  std::sort(packs.begin(), packs.end());
  if (packs.empty()) {
    std::cerr << "check_cli: --lint-machines: no *.ini packs in " << dir
              << "\n";
    return 64;
  }

  const check::FuzzOptions fuzz_opt;
  std::vector<core::KernelSignature> sigs;
  for (const auto& sig : kernels::all_signatures()) {
    if (std::find(fuzz_opt.kernels.begin(), fuzz_opt.kernels.end(),
                  sig.name) != fuzz_opt.kernels.end()) {
      sigs.push_back(sig);
    }
  }

  bool failed = false;
  for (const auto& path : packs) {
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw std::invalid_argument("cannot open file");
      std::ostringstream text;
      text << in.rdbuf();
      const auto m = machine::from_ini(text.str());
      const auto report = check::check_machine(m, sigs, fuzz_opt.check, jobs);
      if (!report.ok()) {
        failed = true;
        std::cout << "lint " << path.string() << ": FAIL ("
                  << report.violations.size() << " violations)\n";
        print_violations(report);
      } else {
        std::cout << "lint " << path.string() << ": ok (" << m.name << ", "
                  << report.points << " points)\n";
      }
    } catch (const std::exception& e) {
      failed = true;
      std::cout << "lint " << path.string() << ": FAIL " << e.what() << "\n";
    }
  }
  std::cout << (failed ? "FAIL" : "OK") << "\n";
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;
  const Options opt = parse_args(argc, argv);
  bool failed = false;

  // Machine packs register before anything resolves names; a corrupt
  // pack is quarantined with a warning, a bad directory is fatal.
  for (const auto& dir : opt.machine_dirs) {
    try {
      const auto report = machine::shared_registry().register_ini_dir(dir);
      for (const auto& err : report.errors) {
        std::cerr << "warning: machine pack " << err.file << ": "
                  << err.message << " (quarantined)\n";
      }
    } catch (const std::exception& e) {
      usage_error(argv[0], e.what());
    }
  }

  if (opt.lint_dir) return lint_machines(*opt.lint_dir, opt.jobs);

  // The machines the invariant and cachesim stages run over, resolved
  // through the registry (so --machine accepts INI-loaded packs too).
  std::vector<const machine::MachineDescriptor*> check_machines;
  for (const auto& name :
       opt.machines.empty() ? default_check_machines() : opt.machines) {
    try {
      check_machines.push_back(&machine::shared_registry().descriptor(name));
    } catch (const std::out_of_range& e) {
      usage_error(argv[0], e.what());
    }
  }

  // Regeneration mode: render every pipeline on a forced-serial engine
  // and pin the result. No checks run.
  if (opt.write_golden_dir) {
    engine::SweepEngine eng(engine::EngineOptions{1, true});
    for (const auto& a : check::run_all_artifacts(eng)) {
      const std::string path = *opt.write_golden_dir + "/" + a.name + ".csv";
      a.csv.write(path);
      std::cout << "wrote " << path << "\n";
    }
    return 0;
  }

  // 1. Invariants over the registry-resolved machine set.
  if (!opt.skip_invariants) {
    const auto sigs = kernels::all_signatures();
    for (const auto* m : check_machines) {
      const auto report = check::check_machine(*m, sigs, {}, opt.jobs);
      std::cout << "invariants " << m->name << ": " << report.points
                << " points, " << report.violations.size()
                << " violations\n";
      if (!report.ok()) {
        failed = true;
        print_violations(report);
      }
    }
  }

  // 2. Fuzzing over random machines (scalar floor off; see check/fuzz).
  if (opt.fuzz_seeds > 0) {
    const auto report =
        check::fuzz_invariants(1000, opt.fuzz_seeds, {}, opt.jobs);
    std::cout << "fuzz over " << opt.fuzz_seeds << " random machines: "
              << report.points << " points, " << report.violations.size()
              << " violations\n";
    if (!report.ok()) {
      failed = true;
      print_violations(report);
    }
  }

  // 3. Cachesim replay agreement: streaming engine vs the legacy
  // vector path must be bit-identical on the paper machines and on
  // random fuzzed descriptors.
  {
    check::CheckReport report;
    for (const auto* m : check_machines) {
      report.merge(check::cachesim_agreement(*m));
    }
    if (opt.fuzz_cachesim_seeds > 0) {
      report.merge(check::fuzz_cachesim(2000, opt.fuzz_cachesim_seeds,
                                        opt.jobs));
    }
    std::cout << "cachesim agreement (+" << opt.fuzz_cachesim_seeds
              << " random machines): " << report.points << " points, "
              << report.violations.size() << " violations\n";
    if (!report.ok()) {
      failed = true;
      print_violations(report);
    }
  }

  // 4 + 5. Pipelines: serial vs parallel byte-identity, then the golden
  // differential. Two private engines so the comparison cannot share a
  // memo cache with anything else in the process.
  {
    engine::SweepEngine serial(engine::EngineOptions{1, true});
    engine::SweepEngine parallel(engine::EngineOptions{opt.jobs, true});
    const auto serial_artifacts = check::run_all_artifacts(serial);
    const auto parallel_artifacts = check::run_all_artifacts(parallel);

    for (std::size_t i = 0; i < serial_artifacts.size(); ++i) {
      const auto& s = serial_artifacts[i];
      const auto& p = parallel_artifacts[i];
      if (s.csv.text() != p.csv.text()) {
        failed = true;
        const auto diff = check::diff_csv(s.csv.text(), p.csv.text());
        std::cout << "DIVERGENCE " << s.name
                  << ": serial and parallel engine outputs differ";
        if (diff) std::cout << " — " << to_string(*diff);
        std::cout << "\n";
      }
    }
    std::cout << "serial/parallel identity: " << serial_artifacts.size()
              << " artifacts compared\n";

    if (opt.golden_dir) {
      for (const auto& a : serial_artifacts) {
        const std::string path = *opt.golden_dir + "/" + a.name + ".csv";
        const auto golden = read_file(path);
        if (!golden) {
          failed = true;
          std::cout << "DIVERGENCE " << a.name << ": missing golden "
                    << path << "\n";
          continue;
        }
        if (const auto diff =
                check::diff_csv(*golden, a.csv.text(), a.policy)) {
          failed = true;
          std::cout << "DIVERGENCE " << a.name << " vs " << path << ": "
                    << to_string(*diff) << "\n";
        }
      }
      std::cout << "golden diff: " << serial_artifacts.size()
                << " artifacts checked against " << *opt.golden_dir
                << "\n";
    }
  }

  // 6. Durable-segment parser robustness fuzzing.
  if (opt.fuzz_segment_seeds > 0) {
    const std::string dir =
        opt.persist_dir ? *opt.persist_dir + "/fuzz" : "check_segment_fuzz";
    const auto report =
        check::fuzz_segments(3000, opt.fuzz_segment_seeds, dir, opt.jobs);
    std::cout << "segment fuzz over " << opt.fuzz_segment_seeds
              << " seeds: " << report.points << " points, "
              << report.violations.size() << " violations\n";
    if (!report.ok()) {
      failed = true;
      print_violations(report);
    }
    if (!opt.persist_dir) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

  // 7. sgp-serve request parser robustness fuzzing.
  if (opt.fuzz_request_seeds > 0) {
    const auto report =
        check::fuzz_requests(4000, opt.fuzz_request_seeds, opt.jobs);
    std::cout << "request fuzz over " << opt.fuzz_request_seeds
              << " seeds: " << report.points << " points, "
              << report.violations.size() << " violations\n";
    if (!report.ok()) {
      failed = true;
      print_violations(report);
    }
  }

  // 7b. Machine INI serializer/parser + registry round-trip fuzzing.
  if (opt.fuzz_ini_seeds > 0) {
    const auto report =
        check::fuzz_ini_roundtrip(5000, opt.fuzz_ini_seeds, opt.jobs);
    std::cout << "machine-ini fuzz over " << opt.fuzz_ini_seeds
              << " seeds: " << report.points << " points, "
              << report.violations.size() << " violations\n";
    if (!report.ok()) {
      failed = true;
      print_violations(report);
    }
  }

  // 7c. Batched-path identity fuzzing: scalar run vs EvalContext
  // run_batch vs the engine's batched memo path, bit-for-bit.
  if (opt.fuzz_batch_seeds > 0) {
    const auto report =
        check::fuzz_batch_identity(6000, opt.fuzz_batch_seeds, opt.jobs);
    std::cout << "batch-identity fuzz over " << opt.fuzz_batch_seeds
              << " seeds: " << report.points << " points, "
              << report.violations.size() << " violations\n";
    if (!report.ok()) {
      failed = true;
      print_violations(report);
    }
  }

  // 8. Checkpoint/resume identity: a persistent engine renders every
  // pipeline and flushes its memo cache; a second cold engine resumes
  // from the same store (under --inject-io faults if given) and must
  // reproduce the CSVs byte-for-byte. Without injected faults the
  // resumed run must not re-simulate anything.
  if (opt.persist_dir) {
    const std::string store_dir = *opt.persist_dir + "/store";
    std::filesystem::remove_all(store_dir);
    std::optional<resilience::FaultInjector> io_injector;
    if (opt.io_fault_plan) io_injector.emplace(*opt.io_fault_plan, 77u);

    engine::EnginePersistence persistence;
    persistence.store.dir = store_dir;
    persistence.store.injector = io_injector ? &*io_injector : nullptr;
    persistence.note = "check_cli --persist";

    engine::EngineOptions warm_opt{1, true, persistence};
    std::vector<check::Artifact> cold_artifacts, warm_artifacts;
    std::uint64_t warm_sims = 0, resumed = 0;
    {
      engine::SweepEngine cold(warm_opt);
      cold_artifacts = check::run_all_artifacts(cold);
    }  // destructor flushes the final segment
    {
      engine::SweepEngine resume(warm_opt);
      warm_artifacts = check::run_all_artifacts(resume);
      const auto c = resume.counters();
      warm_sims = c.simulations;
      resumed = c.persist.cache.resumed_points;
    }

    std::size_t divergences = 0;
    for (std::size_t i = 0; i < cold_artifacts.size(); ++i) {
      if (cold_artifacts[i].csv.text() != warm_artifacts[i].csv.text()) {
        ++divergences;
        failed = true;
        std::cout << "DIVERGENCE " << cold_artifacts[i].name
                  << ": resumed engine output differs from cold run\n";
      }
    }
    // Injected faults may legitimately force re-simulation (a torn
    // segment is quarantined and its points recomputed); without them
    // a resumed run must be pure replay.
    if (!opt.io_fault_plan && warm_sims != 0) {
      failed = true;
      std::cout << "DIVERGENCE persist-resume: " << warm_sims
                << " re-simulations on a clean resume (expected 0)\n";
    }
    std::cout << "persist resume: " << cold_artifacts.size()
              << " artifacts compared, " << divergences << " divergences, "
              << resumed << " points resumed, " << warm_sims
              << " re-simulations\n";
  }

  // Per-check metrics summary from the obs registry.
  {
    const auto snap = obs::registry().snapshot();
    std::uint64_t points = 0, violations = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("check.", 0) != 0) continue;
      if (name.size() > 7 && name.compare(name.size() - 7, 7, ".points") == 0) {
        points += value;
      } else {
        violations += value;
      }
    }
    std::cout << "check metrics: " << points << " points, " << violations
              << " violations recorded\n";
  }

  std::cout << (failed ? "FAIL" : "OK") << "\n";
  return failed ? 1 : 0;
}
