// sgp-serve: simulation-as-a-service over the memoized SweepEngine.
//
// Modes:
//   sgp_serve                      # pipe mode: requests on stdin,
//                                  # responses on stdout (one line each)
//   sgp_serve --socket /tmp/s.sock # AF_UNIX stream socket daemon
//   sgp_serve --input reqs.jsonl   # pipe mode reading from a file
//
// With --persist <dir> the memo cache is durable: a restarted server
// answers repeated requests from disk without re-running the simulator.
// docs/SERVICE.md documents the wire protocol.
//
// Exit codes: 0 clean, 2 fatal (socket/file errors), 64 usage error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

constexpr const char* kUsage = R"(usage: sgp_serve [options]

Transport (pick one; default is stdin/stdout pipe mode):
  --socket <path>      serve an AF_UNIX stream socket at <path>
  --input <file>       pipe mode, reading request lines from <file>

Engine:
  --persist <dir>      durable memo cache directory (warm restarts)
  --jobs <n>           engine worker threads (0 = hardware threads)
  --machine-dir <dir>  register every *.ini machine pack in <dir> into
                       the machine registry before serving; requests can
                       then name those machines (repeatable; see
                       docs/MACHINES.md)

Admission:
  --max-queue <n>      queue slots before "overloaded" rejections (256)
  --max-batch <n>      max requests drained per worker batch (64)

Other:
  --quiet              suppress skip-and-warn diagnostics
  --help               this text
)";

struct Options {
  sgp::serve::ServerOptions server;
  std::optional<std::string> socket_path;
  std::optional<std::string> input_path;
  std::vector<std::string> machine_dirs;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "sgp_serve: " << msg << "\n\n" << kUsage;
  std::exit(64);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto next_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      usage_error(std::string("missing value for ") + flag);
    }
    return argv[++i];
  };
  auto next_u64 = [&](int& i, const char* flag) -> std::uint64_t {
    const std::string raw = next_value(i, flag);
    const auto v = sgp::serve::parse_u64(raw);
    if (!v) {
      usage_error("bad value '" + raw + "' for " + flag);
    }
    return *v;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--socket") {
      opt.socket_path = next_value(i, "--socket");
    } else if (arg == "--input") {
      opt.input_path = next_value(i, "--input");
    } else if (arg == "--persist") {
      opt.server.persist_dir = next_value(i, "--persist");
    } else if (arg == "--jobs") {
      const std::uint64_t v = next_u64(i, "--jobs");
      if (v > 4096) usage_error("bad value for --jobs (max 4096)");
      opt.server.jobs = static_cast<int>(v);
    } else if (arg == "--max-queue") {
      const std::uint64_t v = next_u64(i, "--max-queue");
      if (v == 0) usage_error("--max-queue must be positive");
      opt.server.max_queue = static_cast<std::size_t>(v);
    } else if (arg == "--max-batch") {
      const std::uint64_t v = next_u64(i, "--max-batch");
      if (v == 0) usage_error("--max-batch must be positive");
      opt.server.max_batch = static_cast<std::size_t>(v);
    } else if (arg == "--machine-dir") {
      opt.machine_dirs.push_back(next_value(i, "--machine-dir"));
    } else if (arg == "--quiet") {
      opt.server.warn = false;
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }
  if (opt.socket_path && opt.input_path) {
    usage_error("--socket and --input are mutually exclusive");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  for (const auto& dir : opt.machine_dirs) {
    try {
      const auto report =
          sgp::machine::shared_registry().register_ini_dir(dir);
      for (const auto& err : report.errors) {
        if (opt.server.warn) {
          std::cerr << "sgp_serve: warning: machine pack " << err.file
                    << ": " << err.message << " (quarantined)\n";
        }
      }
    } catch (const std::exception& e) {
      usage_error(e.what());
    }
  }
  try {
    sgp::serve::Server server(opt.server);
    if (opt.socket_path) {
      return server.run_unix_socket(*opt.socket_path);
    }
    if (opt.input_path) {
      std::ifstream in(*opt.input_path);
      if (!in) {
        std::cerr << "sgp_serve: cannot open " << *opt.input_path
                  << "\n";
        return 2;
      }
      return server.run_pipe(in, std::cout);
    }
    return server.run_pipe(std::cin, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "sgp_serve: fatal: " << e.what() << "\n";
    return 2;
  }
}
