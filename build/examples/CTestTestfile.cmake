# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart" "0.01")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_topology "/root/repo/build/examples/topology_report" "sg2042")
set_tests_properties(smoke_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_advisor "/root/repo/build/examples/vectorisation_advisor" "JACOBI_2D")
set_tests_properties(smoke_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_rollback "/root/repo/build/examples/rollback_tool" "--demo" "vls" "64")
set_tests_properties(smoke_rollback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_kernel_reference "/root/repo/build/examples/kernel_reference" "--md")
set_tests_properties(smoke_kernel_reference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_roofline "/root/repo/build/examples/roofline_report" "rome" "fp32")
set_tests_properties(smoke_roofline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_suite_cli "/root/repo/build/examples/suite_cli" "--group" "Stream" "--precision" "fp32" "--size-factor" "0.005" "--rep-factor" "0.01")
set_tests_properties(smoke_suite_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_placement "/root/repo/build/examples/placement_explorer" "visionfive2" "fp64")
set_tests_properties(smoke_placement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_cluster_planner "/root/repo/build/examples/cluster_planner" "JACOBI_2D" "8")
set_tests_properties(smoke_cluster_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
