file(REMOVE_RECURSE
  "CMakeFiles/rollback_tool.dir/rollback_tool.cpp.o"
  "CMakeFiles/rollback_tool.dir/rollback_tool.cpp.o.d"
  "rollback_tool"
  "rollback_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
