# Empty compiler generated dependencies file for rollback_tool.
# This may be replaced when dependencies are built.
