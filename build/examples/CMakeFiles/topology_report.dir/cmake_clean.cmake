file(REMOVE_RECURSE
  "CMakeFiles/topology_report.dir/topology_report.cpp.o"
  "CMakeFiles/topology_report.dir/topology_report.cpp.o.d"
  "topology_report"
  "topology_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
