file(REMOVE_RECURSE
  "CMakeFiles/kernel_reference.dir/kernel_reference.cpp.o"
  "CMakeFiles/kernel_reference.dir/kernel_reference.cpp.o.d"
  "kernel_reference"
  "kernel_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
