# Empty dependencies file for kernel_reference.
# This may be replaced when dependencies are built.
