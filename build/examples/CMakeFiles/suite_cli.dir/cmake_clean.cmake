file(REMOVE_RECURSE
  "CMakeFiles/suite_cli.dir/suite_cli.cpp.o"
  "CMakeFiles/suite_cli.dir/suite_cli.cpp.o.d"
  "suite_cli"
  "suite_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
