# Empty compiler generated dependencies file for suite_cli.
# This may be replaced when dependencies are built.
