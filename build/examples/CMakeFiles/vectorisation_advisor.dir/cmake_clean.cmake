file(REMOVE_RECURSE
  "CMakeFiles/vectorisation_advisor.dir/vectorisation_advisor.cpp.o"
  "CMakeFiles/vectorisation_advisor.dir/vectorisation_advisor.cpp.o.d"
  "vectorisation_advisor"
  "vectorisation_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorisation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
