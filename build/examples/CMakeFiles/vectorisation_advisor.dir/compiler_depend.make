# Empty compiler generated dependencies file for vectorisation_advisor.
# This may be replaced when dependencies are built.
