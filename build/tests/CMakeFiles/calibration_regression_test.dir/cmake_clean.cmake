file(REMOVE_RECURSE
  "CMakeFiles/calibration_regression_test.dir/calibration_regression_test.cpp.o"
  "CMakeFiles/calibration_regression_test.dir/calibration_regression_test.cpp.o.d"
  "calibration_regression_test"
  "calibration_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
