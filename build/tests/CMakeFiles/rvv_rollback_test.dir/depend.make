# Empty dependencies file for rvv_rollback_test.
# This may be replaced when dependencies are built.
