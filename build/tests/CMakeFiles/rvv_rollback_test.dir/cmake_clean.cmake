file(REMOVE_RECURSE
  "CMakeFiles/rvv_rollback_test.dir/rvv_rollback_test.cpp.o"
  "CMakeFiles/rvv_rollback_test.dir/rvv_rollback_test.cpp.o.d"
  "rvv_rollback_test"
  "rvv_rollback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvv_rollback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
