file(REMOVE_RECURSE
  "CMakeFiles/csv_integration_test.dir/csv_integration_test.cpp.o"
  "CMakeFiles/csv_integration_test.dir/csv_integration_test.cpp.o.d"
  "csv_integration_test"
  "csv_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
