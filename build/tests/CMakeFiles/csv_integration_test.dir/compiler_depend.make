# Empty compiler generated dependencies file for csv_integration_test.
# This may be replaced when dependencies are built.
