# Empty dependencies file for random_machines_test.
# This may be replaced when dependencies are built.
