file(REMOVE_RECURSE
  "CMakeFiles/random_machines_test.dir/random_machines_test.cpp.o"
  "CMakeFiles/random_machines_test.dir/random_machines_test.cpp.o.d"
  "random_machines_test"
  "random_machines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_machines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
