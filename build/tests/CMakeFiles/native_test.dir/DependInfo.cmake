
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/native_test.cpp" "tests/CMakeFiles/native_test.dir/native_test.cpp.o" "gcc" "tests/CMakeFiles/native_test.dir/native_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sgp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/rvv/CMakeFiles/sgp_rvv.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/sgp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/sgp_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sgp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/native/CMakeFiles/sgp_native.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sgp_report.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/sgp_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/sgp_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/sgp_distributed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
