file(REMOVE_RECURSE
  "CMakeFiles/rvv_analysis_test.dir/rvv_analysis_test.cpp.o"
  "CMakeFiles/rvv_analysis_test.dir/rvv_analysis_test.cpp.o.d"
  "rvv_analysis_test"
  "rvv_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvv_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
