# Empty compiler generated dependencies file for rvv_analysis_test.
# This may be replaced when dependencies are built.
