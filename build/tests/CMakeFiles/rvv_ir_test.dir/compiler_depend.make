# Empty compiler generated dependencies file for rvv_ir_test.
# This may be replaced when dependencies are built.
