file(REMOVE_RECURSE
  "CMakeFiles/rvv_ir_test.dir/rvv_ir_test.cpp.o"
  "CMakeFiles/rvv_ir_test.dir/rvv_ir_test.cpp.o.d"
  "rvv_ir_test"
  "rvv_ir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvv_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
