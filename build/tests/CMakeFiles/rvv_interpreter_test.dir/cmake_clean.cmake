file(REMOVE_RECURSE
  "CMakeFiles/rvv_interpreter_test.dir/rvv_interpreter_test.cpp.o"
  "CMakeFiles/rvv_interpreter_test.dir/rvv_interpreter_test.cpp.o.d"
  "rvv_interpreter_test"
  "rvv_interpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvv_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
