# Empty compiler generated dependencies file for rvv_interpreter_test.
# This may be replaced when dependencies are built.
