file(REMOVE_RECURSE
  "CMakeFiles/kernels_analytic_test.dir/kernels_analytic_test.cpp.o"
  "CMakeFiles/kernels_analytic_test.dir/kernels_analytic_test.cpp.o.d"
  "kernels_analytic_test"
  "kernels_analytic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
