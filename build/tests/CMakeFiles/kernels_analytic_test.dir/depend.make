# Empty dependencies file for kernels_analytic_test.
# This may be replaced when dependencies are built.
