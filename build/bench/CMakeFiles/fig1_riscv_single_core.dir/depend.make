# Empty dependencies file for fig1_riscv_single_core.
# This may be replaced when dependencies are built.
