file(REMOVE_RECURSE
  "CMakeFiles/fig1_riscv_single_core.dir/fig1_riscv_single_core.cpp.o"
  "CMakeFiles/fig1_riscv_single_core.dir/fig1_riscv_single_core.cpp.o.d"
  "fig1_riscv_single_core"
  "fig1_riscv_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_riscv_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
