# Empty compiler generated dependencies file for paper_deltas.
# This may be replaced when dependencies are built.
