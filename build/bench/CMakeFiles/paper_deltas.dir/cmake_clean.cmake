file(REMOVE_RECURSE
  "CMakeFiles/paper_deltas.dir/paper_deltas.cpp.o"
  "CMakeFiles/paper_deltas.dir/paper_deltas.cpp.o.d"
  "paper_deltas"
  "paper_deltas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_deltas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
