# Empty compiler generated dependencies file for fig4_x86_single_fp64.
# This may be replaced when dependencies are built.
