file(REMOVE_RECURSE
  "CMakeFiles/fig4_x86_single_fp64.dir/fig4_x86_single_fp64.cpp.o"
  "CMakeFiles/fig4_x86_single_fp64.dir/fig4_x86_single_fp64.cpp.o.d"
  "fig4_x86_single_fp64"
  "fig4_x86_single_fp64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_x86_single_fp64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
