file(REMOVE_RECURSE
  "CMakeFiles/micro_native_kernels.dir/micro_native_kernels.cpp.o"
  "CMakeFiles/micro_native_kernels.dir/micro_native_kernels.cpp.o.d"
  "micro_native_kernels"
  "micro_native_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_native_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
