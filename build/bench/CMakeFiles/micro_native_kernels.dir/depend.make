# Empty dependencies file for micro_native_kernels.
# This may be replaced when dependencies are built.
