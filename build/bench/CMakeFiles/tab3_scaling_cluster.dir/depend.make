# Empty dependencies file for tab3_scaling_cluster.
# This may be replaced when dependencies are built.
