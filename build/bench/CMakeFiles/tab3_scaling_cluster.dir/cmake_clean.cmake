file(REMOVE_RECURSE
  "CMakeFiles/tab3_scaling_cluster.dir/tab3_scaling_cluster.cpp.o"
  "CMakeFiles/tab3_scaling_cluster.dir/tab3_scaling_cluster.cpp.o.d"
  "tab3_scaling_cluster"
  "tab3_scaling_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_scaling_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
