file(REMOVE_RECURSE
  "CMakeFiles/tab1_scaling_block.dir/tab1_scaling_block.cpp.o"
  "CMakeFiles/tab1_scaling_block.dir/tab1_scaling_block.cpp.o.d"
  "tab1_scaling_block"
  "tab1_scaling_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_scaling_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
