# Empty dependencies file for tab1_scaling_block.
# This may be replaced when dependencies are built.
