file(REMOVE_RECURSE
  "CMakeFiles/fig5_x86_single_fp32.dir/fig5_x86_single_fp32.cpp.o"
  "CMakeFiles/fig5_x86_single_fp32.dir/fig5_x86_single_fp32.cpp.o.d"
  "fig5_x86_single_fp32"
  "fig5_x86_single_fp32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_x86_single_fp32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
