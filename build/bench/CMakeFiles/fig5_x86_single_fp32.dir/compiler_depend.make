# Empty compiler generated dependencies file for fig5_x86_single_fp32.
# This may be replaced when dependencies are built.
