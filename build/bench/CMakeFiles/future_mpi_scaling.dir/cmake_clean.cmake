file(REMOVE_RECURSE
  "CMakeFiles/future_mpi_scaling.dir/future_mpi_scaling.cpp.o"
  "CMakeFiles/future_mpi_scaling.dir/future_mpi_scaling.cpp.o.d"
  "future_mpi_scaling"
  "future_mpi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_mpi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
