# Empty dependencies file for future_mpi_scaling.
# This may be replaced when dependencies are built.
