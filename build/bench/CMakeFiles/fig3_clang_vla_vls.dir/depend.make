# Empty dependencies file for fig3_clang_vla_vls.
# This may be replaced when dependencies are built.
