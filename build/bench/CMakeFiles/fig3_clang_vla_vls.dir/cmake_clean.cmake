file(REMOVE_RECURSE
  "CMakeFiles/fig3_clang_vla_vls.dir/fig3_clang_vla_vls.cpp.o"
  "CMakeFiles/fig3_clang_vla_vls.dir/fig3_clang_vla_vls.cpp.o.d"
  "fig3_clang_vla_vls"
  "fig3_clang_vla_vls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_clang_vla_vls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
