file(REMOVE_RECURSE
  "CMakeFiles/background_d1_vs_v2.dir/background_d1_vs_v2.cpp.o"
  "CMakeFiles/background_d1_vs_v2.dir/background_d1_vs_v2.cpp.o.d"
  "background_d1_vs_v2"
  "background_d1_vs_v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_d1_vs_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
