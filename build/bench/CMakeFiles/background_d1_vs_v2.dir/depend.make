# Empty dependencies file for background_d1_vs_v2.
# This may be replaced when dependencies are built.
