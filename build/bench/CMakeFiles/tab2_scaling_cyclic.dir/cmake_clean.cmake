file(REMOVE_RECURSE
  "CMakeFiles/tab2_scaling_cyclic.dir/tab2_scaling_cyclic.cpp.o"
  "CMakeFiles/tab2_scaling_cyclic.dir/tab2_scaling_cyclic.cpp.o.d"
  "tab2_scaling_cyclic"
  "tab2_scaling_cyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_scaling_cyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
