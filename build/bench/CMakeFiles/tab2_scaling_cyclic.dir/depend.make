# Empty dependencies file for tab2_scaling_cyclic.
# This may be replaced when dependencies are built.
