file(REMOVE_RECURSE
  "CMakeFiles/tab4_x86_summary.dir/tab4_x86_summary.cpp.o"
  "CMakeFiles/tab4_x86_summary.dir/tab4_x86_summary.cpp.o.d"
  "tab4_x86_summary"
  "tab4_x86_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_x86_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
