# Empty dependencies file for tab4_x86_summary.
# This may be replaced when dependencies are built.
