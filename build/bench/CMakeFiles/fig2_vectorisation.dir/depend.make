# Empty dependencies file for fig2_vectorisation.
# This may be replaced when dependencies are built.
