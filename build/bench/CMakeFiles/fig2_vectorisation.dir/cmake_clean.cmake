file(REMOVE_RECURSE
  "CMakeFiles/fig2_vectorisation.dir/fig2_vectorisation.cpp.o"
  "CMakeFiles/fig2_vectorisation.dir/fig2_vectorisation.cpp.o.d"
  "fig2_vectorisation"
  "fig2_vectorisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_vectorisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
