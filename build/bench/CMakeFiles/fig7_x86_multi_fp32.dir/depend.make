# Empty dependencies file for fig7_x86_multi_fp32.
# This may be replaced when dependencies are built.
