file(REMOVE_RECURSE
  "CMakeFiles/fig7_x86_multi_fp32.dir/fig7_x86_multi_fp32.cpp.o"
  "CMakeFiles/fig7_x86_multi_fp32.dir/fig7_x86_multi_fp32.cpp.o.d"
  "fig7_x86_multi_fp32"
  "fig7_x86_multi_fp32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_x86_multi_fp32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
