file(REMOVE_RECURSE
  "CMakeFiles/whatif_nextgen.dir/whatif_nextgen.cpp.o"
  "CMakeFiles/whatif_nextgen.dir/whatif_nextgen.cpp.o.d"
  "whatif_nextgen"
  "whatif_nextgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_nextgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
