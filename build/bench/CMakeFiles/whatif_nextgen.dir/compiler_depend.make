# Empty compiler generated dependencies file for whatif_nextgen.
# This may be replaced when dependencies are built.
