# Empty dependencies file for fig6_x86_multi_fp64.
# This may be replaced when dependencies are built.
