file(REMOVE_RECURSE
  "CMakeFiles/fig6_x86_multi_fp64.dir/fig6_x86_multi_fp64.cpp.o"
  "CMakeFiles/fig6_x86_multi_fp64.dir/fig6_x86_multi_fp64.cpp.o.d"
  "fig6_x86_multi_fp64"
  "fig6_x86_multi_fp64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_x86_multi_fp64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
