file(REMOVE_RECURSE
  "libsgp_core.a"
)
