file(REMOVE_RECURSE
  "CMakeFiles/sgp_core.dir/kernel_base.cpp.o"
  "CMakeFiles/sgp_core.dir/kernel_base.cpp.o.d"
  "CMakeFiles/sgp_core.dir/registry.cpp.o"
  "CMakeFiles/sgp_core.dir/registry.cpp.o.d"
  "libsgp_core.a"
  "libsgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
