# Empty compiler generated dependencies file for sgp_core.
# This may be replaced when dependencies are built.
