file(REMOVE_RECURSE
  "libsgp_experiments.a"
)
