# Empty dependencies file for sgp_experiments.
# This may be replaced when dependencies are built.
