file(REMOVE_RECURSE
  "CMakeFiles/sgp_experiments.dir/experiments.cpp.o"
  "CMakeFiles/sgp_experiments.dir/experiments.cpp.o.d"
  "libsgp_experiments.a"
  "libsgp_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
