file(REMOVE_RECURSE
  "CMakeFiles/sgp_distributed.dir/dist_simulator.cpp.o"
  "CMakeFiles/sgp_distributed.dir/dist_simulator.cpp.o.d"
  "CMakeFiles/sgp_distributed.dir/network.cpp.o"
  "CMakeFiles/sgp_distributed.dir/network.cpp.o.d"
  "libsgp_distributed.a"
  "libsgp_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
