
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distributed/dist_simulator.cpp" "src/distributed/CMakeFiles/sgp_distributed.dir/dist_simulator.cpp.o" "gcc" "src/distributed/CMakeFiles/sgp_distributed.dir/dist_simulator.cpp.o.d"
  "/root/repo/src/distributed/network.cpp" "src/distributed/CMakeFiles/sgp_distributed.dir/network.cpp.o" "gcc" "src/distributed/CMakeFiles/sgp_distributed.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sgp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/sgp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/rvv/CMakeFiles/sgp_rvv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
