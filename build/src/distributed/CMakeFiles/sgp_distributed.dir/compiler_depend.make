# Empty compiler generated dependencies file for sgp_distributed.
# This may be replaced when dependencies are built.
