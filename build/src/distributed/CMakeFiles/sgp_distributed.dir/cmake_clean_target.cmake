file(REMOVE_RECURSE
  "libsgp_distributed.a"
)
