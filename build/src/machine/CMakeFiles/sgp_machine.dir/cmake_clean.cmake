file(REMOVE_RECURSE
  "CMakeFiles/sgp_machine.dir/descriptor.cpp.o"
  "CMakeFiles/sgp_machine.dir/descriptor.cpp.o.d"
  "CMakeFiles/sgp_machine.dir/placement.cpp.o"
  "CMakeFiles/sgp_machine.dir/placement.cpp.o.d"
  "CMakeFiles/sgp_machine.dir/serialize.cpp.o"
  "CMakeFiles/sgp_machine.dir/serialize.cpp.o.d"
  "libsgp_machine.a"
  "libsgp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
