file(REMOVE_RECURSE
  "libsgp_machine.a"
)
