# Empty compiler generated dependencies file for sgp_machine.
# This may be replaced when dependencies are built.
