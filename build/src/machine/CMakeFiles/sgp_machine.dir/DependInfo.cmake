
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/descriptor.cpp" "src/machine/CMakeFiles/sgp_machine.dir/descriptor.cpp.o" "gcc" "src/machine/CMakeFiles/sgp_machine.dir/descriptor.cpp.o.d"
  "/root/repo/src/machine/placement.cpp" "src/machine/CMakeFiles/sgp_machine.dir/placement.cpp.o" "gcc" "src/machine/CMakeFiles/sgp_machine.dir/placement.cpp.o.d"
  "/root/repo/src/machine/serialize.cpp" "src/machine/CMakeFiles/sgp_machine.dir/serialize.cpp.o" "gcc" "src/machine/CMakeFiles/sgp_machine.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
