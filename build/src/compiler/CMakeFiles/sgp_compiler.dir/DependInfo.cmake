
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/model.cpp" "src/compiler/CMakeFiles/sgp_compiler.dir/model.cpp.o" "gcc" "src/compiler/CMakeFiles/sgp_compiler.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sgp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/rvv/CMakeFiles/sgp_rvv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
