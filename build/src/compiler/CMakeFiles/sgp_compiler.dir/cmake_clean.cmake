file(REMOVE_RECURSE
  "CMakeFiles/sgp_compiler.dir/model.cpp.o"
  "CMakeFiles/sgp_compiler.dir/model.cpp.o.d"
  "libsgp_compiler.a"
  "libsgp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
