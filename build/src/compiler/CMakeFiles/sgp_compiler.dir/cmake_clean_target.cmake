file(REMOVE_RECURSE
  "libsgp_compiler.a"
)
