# Empty dependencies file for sgp_compiler.
# This may be replaced when dependencies are built.
