
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cpp" "src/sim/CMakeFiles/sgp_sim.dir/cache_model.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/cache_model.cpp.o.d"
  "/root/repo/src/sim/core_model.cpp" "src/sim/CMakeFiles/sgp_sim.dir/core_model.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/core_model.cpp.o.d"
  "/root/repo/src/sim/memory_model.cpp" "src/sim/CMakeFiles/sgp_sim.dir/memory_model.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/memory_model.cpp.o.d"
  "/root/repo/src/sim/pattern.cpp" "src/sim/CMakeFiles/sgp_sim.dir/pattern.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/pattern.cpp.o.d"
  "/root/repo/src/sim/roofline.cpp" "src/sim/CMakeFiles/sgp_sim.dir/roofline.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/roofline.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/sgp_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/sync_model.cpp" "src/sim/CMakeFiles/sgp_sim.dir/sync_model.cpp.o" "gcc" "src/sim/CMakeFiles/sgp_sim.dir/sync_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sgp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/sgp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/rvv/CMakeFiles/sgp_rvv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
