# Empty compiler generated dependencies file for sgp_sim.
# This may be replaced when dependencies are built.
