file(REMOVE_RECURSE
  "CMakeFiles/sgp_sim.dir/cache_model.cpp.o"
  "CMakeFiles/sgp_sim.dir/cache_model.cpp.o.d"
  "CMakeFiles/sgp_sim.dir/core_model.cpp.o"
  "CMakeFiles/sgp_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/sgp_sim.dir/memory_model.cpp.o"
  "CMakeFiles/sgp_sim.dir/memory_model.cpp.o.d"
  "CMakeFiles/sgp_sim.dir/pattern.cpp.o"
  "CMakeFiles/sgp_sim.dir/pattern.cpp.o.d"
  "CMakeFiles/sgp_sim.dir/roofline.cpp.o"
  "CMakeFiles/sgp_sim.dir/roofline.cpp.o.d"
  "CMakeFiles/sgp_sim.dir/simulator.cpp.o"
  "CMakeFiles/sgp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sgp_sim.dir/sync_model.cpp.o"
  "CMakeFiles/sgp_sim.dir/sync_model.cpp.o.d"
  "libsgp_sim.a"
  "libsgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
