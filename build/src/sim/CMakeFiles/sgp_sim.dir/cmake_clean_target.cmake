file(REMOVE_RECURSE
  "libsgp_sim.a"
)
