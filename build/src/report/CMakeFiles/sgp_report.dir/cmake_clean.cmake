file(REMOVE_RECURSE
  "CMakeFiles/sgp_report.dir/csv.cpp.o"
  "CMakeFiles/sgp_report.dir/csv.cpp.o.d"
  "CMakeFiles/sgp_report.dir/stats.cpp.o"
  "CMakeFiles/sgp_report.dir/stats.cpp.o.d"
  "CMakeFiles/sgp_report.dir/table.cpp.o"
  "CMakeFiles/sgp_report.dir/table.cpp.o.d"
  "libsgp_report.a"
  "libsgp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
