file(REMOVE_RECURSE
  "libsgp_report.a"
)
