# Empty compiler generated dependencies file for sgp_report.
# This may be replaced when dependencies are built.
