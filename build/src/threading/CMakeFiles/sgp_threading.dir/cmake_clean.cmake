file(REMOVE_RECURSE
  "CMakeFiles/sgp_threading.dir/pool.cpp.o"
  "CMakeFiles/sgp_threading.dir/pool.cpp.o.d"
  "libsgp_threading.a"
  "libsgp_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
