file(REMOVE_RECURSE
  "libsgp_threading.a"
)
