# Empty dependencies file for sgp_threading.
# This may be replaced when dependencies are built.
