file(REMOVE_RECURSE
  "CMakeFiles/sgp_cachesim.dir/cache.cpp.o"
  "CMakeFiles/sgp_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/sgp_cachesim.dir/trace.cpp.o"
  "CMakeFiles/sgp_cachesim.dir/trace.cpp.o.d"
  "libsgp_cachesim.a"
  "libsgp_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
