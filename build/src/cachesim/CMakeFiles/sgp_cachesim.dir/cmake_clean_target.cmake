file(REMOVE_RECURSE
  "libsgp_cachesim.a"
)
