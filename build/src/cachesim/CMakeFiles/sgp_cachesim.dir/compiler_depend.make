# Empty compiler generated dependencies file for sgp_cachesim.
# This may be replaced when dependencies are built.
