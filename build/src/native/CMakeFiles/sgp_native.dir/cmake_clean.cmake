file(REMOVE_RECURSE
  "CMakeFiles/sgp_native.dir/suite_runner.cpp.o"
  "CMakeFiles/sgp_native.dir/suite_runner.cpp.o.d"
  "libsgp_native.a"
  "libsgp_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
