# Empty dependencies file for sgp_native.
# This may be replaced when dependencies are built.
