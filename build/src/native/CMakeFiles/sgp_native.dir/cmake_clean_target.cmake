file(REMOVE_RECURSE
  "libsgp_native.a"
)
