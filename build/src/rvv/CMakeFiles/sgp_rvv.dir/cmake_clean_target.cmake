file(REMOVE_RECURSE
  "libsgp_rvv.a"
)
