
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rvv/analysis.cpp" "src/rvv/CMakeFiles/sgp_rvv.dir/analysis.cpp.o" "gcc" "src/rvv/CMakeFiles/sgp_rvv.dir/analysis.cpp.o.d"
  "/root/repo/src/rvv/codegen.cpp" "src/rvv/CMakeFiles/sgp_rvv.dir/codegen.cpp.o" "gcc" "src/rvv/CMakeFiles/sgp_rvv.dir/codegen.cpp.o.d"
  "/root/repo/src/rvv/interpreter.cpp" "src/rvv/CMakeFiles/sgp_rvv.dir/interpreter.cpp.o" "gcc" "src/rvv/CMakeFiles/sgp_rvv.dir/interpreter.cpp.o.d"
  "/root/repo/src/rvv/ir.cpp" "src/rvv/CMakeFiles/sgp_rvv.dir/ir.cpp.o" "gcc" "src/rvv/CMakeFiles/sgp_rvv.dir/ir.cpp.o.d"
  "/root/repo/src/rvv/rollback.cpp" "src/rvv/CMakeFiles/sgp_rvv.dir/rollback.cpp.o" "gcc" "src/rvv/CMakeFiles/sgp_rvv.dir/rollback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
