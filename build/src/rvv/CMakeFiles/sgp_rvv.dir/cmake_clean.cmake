file(REMOVE_RECURSE
  "CMakeFiles/sgp_rvv.dir/analysis.cpp.o"
  "CMakeFiles/sgp_rvv.dir/analysis.cpp.o.d"
  "CMakeFiles/sgp_rvv.dir/codegen.cpp.o"
  "CMakeFiles/sgp_rvv.dir/codegen.cpp.o.d"
  "CMakeFiles/sgp_rvv.dir/interpreter.cpp.o"
  "CMakeFiles/sgp_rvv.dir/interpreter.cpp.o.d"
  "CMakeFiles/sgp_rvv.dir/ir.cpp.o"
  "CMakeFiles/sgp_rvv.dir/ir.cpp.o.d"
  "CMakeFiles/sgp_rvv.dir/rollback.cpp.o"
  "CMakeFiles/sgp_rvv.dir/rollback.cpp.o.d"
  "libsgp_rvv.a"
  "libsgp_rvv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_rvv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
