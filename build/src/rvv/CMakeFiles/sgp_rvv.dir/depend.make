# Empty dependencies file for sgp_rvv.
# This may be replaced when dependencies are built.
