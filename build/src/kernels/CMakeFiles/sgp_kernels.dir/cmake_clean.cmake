file(REMOVE_RECURSE
  "CMakeFiles/sgp_kernels.dir/algorithm/algorithm.cpp.o"
  "CMakeFiles/sgp_kernels.dir/algorithm/algorithm.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/apps/apps_a.cpp.o"
  "CMakeFiles/sgp_kernels.dir/apps/apps_a.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/apps/apps_b.cpp.o"
  "CMakeFiles/sgp_kernels.dir/apps/apps_b.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/basic/basic_a.cpp.o"
  "CMakeFiles/sgp_kernels.dir/basic/basic_a.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/basic/basic_b.cpp.o"
  "CMakeFiles/sgp_kernels.dir/basic/basic_b.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/detail/signature_builder.cpp.o"
  "CMakeFiles/sgp_kernels.dir/detail/signature_builder.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/lcals/lcals.cpp.o"
  "CMakeFiles/sgp_kernels.dir/lcals/lcals.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/polybench/polybench_a.cpp.o"
  "CMakeFiles/sgp_kernels.dir/polybench/polybench_a.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/polybench/polybench_b.cpp.o"
  "CMakeFiles/sgp_kernels.dir/polybench/polybench_b.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/register_all.cpp.o"
  "CMakeFiles/sgp_kernels.dir/register_all.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/stream/stream.cpp.o"
  "CMakeFiles/sgp_kernels.dir/stream/stream.cpp.o.d"
  "CMakeFiles/sgp_kernels.dir/vector_facts.cpp.o"
  "CMakeFiles/sgp_kernels.dir/vector_facts.cpp.o.d"
  "libsgp_kernels.a"
  "libsgp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
