# Empty dependencies file for sgp_kernels.
# This may be replaced when dependencies are built.
