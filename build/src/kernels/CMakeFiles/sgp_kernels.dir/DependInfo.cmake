
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/algorithm/algorithm.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/algorithm/algorithm.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/algorithm/algorithm.cpp.o.d"
  "/root/repo/src/kernels/apps/apps_a.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/apps/apps_a.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/apps/apps_a.cpp.o.d"
  "/root/repo/src/kernels/apps/apps_b.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/apps/apps_b.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/apps/apps_b.cpp.o.d"
  "/root/repo/src/kernels/basic/basic_a.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/basic/basic_a.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/basic/basic_a.cpp.o.d"
  "/root/repo/src/kernels/basic/basic_b.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/basic/basic_b.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/basic/basic_b.cpp.o.d"
  "/root/repo/src/kernels/detail/signature_builder.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/detail/signature_builder.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/detail/signature_builder.cpp.o.d"
  "/root/repo/src/kernels/lcals/lcals.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/lcals/lcals.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/lcals/lcals.cpp.o.d"
  "/root/repo/src/kernels/polybench/polybench_a.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/polybench/polybench_a.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/polybench/polybench_a.cpp.o.d"
  "/root/repo/src/kernels/polybench/polybench_b.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/polybench/polybench_b.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/polybench/polybench_b.cpp.o.d"
  "/root/repo/src/kernels/register_all.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/register_all.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/register_all.cpp.o.d"
  "/root/repo/src/kernels/stream/stream.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/stream/stream.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/stream/stream.cpp.o.d"
  "/root/repo/src/kernels/vector_facts.cpp" "src/kernels/CMakeFiles/sgp_kernels.dir/vector_facts.cpp.o" "gcc" "src/kernels/CMakeFiles/sgp_kernels.dir/vector_facts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
