file(REMOVE_RECURSE
  "libsgp_kernels.a"
)
