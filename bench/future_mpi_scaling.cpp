// The paper's "further work": distributed-memory (MPI) performance of
// clusters built from SG2042 nodes. Strong-scales representative
// kernels over 1..64 nodes for three realistic interconnect choices and
// prints speedup/parallel-efficiency rows in the style of Tables 1-3.
#include <iostream>

#include "bench/bench_common.hpp"
#include "distributed/dist_simulator.hpp"
#include "kernels/register_all.hpp"

namespace {

using namespace sgp;

const char* kKernels[] = {"TRIAD", "DOT", "JACOBI_2D", "HEAT_3D", "GEMM"};

core::KernelSignature find_sig(const std::string& name) {
  for (auto& s : kernels::all_signatures()) {
    if (s.name == name) return s;
  }
  throw std::runtime_error("no kernel " + name);
}

}  // namespace

int main(int argc, char** argv) {
  // The distributed simulator sits above the node-level engine, so this
  // binary only uses the shared flags; --jobs/--perf still apply to any
  // engine-backed work in-process.
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  const distributed::NetworkDescriptor networks[] = {
      distributed::gigabit_ethernet(),
      distributed::ethernet_25g(),
      distributed::infiniband_hdr(),
  };
  const int node_counts[] = {1, 2, 4, 8, 16, 32, 64};

  sim::SimConfig cfg;
  cfg.precision = core::Precision::FP32;
  cfg.nthreads = 32;  // the per-class best practice from Section 3.2
  cfg.placement = machine::Placement::ClusterCyclic;

  std::cout << "== Further work: MPI strong scaling of SG2042 clusters "
               "(FP32, 32 threads/node, cluster placement) ==\n";
  std::cout << "Speedup relative to one node; PE = speedup / nodes.\n\n";

  report::CsvWriter csv_out(
      {"network", "kernel", "nodes", "speedup", "pe", "comm_fraction"});

  for (const auto& net : networks) {
    std::cout << "-- " << net.name << " --\n";
    std::vector<std::string> headers{"nodes"};
    for (const char* k : kKernels) {
      headers.push_back(std::string(k) + " SU");
      headers.push_back("PE");
      headers.push_back("comm%");
    }
    report::Table t(headers);

    // Baselines on one node.
    std::map<std::string, double> t1;
    for (const char* k : kKernels) {
      distributed::ClusterDescriptor c1{machine::sg2042(), net, 1};
      t1[k] = distributed::DistributedSimulator(c1).seconds(find_sig(k),
                                                            cfg);
    }

    for (const int nodes : node_counts) {
      std::vector<std::string> row{std::to_string(nodes)};
      for (const char* k : kKernels) {
        distributed::ClusterDescriptor c{machine::sg2042(), net, nodes};
        const auto bd =
            distributed::DistributedSimulator(c).run(find_sig(k), cfg);
        const double su = t1[k] / bd.total_s;
        const double pe = su / nodes;
        const double comm_frac =
            bd.total_s > 0.0 ? (bd.comm_s + bd.sync_s) / bd.total_s : 0.0;
        row.push_back(report::Table::num(su, 2));
        row.push_back(report::Table::num(pe, 2));
        row.push_back(report::Table::num(100.0 * comm_frac, 0));
        csv_out.add_row({net.name, k, std::to_string(nodes),
                         report::Table::num(su, 3),
                         report::Table::num(pe, 3),
                         report::Table::num(comm_frac, 4)});
      }
      t.add_row(std::move(row));
    }
    std::cout << t.render() << "\n";
  }

  if (opt.csv_dir) csv_out.write(*opt.csv_dir + "/future_mpi.csv");
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());

  std::cout
      << "Reading: with the onboard Gigabit Ethernet, halo-bound kernels\n"
         "stop scaling after a handful of nodes -- confirming the paper's\n"
         "caveat that network auxiliaries, not the CPU, would gate\n"
         "SG2042 clusters. An HDR-class fabric restores near-linear\n"
         "scaling for everything but the transpose-heavy matrix chains.\n";
  return 0;
}
