// Microbenchmark + acceptance smoke for the sgp-serve request server.
//
// Drives a synthetic client workload (sweep requests over several
// machines/kernel sets, with a deliberate share of duplicated content)
// through two server lifetimes on one durable store:
//
//   cold pass : empty store — every unique request costs simulator
//               work; duplicates within a batch coalesce;
//   warm pass : a fresh Server on the same directory — the persistent
//               memo cache answers from disk.
//
// Gates: every response line is ok, the warm pass does >= 3x fewer
// Simulator::run calls than the cold pass, and the warm cache hit rate
// is >= 0.9. Writes requests/second and hit rates to BENCH_serve.json;
// exits 1 if any gate fails. Wall-clock numbers are reported but never
// gated, so sanitizer builds run the same binary.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "serve/server.hpp"

namespace {

using namespace sgp;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// The synthetic client mix: every entry is one request line template;
/// ids are stamped per pass so restarts never collide. Roughly a third
/// of the lines repeat earlier content — the coalescing/caching case a
/// shared service exists for.
std::vector<std::string> workload_bodies() {
  const std::vector<std::string> machines = {"sg2042", "rome", "icelake"};
  const std::vector<std::string> kernel_sets = {
      R"(["TRIAD","COPY"])", R"(["GEMM"])", R"(["DOT","MUL"])"};
  std::vector<std::string> bodies;
  for (const auto& m : machines) {
    for (const auto& ks : kernel_sets) {
      bodies.push_back(R"("op":"sweep","machine":")" + m +
                       R"(","kernels":)" + ks +
                       R"(,"precision":"fp32","threads":[1,4,16])");
    }
  }
  // Duplicate content: repeat the first half of the mix.
  const std::size_t unique = bodies.size();
  for (std::size_t i = 0; i < unique / 2; ++i) bodies.push_back(bodies[i]);
  return bodies;
}

struct PassResult {
  std::uint64_t requests = 0;
  std::uint64_t ok_responses = 0;
  double wall_s = 0.0;
  serve::ServerStats stats;
  engine::EngineCounters counters;

  double requests_per_second() const {
    return wall_s > 0.0 ? double(requests) / wall_s : 0.0;
  }
};

PassResult run_pass(const std::string& dir, const std::string& tag,
                    int jobs) {
  serve::ServerOptions opt;
  opt.jobs = jobs;
  opt.warn = false;
  opt.persist_dir = dir;
  serve::Server server(opt);

  PassResult r;
  std::mutex mu;
  const auto bodies = workload_bodies();
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n = 0;
  for (const auto& body : bodies) {
    const std::string line = "{\"id\":\"" + tag + "-" +
                             std::to_string(n++) + "\"," + body + "}";
    server.submit_line(line, [&](std::string resp) {
      std::lock_guard<std::mutex> lk(mu);
      if (resp.find("\"ok\":true") != std::string::npos) ++r.ok_responses;
    });
  }
  server.drain();
  r.wall_s = seconds_since(t0);
  r.requests = bodies.size();
  r.stats = server.stats();
  r.counters = server.engine_counters();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  std::string dir = "serve_bench_store";
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": missing value for " << arg << "\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = value();
    } else if (arg == "--persist") {
      dir = value();
    } else if (arg == "--jobs") {
      const auto v = serve::parse_u64(value());
      if (!v || *v > 4096) {
        std::cerr << argv[0] << ": bad value for --jobs\n";
        std::exit(64);
      }
      jobs = static_cast<int>(*v);
    } else {
      std::cerr << argv[0] << ": unknown flag '" << arg << "'\n"
                << "usage: " << argv[0]
                << " [--json <path>] [--persist <dir>] [--jobs <n>]\n";
      std::exit(64);
    }
  }

  std::cout << "== micro_serve: request server, cold vs warm restart ==\n";
  std::filesystem::remove_all(dir);

  const auto cold = run_pass(dir, "cold", jobs);
  const auto warm = run_pass(dir, "warm", jobs);

  const std::uint64_t cold_sims = cold.counters.simulations;
  const std::uint64_t warm_sims = warm.counters.simulations;
  const double sim_ratio =
      double(cold_sims) / double(std::max<std::uint64_t>(warm_sims, 1));
  // Warm hit rate: evaluation points answered without a fresh
  // Simulator::run, over all points the warm pass served.
  const double warm_hit_rate =
      warm.stats.points > 0
          ? 1.0 - double(warm_sims) / double(warm.stats.points)
          : 0.0;
  const bool all_ok = cold.ok_responses == cold.requests &&
                      warm.ok_responses == warm.requests;
  const bool pass =
      all_ok && sim_ratio >= 3.0 && warm_hit_rate >= 0.9;

  auto row = [](const char* name, const PassResult& p) {
    std::cout << "  " << name << ": " << p.requests << " requests, "
              << p.counters.simulations << " Simulator::run, "
              << p.stats.coalesced << " coalesced, "
              << std::fixed << std::setprecision(0)
              << p.requests_per_second() << " req/s\n"
              << std::defaultfloat << std::setprecision(6);
  };
  row("cold (empty store)", cold);
  row("warm (restart)   ", warm);
  std::cout << "Simulator::run cold/warm: " << std::setprecision(2)
            << sim_ratio << "x (need >= 3); warm hit rate "
            << warm_hit_rate << " (need >= 0.9)\n"
            << (pass ? "PASS" : "FAIL") << "\n";

  {
    std::ofstream json(json_path);
    json << std::setprecision(6) << std::boolalpha;
    json << "{\n"
         << "  \"bench\": \"micro_serve\",\n"
         << "  \"store_dir\": \"" << dir << "\",\n"
         << "  \"cold\": {\"requests\": " << cold.requests
         << ", \"requests_per_second\": " << cold.requests_per_second()
         << ", \"simulations\": " << cold_sims
         << ", \"coalesced\": " << cold.stats.coalesced
         << ", \"points\": " << cold.stats.points
         << ", \"wall_s\": " << cold.wall_s << "},\n"
         << "  \"warm\": {\"requests\": " << warm.requests
         << ", \"requests_per_second\": " << warm.requests_per_second()
         << ", \"simulations\": " << warm_sims
         << ", \"resumed_points\": "
         << warm.counters.persist.cache.resumed_points
         << ", \"wall_s\": " << warm.wall_s << "},\n"
         << "  \"cold_warm_sim_ratio\": " << sim_ratio << ",\n"
         << "  \"warm_hit_rate\": " << warm_hit_rate << ",\n"
         << "  \"all_responses_ok\": " << all_ok << ",\n"
         << "  \"pass\": " << pass << "\n"
         << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
