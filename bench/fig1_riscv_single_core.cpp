// Reproduces Figure 1: single-core comparison of the VisionFive V1/V2
// and the SG2042, FP32 and FP64, baselined against the V2 at FP64.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  const auto series = sgp::experiments::figure1(eng);
  sgp::bench::print_series(
      "Figure 1: single-core RISC-V comparison (baseline: VisionFive V2 "
      "FP64)",
      series);
  if (opt.csv_dir) {
    sgp::bench::write_series_csv(*opt.csv_dir + "/fig1.csv", series);
  }
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());
  return 0;
}
