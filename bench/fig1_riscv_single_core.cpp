// Reproduces Figure 1: single-core comparison of the VisionFive V1/V2
// and the SG2042, FP32 and FP64, baselined against the V2 at FP64.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto series = sgp::experiments::figure1();
  sgp::bench::print_series(
      "Figure 1: single-core RISC-V comparison (baseline: VisionFive V2 "
      "FP64)",
      series);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_series_csv(*dir + "/fig1.csv", series);
  }
  return 0;
}
