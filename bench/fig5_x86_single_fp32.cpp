// Reproduces Figure 5: x86 vs SG2042, single core, FP32.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto series = sgp::experiments::x86_comparison(
      sgp::core::Precision::FP32, /*multithreaded=*/false);
  sgp::bench::print_series(
      "Figure 5: FP32 single-core x86 comparison (baseline: SG2042)",
      series);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_series_csv(*dir + "/fig5.csv", series);
  }
  return 0;
}
