// Reproduces Table 2: SG2042 thread scaling with NUMA-cyclic placement.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto table =
      sgp::experiments::scaling_table(sgp::machine::Placement::CyclicNuma);
  sgp::bench::print_scaling(
      "Table 2: SG2042 scaling, NUMA-cyclic thread placement (FP32)",
      table);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_scaling_csv(*dir + "/tab2.csv", table);
  }
  return 0;
}
