// The paper's closing wishlist, as a what-if study: "for the next
// generation ... it would be very useful to have RVV v1.0 ... FP64
// vectorisation, wider vector registers, increased L1 cache, and more
// memory controllers per NUMA region". Each variant modifies the SG2042
// descriptor accordingly and re-runs the x86 comparison so the gap to
// the AMD Rome CPU can be watched closing.
#include <iostream>

#include "bench/bench_common.hpp"
#include "kernels/register_all.hpp"
#include "report/ratio.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sgp;

struct Variant {
  const char* name;
  void (*apply)(machine::MachineDescriptor&);
};

// Geometric-mean time ratio Rome/variant over the whole suite (values
// above 1 mean the variant is faster than Rome).
double vs_rome(const machine::MachineDescriptor& variant,
               core::Precision prec) {
  const sim::Simulator v(variant);
  const sim::Simulator rome(machine::amd_rome());

  sim::SimConfig vcfg;
  vcfg.precision = prec;
  vcfg.nthreads = 32;
  vcfg.placement = machine::Placement::ClusterCyclic;
  sim::SimConfig rcfg;
  rcfg.precision = prec;
  rcfg.nthreads = 64;

  std::vector<double> ratios;
  for (const auto& sig : kernels::all_signatures()) {
    ratios.push_back(rome.seconds(sig, rcfg) / v.seconds(sig, vcfg));
  }
  return report::geometric_mean(ratios);
}

}  // namespace

int main() {
  const Variant variants[] = {
      {"SG2042 as shipped", [](machine::MachineDescriptor&) {}},
      {"+ FP64 vectorisation",
       [](machine::MachineDescriptor& m) {
         m.core.vector->fp64 = true;
         m.core.vector->efficiency_fp64 = m.core.vector->efficiency_fp32;
       }},
      {"+ 256-bit vectors",
       [](machine::MachineDescriptor& m) {
         m.core.vector->fp64 = true;
         m.core.vector->efficiency_fp64 = m.core.vector->efficiency_fp32;
         m.core.vector->width_bits = 256;
       }},
      {"+ 2 controllers/region",
       [](machine::MachineDescriptor& m) {
         m.core.vector->fp64 = true;
         m.core.vector->efficiency_fp64 = m.core.vector->efficiency_fp32;
         m.core.vector->width_bits = 256;
         for (auto& r : m.numa) {
           r.controllers = 2;
           r.mem_bw_gbs *= 2.0;
         }
         m.oversubscribe_knee = 16.0;  // twice the row-buffer headroom
         m.cluster_bw_gbs *= 2.0;
         m.core.stream_bw_gbs *= 1.5;
       }},
      {"+ 128 KB L1 / better mem",
       [](machine::MachineDescriptor& m) {
         m.core.vector->fp64 = true;
         m.core.vector->efficiency_fp64 = m.core.vector->efficiency_fp32;
         m.core.vector->width_bits = 256;
         for (auto& r : m.numa) {
           r.controllers = 2;
           r.mem_bw_gbs *= 2.0;
         }
         m.oversubscribe_knee = 16.0;
         m.cluster_bw_gbs *= 2.0;
         m.core.stream_bw_gbs *= 1.5;
         m.l1d.size_bytes *= 2;
         m.core.scalar_stream_derate = 0.8;  // better scalar prefetch
       }},
  };

  std::cout << "== What-if: the conclusion's next-generation wishlist ==\n";
  std::cout << "Whole-suite geometric-mean performance vs the 64-core AMD "
               "Rome\n(1.00 = parity; the shipped SG2042 is the first "
               "row).\n\n";

  report::Table t({"variant (cumulative)", "vs Rome FP64", "vs Rome FP32"});
  for (const auto& variant : variants) {
    auto m = machine::sg2042();
    variant.apply(m);
    m.validate();
    t.add_row({variant.name,
               report::Table::num(vs_rome(m, core::Precision::FP64), 3),
               report::Table::num(vs_rome(m, core::Precision::FP32), 3)});
  }
  std::cout << t.render() << "\n";
  std::cout << "Each row adds one wishlist item on top of the previous "
               "row, so the\nlast row is the paper's full hypothetical "
               "next-generation part.\n";
  return 0;
}
