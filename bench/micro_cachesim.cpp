// Microbenchmark + acceptance proof for the batched cachesim replay
// engine (src/cachesim/replay.hpp).
//
// Replays a set of sweep specs on the SG2042 descriptor through three
// paths:
//
//   vector pass  : generate_sweep materializes every access, then one
//                  Hierarchy::access call per record per rep (the
//                  pre-engine behaviour);
//   stream pass  : arena-decoded LineSegment buffer + SoA batched tag
//                  lookups + steady-state early exit (replay_stream);
//   sharded pass : the same replay split across set-shards on the
//                  thread pool (replay_sharded) — identity-gated, not
//                  speed-gated, since shard wins need spare cores.
//
// Every case asserts bit-identical per-level CacheStats, DRAM bytes,
// access counts and steady miss rates across all three paths, and
// carries its own wall-clock speedup gate (vector/stream): >= 10x for
// the streaming/strided shapes the engine was built for, >= 3x for the
// stencil/gather/recurrence shapes the SoA batch path and the decoded
// Gather fast path speed up (previously ~1-1.5x). Counters land in
// BENCH_cachesim.json; exits 1 on any mismatch or a missed gate, 64 on
// bad usage.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "cachesim/replay.hpp"
#include "cachesim/trace.hpp"
#include "machine/descriptor.hpp"
#include "report/table.hpp"

namespace {

using namespace sgp;

struct BenchCase {
  std::string name;
  cachesim::SweepSpec spec;
  int reps = 8;
  /// Wall-clock vector/stream speedup this case must reach; 0 gates on
  /// bit-identity only.
  double min_speedup = 0.0;
};

struct CaseResult {
  double vector_s = 0.0;
  double stream_s = 0.0;
  double sharded_s = 0.0;
  double speedup = 0.0;
  bool identical = false;          ///< vector == stream
  bool sharded_identical = false;  ///< vector == sharded
  std::size_t shards = 1;
  std::uint64_t accesses = 0;
  double coalesce_factor = 0.0;  ///< accesses per L1 tag check
};

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// Best-of-N wall time of one replay invocation.
template <typename Fn>
double time_best(int trials, const Fn& fn) {
  double best = -1.0;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = seconds(t0);
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

bool results_identical(const cachesim::ReplayResult& a,
                       const cachesim::ReplayResult& b) {
  if (a.accesses != b.accesses) return false;
  if (a.steady_miss_rate != b.steady_miss_rate) return false;
  if (a.hierarchy.levels() != b.hierarchy.levels()) return false;
  if (a.hierarchy.dram_bytes() != b.hierarchy.dram_bytes()) return false;
  for (std::size_t l = 0; l < a.hierarchy.levels(); ++l) {
    if (!(a.hierarchy.level(l).stats() == b.hierarchy.level(l).stats())) {
      return false;
    }
  }
  return true;
}

CaseResult run_case(const machine::MachineDescriptor& m,
                    const BenchCase& c) {
  CaseResult r;
  const int vec_trials = 3;
  const int stream_trials = 10;

  const auto cfgs = cachesim::hierarchy_configs(m);
  r.shards = std::min<std::size_t>(cachesim::max_shards(cfgs), 8);

  cachesim::ReplayResult vec =
      cachesim::replay_vector(m, c.spec, c.reps);
  cachesim::ReplayResult str =
      cachesim::replay_stream(m, c.spec, c.reps);
  cachesim::ReplayResult shd =
      cachesim::replay_sharded(m, c.spec, c.reps, r.shards, /*jobs=*/2);
  r.identical = results_identical(vec, str);
  r.sharded_identical = results_identical(vec, shd);
  r.accesses = vec.accesses;
  const auto& t = str.hierarchy.telemetry();
  r.coalesce_factor = t.line_segments == 0
                          ? 1.0
                          : static_cast<double>(t.accesses) /
                                static_cast<double>(t.line_segments);

  r.vector_s = time_best(vec_trials, [&] {
    (void)cachesim::replay_vector(m, c.spec, c.reps);
  });
  r.stream_s = time_best(stream_trials, [&] {
    (void)cachesim::replay_stream(m, c.spec, c.reps);
  });
  r.sharded_s = time_best(vec_trials, [&] {
    (void)cachesim::replay_sharded(m, c.spec, c.reps, r.shards,
                                   /*jobs=*/2);
  });
  r.speedup = r.stream_s > 0.0 ? r.vector_s / r.stream_s : 0.0;
  return r;
}

[[noreturn]] void usage_error(const char* prog, const std::string& what) {
  std::cerr << prog << ": " << what << "\n"
            << "usage: " << prog << " [--json <path>] [--identity-only]\n";
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_cachesim.json";
  // The speedup gates are wall-clock assertions and only mean something
  // in an uninstrumented build; sanitizer runs (which flatten the
  // paths' relative cost) pass --identity-only and gate on bit-identity
  // alone.
  bool identity_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for --json");
      json_path = argv[++i];
    } else if (arg == "--identity-only") {
      identity_only = true;
    } else {
      usage_error(argv[0], "unknown flag '" + arg + "'");
    }
  }

  using core::AccessPattern;
  auto spec = [](AccessPattern p, std::size_t arrays, std::size_t elems,
                 std::size_t stride) {
    cachesim::SweepSpec s;
    s.pattern = p;
    s.arrays = arrays;
    s.elems = elems;
    s.stride_elems = stride;
    return s;
  };

  // Per-case speedup floors. The streaming/strided shapes keep the
  // original >= 10x gate; the per-element shapes (stencil, gather,
  // recurrence) gate at the >= 3x floor the SoA batch rework earns
  // them. stream_l1 and reduction stay identity-only: their traces are
  // so small that per-call hierarchy construction floors both paths.
  const std::vector<BenchCase> cases = {
      {"stream_l1", spec(AccessPattern::Streaming, 2, 1 << 10, 8), 64,
       0.0},
      {"stream_l2", spec(AccessPattern::Streaming, 2, 1 << 14, 8), 96,
       10.0},
      {"stream_dram", spec(AccessPattern::Streaming, 2, 1 << 19, 8), 24,
       10.0},
      {"strided_4", spec(AccessPattern::Strided, 2, 1 << 18, 4), 48,
       10.0},
      {"strided_16", spec(AccessPattern::Strided, 2, 1 << 18, 16), 48,
       10.0},
      {"stencil1d", spec(AccessPattern::Stencil1D, 2, 1 << 16, 8), 16,
       3.0},
      {"stencil2d", spec(AccessPattern::Stencil2D, 2, 1 << 16, 8), 16,
       3.0},
      {"gather", spec(AccessPattern::Gather, 2, 1 << 15, 8), 16, 3.0},
      {"sequential", spec(AccessPattern::Sequential, 1, 1 << 16, 8), 16,
       3.0},
      {"reduction", spec(AccessPattern::Reduction, 1, 1 << 16, 8), 8,
       0.0},
  };

  const auto m = machine::sg2042();
  std::cout << "== micro_cachesim: vector replay vs batched engine ("
            << m.name << ") ==\n";

  std::vector<CaseResult> results;
  bool identical_all = true;
  bool speed_ok = true;
  std::string missed_gates;
  for (const auto& c : cases) {
    results.push_back(run_case(m, c));
    const auto& r = results.back();
    identical_all =
        identical_all && r.identical && r.sharded_identical;
    if (c.min_speedup > 0.0 && r.speedup < c.min_speedup) {
      speed_ok = false;
      missed_gates += " " + c.name;
    }
  }
  const bool pass = identical_all && (identity_only || speed_ok);

  report::Table t({"case", "accesses", "vector ms", "stream ms",
                   "sharded ms", "speedup", "gate", "coalesce",
                   "identical"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto& r = results[i];
    t.add_row(
        {c.name, std::to_string(r.accesses),
         report::Table::num(r.vector_s * 1e3, 3),
         report::Table::num(r.stream_s * 1e3, 3),
         report::Table::num(r.sharded_s * 1e3, 3),
         report::Table::num(r.speedup, 1),
         c.min_speedup > 0.0 ? report::Table::num(c.min_speedup, 0) : "-",
         report::Table::num(r.coalesce_factor, 2),
         r.identical && r.sharded_identical ? "yes" : "NO"});
  }
  std::cout << t.render();
  if (identity_only) {
    std::cout << "speedup gates skipped: --identity-only\n";
  } else if (!speed_ok) {
    std::cout << "missed speedup gates:" << missed_gates << "\n";
  }
  std::cout << "stats identical on all patterns and paths "
            << "(vector/stream/sharded): "
            << (identical_all ? "yes" : "NO") << "\n";
  std::cout << (pass ? "PASS" : "FAIL") << "\n";

  {
    std::ofstream json(json_path);
    json << std::setprecision(6) << std::boolalpha;
    json << "{\n  \"bench\": \"micro_cachesim\",\n  \"machine\": \""
         << m.name << "\",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto& c = cases[i];
      const auto& r = results[i];
      json << "    {\"name\": \"" << c.name << "\", \"pattern\": \""
           << core::to_string(c.spec.pattern) << "\", \"elems\": "
           << c.spec.elems << ", \"reps\": " << c.reps
           << ", \"accesses\": " << r.accesses
           << ", \"vector_s\": " << r.vector_s
           << ", \"stream_s\": " << r.stream_s
           << ", \"sharded_s\": " << r.sharded_s
           << ", \"shards\": " << r.shards
           << ", \"speedup\": " << r.speedup
           << ", \"min_speedup\": " << c.min_speedup
           << ", \"identical\": " << r.identical
           << ", \"sharded_identical\": " << r.sharded_identical << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"speed_ok\": " << speed_ok
         << ",\n  \"identity_only\": " << identity_only
         << ",\n  \"identical_all\": " << identical_all
         << ",\n  \"pass\": " << pass << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  return pass ? 0 : 1;
}
