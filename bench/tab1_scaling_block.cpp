// Reproduces Table 1: SG2042 thread scaling (speedup and parallel
// efficiency) with block placement, FP32.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  const auto table =
      sgp::experiments::scaling_table(sgp::machine::Placement::Block, eng);
  sgp::bench::print_scaling(
      "Table 1: SG2042 scaling, block thread placement (FP32)", table);
  if (opt.csv_dir) {
    sgp::bench::write_scaling_csv(*opt.csv_dir + "/tab1.csv", table);
  }
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());
  return 0;
}
