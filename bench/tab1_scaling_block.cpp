// Reproduces Table 1: SG2042 thread scaling (speedup and parallel
// efficiency) with block placement, FP32.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto table =
      sgp::experiments::scaling_table(sgp::machine::Placement::Block);
  sgp::bench::print_scaling(
      "Table 1: SG2042 scaling, block thread placement (FP32)", table);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_scaling_csv(*dir + "/tab1.csv", table);
  }
  return 0;
}
