// Reproduces Figure 3: Clang VLA/VLS vs GCC for Polybench kernels at
// FP32 on a single C920 core (via the RVV v1.0 -> v0.7.1 rollback).
#include <iostream>

#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  const auto rows = sgp::experiments::figure3(eng);
  std::cout << "== Figure 3: Clang VLA/VLS vs GCC, Polybench FP32, single "
               "C920 core ==\n";
  std::cout << "(encoding: 0 = same speed, +1 = Clang 2x faster, -1 = "
               "Clang 2x slower; * = kernel named in the paper's figure)\n";
  sgp::report::Table t(
      {"kernel", "Clang VLA", "Clang VLS", "GCC path", "Clang path"});
  for (const auto& r : rows) {
    const std::string gcc_path = !r.gcc_vectorizes
                                     ? "not vectorised"
                                     : (r.gcc_runtime_scalar
                                            ? "vectorised, scalar at runtime"
                                            : "vector");
    t.add_row({r.kernel + (r.paper_named ? " *" : ""),
               sgp::report::Table::num(r.clang_vla, 2),
               sgp::report::Table::num(r.clang_vls, 2), gcc_path,
               r.clang_vectorizes ? "vector" : "not vectorised"});
  }
  std::cout << t.render() << "\n";

  if (opt.csv_dir) {
    sgp::check::fig3_csv(rows).write(*opt.csv_dir + "/fig3.csv");
  }
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());
  return 0;
}
