// Shared printing/CSV helpers for the reproduction binaries.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "experiments/experiments.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace sgp::bench {

/// Parses "--csv <dir>" from argv; returns the directory if present.
inline std::optional<std::string> csv_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

/// Prints a figure-style series set (one row per class, one column pair
/// per series: mean and min..max whiskers, in the paper's encoding).
inline void print_series(const std::string& title,
                         const std::vector<experiments::RatioSeries>& series) {
  std::cout << "== " << title << " ==\n";
  std::cout << "(encoding: 0 = same speed, +1 = 2x faster, -1 = 2x "
               "slower than baseline)\n";
  std::vector<std::string> headers{"class"};
  for (const auto& s : series) {
    headers.push_back(s.label + " avg");
    headers.push_back("whisker");
  }
  report::Table t(headers);
  for (std::size_t g = 0; g < core::all_groups.size(); ++g) {
    std::vector<std::string> row{
        std::string(core::to_string(core::all_groups[g]))};
    for (const auto& s : series) {
      const auto& gr = s.groups[g];
      row.push_back(report::Table::num(gr.mean, 2));
      row.push_back("[" + report::Table::num(gr.min, 2) + ", " +
                    report::Table::num(gr.max, 2) + "]");
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render() << "\n";
}

/// Writes a series set as CSV (long format).
inline void write_series_csv(const std::string& path,
                             const std::vector<experiments::RatioSeries>& s) {
  report::CsvWriter csv({"series", "class", "mean", "min", "max",
                         "kernels"});
  for (const auto& series : s) {
    for (const auto& g : series.groups) {
      csv.add_row({series.label, std::string(core::to_string(g.group)),
                   report::Table::num(g.mean, 4),
                   report::Table::num(g.min, 4),
                   report::Table::num(g.max, 4),
                   std::to_string(g.kernels)});
    }
  }
  csv.write(path);
}

/// Prints a Tables 1-3 style scaling table.
inline void print_scaling(const std::string& title,
                          const experiments::ScalingTable& table) {
  std::cout << "== " << title << " ==\n";
  std::vector<std::string> headers{"Threads"};
  for (const auto g : core::all_groups) {
    headers.push_back(std::string(core::to_string(g)) + " SU");
    headers.push_back("PE");
  }
  report::Table t(headers);
  for (std::size_t i = 0; i < table.thread_counts.size(); ++i) {
    std::vector<std::string> row{
        std::to_string(table.thread_counts[i])};
    for (const auto g : core::all_groups) {
      const auto& cell = table.cells.at(g)[i];
      row.push_back(report::Table::num(cell.speedup, 2));
      row.push_back(report::Table::num(cell.parallel_efficiency, 2));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render() << "\n";
}

inline void write_scaling_csv(const std::string& path,
                              const experiments::ScalingTable& table) {
  report::CsvWriter csv({"placement", "threads", "class", "speedup",
                         "parallel_efficiency"});
  for (std::size_t i = 0; i < table.thread_counts.size(); ++i) {
    for (const auto g : core::all_groups) {
      const auto& cell = table.cells.at(g)[i];
      csv.add_row({std::string(machine::to_string(table.placement)),
                   std::to_string(table.thread_counts[i]),
                   std::string(core::to_string(g)),
                   report::Table::num(cell.speedup, 3),
                   report::Table::num(cell.parallel_efficiency, 3)});
    }
  }
  csv.write(path);
}

}  // namespace sgp::bench
