// Shared CLI parsing and printing/CSV helpers for the reproduction
// binaries. Every binary accepts:
//   --csv <dir>       also write CSV artifacts into <dir>
//   --jobs <n>        sweep-engine worker threads (0 = one per hw thread)
//   --perf            print the engine's perf counters after the pipeline
//   --trace <file>    write a Chrome trace_event JSON at exit
//   --metrics <file>  write a run manifest (+ metrics snapshot) at exit
// Unknown or incomplete flags are usage errors (exit 64, matching
// suite_cli's conventions) instead of being silently ignored.
#pragma once

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/artifacts.hpp"
#include "engine/engine.hpp"
#include "experiments/experiments.hpp"
#include "machine/descriptor.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace sgp::bench {

struct BenchOptions {
  std::optional<std::string> csv_dir;
  int jobs = 0;  ///< 0 = one worker per hardware thread
  bool perf = false;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  std::string tool;  ///< argv[0] basename, stamped into the manifest
};

/// Strict argv parser for the flags above. Prints a usage message and
/// exits with code 64 on an unknown flag, a flag missing its value, or
/// a malformed number.
inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opt;
  {
    const std::string self = argv[0];
    const std::size_t slash = self.find_last_of('/');
    opt.tool = slash == std::string::npos ? self : self.substr(slash + 1);
  }
  auto usage_error = [&](const std::string& what) {
    std::cerr << argv[0] << ": " << what << "\n"
              << "usage: " << argv[0]
              << " [--csv <dir>] [--jobs <n>] [--perf]"
                 " [--trace <file>] [--metrics <file>]\n";
    std::exit(64);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--csv") {
      opt.csv_dir = value();
    } else if (arg == "--jobs") {
      const std::string v = value();
      try {
        std::size_t used = 0;
        opt.jobs = std::stoi(v, &used);
        if (used != v.size() || opt.jobs < 0) throw std::invalid_argument(v);
      } catch (const std::exception&) {
        usage_error("bad value '" + v + "' for --jobs (expected n >= 0)");
      }
    } else if (arg == "--perf") {
      opt.perf = true;
    } else if (arg == "--trace") {
      opt.trace_path = value();
    } else if (arg == "--metrics") {
      opt.metrics_path = value();
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }
  return opt;
}

/// 16-hex-digit rendering of a fingerprint, for the manifest.
inline std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17] = {};
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

namespace detail {

/// Static storage for the at-exit observability finalizer. Plain
/// function statics (not members) so the paths outlive main() and the
/// atexit callback captures nothing.
inline std::string& exit_trace_path() {
  static std::string p;
  return p;
}
inline std::string& exit_metrics_path() {
  static std::string p;
  return p;
}
inline std::string& exit_tool() {
  static std::string t;
  return t;
}

/// Writes the trace and/or manifest requested via --trace/--metrics.
/// Runs via atexit, so it fires on every exit path that reaches the
/// C++ runtime (including std::exit from usage errors after the flags
/// were parsed). Any failure — I/O or a malformed artifact — aborts
/// the process with exit 70 so smoke tests can assert well-formedness.
inline void obs_exit_finalizer() {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "observability finalizer: %s\n", what);
    std::_Exit(70);
  };
  try {
    if (!exit_trace_path().empty()) {
      const std::string json = obs::Tracer::instance().chrome_trace_json();
      if (const auto err = obs::json_error(json)) fail(err->c_str());
      std::ofstream out(exit_trace_path(), std::ios::binary);
      out << json;
      if (!out.flush()) fail("cannot write trace file");
    }
    if (!exit_metrics_path().empty()) {
      obs::RunManifest man(exit_tool());
      man.add("host", "hardware_concurrency",
              static_cast<std::uint64_t>(
                  std::thread::hardware_concurrency()));
      for (const auto& m : machine::all_machines()) {
        man.add("machines", m.name,
                fingerprint_hex(engine::machine_fingerprint(m)));
      }
      const engine::SweepEngine& eng = engine::shared_engine();
      const engine::EngineCounters c = eng.counters();
      man.add("engine", "jobs", static_cast<std::int64_t>(eng.jobs()));
      man.add("engine", "requests", c.requests);
      man.add("engine", "cache_hits", c.cache_hits);
      man.add("engine", "cache_misses", c.cache_misses);
      man.add("engine", "simulations", c.simulations);
      man.add("engine", "simulators_built", c.simulators_built);
      man.add("engine", "batches", c.batches);
      man.add("engine", "cache_entries", c.cache_entries);
      for (const auto& p : c.phases) {
        man.add_phase(p.name, p.wall_s, p.requests);
      }
      man.write(exit_metrics_path(), obs::registry().snapshot());
    }
  } catch (const std::exception& e) {
    fail(e.what());
  } catch (...) {
    fail("unknown error");
  }
}

}  // namespace detail

/// Applies --jobs to the process-wide engine the pipelines run on,
/// arms --trace/--metrics (tracing on + an atexit finalizer that writes
/// the artifacts — every binary using parse_bench_args/configure_engine
/// gains both flags with no further code), and returns the engine so
/// --perf can read the counters afterwards.
inline engine::SweepEngine& configure_engine(const BenchOptions& opt) {
  engine::SweepEngine& eng = engine::shared_engine();
  if (opt.jobs != 0) eng.set_jobs(opt.jobs);
  if (opt.trace_path || opt.metrics_path) {
    detail::exit_trace_path() = opt.trace_path.value_or("");
    detail::exit_metrics_path() = opt.metrics_path.value_or("");
    detail::exit_tool() = opt.tool.empty() ? "bench" : opt.tool;
    if (opt.trace_path) obs::Tracer::instance().enable();
    // Pull gauge: cache occupancy at snapshot time (the shared engine
    // is a leaked singleton, so the capture stays valid in atexit).
    obs::registry().gauge_callback("engine.cache.entries", [&eng] {
      return static_cast<double>(eng.counters().cache_entries);
    });
    std::atexit(&detail::obs_exit_finalizer);
  }
  return eng;
}

/// Prints the engine's perf counters (the --perf flag).
inline void print_perf(std::ostream& out,
                       const engine::EngineCounters& c) {
  out << "== engine perf counters ==\n";
  out << "requests:         " << c.requests << "\n";
  out << "cache hits:       " << c.cache_hits << "\n";
  out << "cache misses:     " << c.cache_misses << "\n";
  out << "simulations run:  " << c.simulations << "\n";
  out << "cache entries:    " << c.cache_entries << "\n";
  out << "simulators built: " << c.simulators_built << "\n";
  out << "batches:          " << c.batches << "\n";
  if (!c.phases.empty()) {
    report::Table t({"phase", "wall ms", "requests"});
    for (const auto& p : c.phases) {
      t.add_row({p.name, report::Table::num(p.wall_s * 1e3, 2),
                 std::to_string(p.requests)});
    }
    out << t.render();
  }
}

/// Prints a figure-style series set (one row per class, one column pair
/// per series: mean and min..max whiskers, in the paper's encoding).
inline void print_series(std::ostream& out, const std::string& title,
                         const std::vector<experiments::RatioSeries>& series) {
  out << "== " << title << " ==\n";
  out << "(encoding: 0 = same speed, +1 = 2x faster, -1 = 2x "
         "slower than baseline)\n";
  std::vector<std::string> headers{"class"};
  for (const auto& s : series) {
    headers.push_back(s.label + " avg");
    headers.push_back("whisker");
  }
  report::Table t(headers);
  for (std::size_t g = 0; g < core::all_groups.size(); ++g) {
    std::vector<std::string> row{
        std::string(core::to_string(core::all_groups[g]))};
    for (const auto& s : series) {
      const auto& gr = s.groups[g];
      row.push_back(report::Table::num(gr.mean, 2));
      row.push_back("[" + report::Table::num(gr.min, 2) + ", " +
                    report::Table::num(gr.max, 2) + "]");
    }
    t.add_row(std::move(row));
  }
  out << t.render() << "\n";
}

inline void print_series(const std::string& title,
                         const std::vector<experiments::RatioSeries>& s) {
  print_series(std::cout, title, s);
}

/// A series set as CSV (long format). The rendering lives in
/// check/artifacts so the golden differential runner checks the exact
/// format the bench binaries emit.
inline report::CsvWriter series_csv(
    const std::vector<experiments::RatioSeries>& s) {
  return check::series_csv(s);
}

inline void write_series_csv(const std::string& path,
                             const std::vector<experiments::RatioSeries>& s) {
  series_csv(s).write(path);
}

/// Prints a Tables 1-3 style scaling table.
inline void print_scaling(std::ostream& out, const std::string& title,
                          const experiments::ScalingTable& table) {
  out << "== " << title << " ==\n";
  std::vector<std::string> headers{"Threads"};
  for (const auto g : core::all_groups) {
    headers.push_back(std::string(core::to_string(g)) + " SU");
    headers.push_back("PE");
  }
  report::Table t(headers);
  for (std::size_t i = 0; i < table.thread_counts.size(); ++i) {
    std::vector<std::string> row{
        std::to_string(table.thread_counts[i])};
    for (const auto g : core::all_groups) {
      const auto& cell = table.cells.at(g)[i];
      row.push_back(report::Table::num(cell.speedup, 2));
      row.push_back(report::Table::num(cell.parallel_efficiency, 2));
    }
    t.add_row(std::move(row));
  }
  out << t.render() << "\n";
}

inline void print_scaling(const std::string& title,
                          const experiments::ScalingTable& table) {
  print_scaling(std::cout, title, table);
}

/// A Tables 1-3 style scaling table as CSV (see series_csv on why this
/// delegates to check/artifacts).
inline report::CsvWriter scaling_csv(const experiments::ScalingTable& table) {
  return check::scaling_csv(table);
}

inline void write_scaling_csv(const std::string& path,
                              const experiments::ScalingTable& table) {
  scaling_csv(table).write(path);
}

}  // namespace sgp::bench
