// Quantified fidelity report: every speedup cell of the paper's
// Tables 1-3 (hard-coded from the publication) next to the model's
// value, with the ratio between them. This is the numeric companion to
// EXPERIMENTS.md.
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"

namespace {

using namespace sgp;

// Paper speedup cells, rows = threads {2,4,8,16,32,64}, columns =
// {Algorithm, Apps, Basic, Lcals, Polybench, Stream}.
using TableData = double[6][6];

constexpr TableData kPaperTable1 = {
    // block placement
    {1.19, 0.66, 1.02, 1.61, 1.86, 1.00},
    {1.12, 1.14, 1.81, 1.82, 3.46, 0.97},
    {2.02, 2.27, 3.55, 3.27, 7.72, 1.88},
    {4.64, 4.31, 6.92, 6.86, 15.39, 4.31},
    {1.11, 1.86, 0.22, 4.38, 14.09, 0.82},
    {0.97, 4.10, 12.33, 14.89, 40.42, 1.77},
};

constexpr TableData kPaperTable2 = {
    // cyclic placement
    {1.52, 0.70, 1.06, 1.81, 2.11, 1.93},
    {3.21, 1.37, 2.09, 3.61, 4.11, 4.19},
    {4.72, 2.64, 3.96, 6.08, 8.15, 4.46},
    {4.55, 4.32, 6.97, 7.12, 15.07, 4.19},
    {6.10, 6.32, 13.11, 14.84, 30.05, 13.91},
    {2.09, 4.31, 17.29, 26.53, 57.93, 1.62},
};

constexpr TableData kPaperTable3 = {
    // cluster placement
    {1.52, 0.70, 1.06, 1.81, 2.11, 1.93},
    {3.21, 1.37, 2.09, 3.61, 4.11, 4.19},
    {6.37, 2.71, 4.16, 7.15, 8.23, 11.20},
    {10.54, 5.13, 8.09, 13.55, 16.51, 11.60},
    {12.72, 8.77, 14.05, 21.29, 31.76, 15.18},
    {1.98, 3.69, 17.30, 17.70, 58.26, 1.51},
};

struct Accum {
  double log_sum = 0.0;
  double abs_log_sum = 0.0;
  int n = 0;
  int within_2x = 0;
  void add(double paper, double model) {
    const double r = model / paper;
    log_sum += std::log(r);
    abs_log_sum += std::abs(std::log(r));
    if (r >= 0.5 && r <= 2.0) ++within_2x;
    ++n;
  }
};

void compare(const char* title, machine::Placement placement,
             const TableData& paper, Accum& global) {
  const auto table = experiments::scaling_table(placement);
  std::cout << "== " << title << " ==\n";
  std::vector<std::string> headers{"threads"};
  for (const auto g : core::all_groups) {
    headers.push_back(std::string(core::to_string(g)) +
                      " paper/model");
  }
  report::Table t(headers);
  Accum local;
  for (std::size_t row = 0; row < 6; ++row) {
    std::vector<std::string> cells{
        std::to_string(table.thread_counts[row])};
    for (std::size_t col = 0; col < core::all_groups.size(); ++col) {
      const double model =
          table.cells.at(core::all_groups[col])[row].speedup;
      const double p = paper[row][col];
      local.add(p, model);
      global.add(p, model);
      cells.push_back(report::Table::num(p, 2) + " / " +
                      report::Table::num(model, 2));
    }
    t.add_row(std::move(cells));
  }
  std::cout << t.render();
  std::cout << "geo-mean model/paper: "
            << report::Table::num(std::exp(local.log_sum / local.n), 2)
            << ", median-ish |log error|: "
            << report::Table::num(std::exp(local.abs_log_sum / local.n), 2)
            << "x, cells within 2x: " << local.within_2x << "/" << local.n
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Per-cell fidelity of the SG2042 scaling tables "
               "(speedups; paper value / model value).\n\n";
  Accum global;
  compare("Table 1 (block)", machine::Placement::Block, kPaperTable1,
          global);
  compare("Table 2 (cyclic)", machine::Placement::CyclicNuma,
          kPaperTable2, global);
  compare("Table 3 (cluster)", machine::Placement::ClusterCyclic,
          kPaperTable3, global);

  std::cout << "== Overall ==\n";
  std::cout << "cells within 2x of the paper: " << global.within_2x << "/"
            << global.n << " ("
            << report::Table::num(100.0 * global.within_2x / global.n, 0)
            << "%)\n";
  std::cout << "geometric-mean multiplicative error: "
            << report::Table::num(std::exp(global.abs_log_sum / global.n),
                                  2)
            << "x\n";
  return 0;
}
