// google-benchmark microbenchmarks of the native kernel implementations
// (one representative kernel per class, both precisions, small sizes).
// These measure this host, not the modelled machines -- useful for
// validating that the native loop bodies are sane.
#include <benchmark/benchmark.h>

#include "core/executor.hpp"
#include "kernels/register_all.hpp"

namespace {

using sgp::core::Precision;

void run_kernel(benchmark::State& state, const char* name, Precision prec) {
  static const auto registry = sgp::kernels::make_registry();
  auto kernel = registry.create(name);
  sgp::core::RunParams rp;
  rp.size_factor = 0.02;
  sgp::core::SerialExecutor exec;
  kernel->set_up(prec, rp);
  for (auto _ : state) {
    kernel->run_rep(prec, exec);
    benchmark::ClobberMemory();
  }
  const auto checksum = kernel->compute_checksum(prec);
  benchmark::DoNotOptimize(checksum);
  state.counters["checksum"] = static_cast<double>(checksum);
  kernel->tear_down();
}

#define SGP_MICRO(NAME)                                          \
  void BM_##NAME##_fp32(benchmark::State& s) {                   \
    run_kernel(s, #NAME, Precision::FP32);                       \
  }                                                              \
  void BM_##NAME##_fp64(benchmark::State& s) {                   \
    run_kernel(s, #NAME, Precision::FP64);                       \
  }                                                              \
  BENCHMARK(BM_##NAME##_fp32);                                   \
  BENCHMARK(BM_##NAME##_fp64)

SGP_MICRO(TRIAD);      // stream
SGP_MICRO(MEMSET);     // algorithm
SGP_MICRO(DAXPY);      // basic
SGP_MICRO(HYDRO_1D);   // lcals
SGP_MICRO(GEMM);       // polybench
SGP_MICRO(FIR);        // apps

}  // namespace

BENCHMARK_MAIN();
