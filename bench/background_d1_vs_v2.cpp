// Reproduces the paper's Section 2.2 background claim (from its own
// prior study [10]): "whilst the U74 core in the VisionFive V2 tended to
// outperform the C906 for scalar workloads, when enabling vectorisation
// the C906 then most often outperformed the U74."
#include <iostream>

#include "bench/bench_common.hpp"
#include "kernels/register_all.hpp"
#include "report/ratio.hpp"

int main(int argc, char** argv) {
  using namespace sgp;

  const auto opt = bench::parse_bench_args(argc, argv);
  auto& eng = bench::configure_engine(opt);

  const auto v2 = machine::visionfive_v2();
  const auto d1 = machine::allwinner_d1();

  // The prior study drove the C906's vector unit through Clang (plus
  // the rollback tool), which vectorises 59 of the 64 kernels.
  auto cfg = [](core::VectorMode mode, core::CompilerId comp) {
    sim::SimConfig c;
    c.precision = core::Precision::FP32;
    c.vector_mode = mode;
    c.compiler = comp;
    c.nthreads = 1;
    return c;
  };

  // The U74 has no vector unit, so its "vector" build is scalar anyway.
  const auto u74 = experiments::kernel_times(
      v2, cfg(core::VectorMode::VLS, core::CompilerId::Gcc), eng);
  const auto c906_scalar = experiments::kernel_times(
      d1, cfg(core::VectorMode::Scalar, core::CompilerId::Gcc), eng);
  const auto c906_vector = experiments::kernel_times(
      d1, cfg(core::VectorMode::VLS, core::CompilerId::Clang), eng);

  int scalar_u74_wins = 0, vector_c906_wins = 0, total = 0;
  double scalar_sum = 0.0, vector_sum = 0.0;
  for (const auto& [name, t_u74] : u74) {
    ++total;
    const double scalar_ratio = c906_scalar.at(name) / t_u74;  // >1: U74 wins
    const double vector_ratio = c906_vector.at(name) / t_u74;
    if (scalar_ratio > 1.0) ++scalar_u74_wins;
    if (vector_ratio < 1.0) ++vector_c906_wins;
    scalar_sum += scalar_ratio;
    vector_sum += vector_ratio;
  }

  std::cout << "== Background (paper Section 2.2 / prior study [10]): "
               "AllWinner D1 (C906) vs VisionFive V2 (U74), FP32, single "
               "core ==\n\n";
  report::Table t({"configuration", "kernels won", "of", "avg t(C906)/t(U74)"});
  t.add_row({"C906 scalar vs U74", std::to_string(total - scalar_u74_wins),
             std::to_string(total),
             report::Table::num(scalar_sum / total, 2)});
  t.add_row({"C906 vectorised vs U74", std::to_string(vector_c906_wins),
             std::to_string(total),
             report::Table::num(vector_sum / total, 2)});
  std::cout << t.render() << "\n";
  std::cout << "Paper: the U74 wins scalar; with RVV enabled the C906 "
               "most often wins.\n";

  if (opt.csv_dir) {
    report::CsvWriter csv({"kernel", "u74_s", "c906_scalar_s",
                           "c906_vector_s"});
    for (const auto& [name, t_u74] : u74) {
      csv.add_row({name, report::Table::num(t_u74, 6),
                   report::Table::num(c906_scalar.at(name), 6),
                   report::Table::num(c906_vector.at(name), 6)});
    }
    csv.write(*opt.csv_dir + "/background_d1.csv");
  }
  if (opt.perf) bench::print_perf(std::cout, eng.counters());
  return 0;
}
