// Reproduces Table 3: SG2042 thread scaling with cluster-aware cyclic
// placement.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto table = sgp::experiments::scaling_table(
      sgp::machine::Placement::ClusterCyclic);
  sgp::bench::print_scaling(
      "Table 3: SG2042 scaling, cluster-aware cyclic placement (FP32)",
      table);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_scaling_csv(*dir + "/tab3.csv", table);
  }
  return 0;
}
