// Reproduces Figure 2: single-core speedup from enabling RVV
// vectorisation on the SG2042's C920, per precision.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto series = sgp::experiments::figure2();
  sgp::bench::print_series(
      "Figure 2: C920 vectorisation on/off (baseline: scalar build)",
      series);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_series_csv(*dir + "/fig2.csv", series);
  }
  return 0;
}
