// Reproduces Figure 2: single-core speedup from enabling RVV
// vectorisation on the SG2042's C920, per precision.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  const auto series = sgp::experiments::figure2(eng);
  sgp::bench::print_series(
      "Figure 2: C920 vectorisation on/off (baseline: scalar build)",
      series);
  if (opt.csv_dir) {
    sgp::bench::write_series_csv(*opt.csv_dir + "/fig2.csv", series);
  }
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());
  return 0;
}
