// Reproduces Figure 7: x86 vs SG2042, multithreaded, FP32.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  const auto series = sgp::experiments::x86_comparison(
      sgp::core::Precision::FP32, /*multithreaded=*/true, eng);
  sgp::bench::print_series(
      "Figure 7: FP32 multithreaded x86 comparison (baseline: SG2042)",
      series);
  if (opt.csv_dir) {
    sgp::bench::write_series_csv(*opt.csv_dir + "/fig7.csv", series);
  }
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());
  return 0;
}
