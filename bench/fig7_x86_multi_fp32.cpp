// Reproduces Figure 7: x86 vs SG2042, multithreaded, FP32.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  const auto series = sgp::experiments::x86_comparison(
      sgp::core::Precision::FP32, /*multithreaded=*/true);
  sgp::bench::print_series(
      "Figure 7: FP32 multithreaded x86 comparison (baseline: SG2042)",
      series);
  if (const auto dir = sgp::bench::csv_dir(argc, argv)) {
    sgp::bench::write_series_csv(*dir + "/fig7.csv", series);
  }
  return 0;
}
