// google-benchmark microbenchmarks of the performance model itself:
// how fast is one Simulator::run, a whole-suite sweep, a placement
// computation and a rollback pass. Keeps the model cheap enough for
// interactive tools.
#include <benchmark/benchmark.h>

#include "experiments/experiments.hpp"
#include "kernels/register_all.hpp"
#include "machine/placement.hpp"
#include "rvv/codegen.hpp"
#include "rvv/rollback.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sgp;

void BM_SimulatorSingleKernel(benchmark::State& state) {
  const sim::Simulator sim(machine::sg2042());
  const auto sigs = kernels::all_signatures();
  sim::SimConfig cfg;
  cfg.nthreads = 32;
  cfg.placement = machine::Placement::ClusterCyclic;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.seconds(sigs[i % sigs.size()], cfg));
    ++i;
  }
}
BENCHMARK(BM_SimulatorSingleKernel);

void BM_SimulatorFullSuite(benchmark::State& state) {
  const auto m = machine::sg2042();
  sim::SimConfig cfg;
  cfg.nthreads = static_cast<int>(state.range(0));
  cfg.placement = machine::Placement::ClusterCyclic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::kernel_times(m, cfg));
  }
}
BENCHMARK(BM_SimulatorFullSuite)->Arg(1)->Arg(16)->Arg(64);

void BM_PlacementAssign(benchmark::State& state) {
  const auto m = machine::sg2042();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine::assign_cores(
        m, machine::Placement::ClusterCyclic,
        static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_PlacementAssign)->Arg(8)->Arg(64);

void BM_RollbackPass(benchmark::State& state) {
  rvv::LoopSpec spec;
  spec.loads = 3;
  spec.stores = 1;
  const auto v1 =
      rvv::emit_loop(spec, rvv::CodegenMode::VLA, rvv::Dialect::V1_0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rvv::rollback(v1));
  }
}
BENCHMARK(BM_RollbackPass);

void BM_ScalingTable(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiments::scaling_table(machine::Placement::Block));
  }
}
BENCHMARK(BM_ScalingTable);

}  // namespace

BENCHMARK_MAIN();
