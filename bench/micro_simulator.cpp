// Microbenchmark + acceptance proof for the batched simulator path.
//
// For each representative kernel it prices the same config grid
// (threads x precision x compiler x vector mode x placement, replicated
// to a realistic batch size) two ways:
//
//   scalar pass : per-point Simulator::run, the pre-batch hot path
//                 every consumer used to cost;
//   batch pass  : one EvalContext per kernel + Simulator::run_batch
//                 over the whole grid.
//
// Each pass repeats kRepeats times and keeps the fastest repeat (the
// usual microbenchmark floor). The binary asserts the two paths agree
// bit-for-bit on every TimeBreakdown field (the identity column) and
// that the aggregate batch speedup clears kMinBatchSpeedup, then writes
// the per-kernel numbers to BENCH_sim.json. Exits 1 if any kernel
// diverges or the speedup gate fails (--identity-only skips the speedup
// gate for sanitizer builds, whose instrumentation flattens timings).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "kernels/register_all.hpp"
#include "machine/placement.hpp"
#include "obs/metrics.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "sim/eval_context.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sgp;

/// Aggregate scalar-time / batch-time floor for the uninstrumented
/// build. Measured well above this on the 1-core CI box; the floor sits
/// low enough that only a real batch-path regression (not timer noise)
/// can trip it.
constexpr double kMinBatchSpeedup = 3.0;

/// Fastest-of-N repeats per pass.
constexpr int kRepeats = 5;

/// Copies of the config grid per kernel, so one batch is big enough to
/// amortize context setup the way engine-sized batches do.
constexpr int kGridReplicas = 8;

const char* kKernels[] = {"TRIAD", "DAXPY", "DOT",
                          "GEMM",  "FIR",   "JACOBI_2D"};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// The full valid (compiler, mode) x precision x threads x placement
/// grid on SG2042 (GCC+VLA is a hard error in compiler::plan, so it is
/// not a grid point), replicated kGridReplicas times.
std::vector<sim::SimConfig> config_grid(int num_cores) {
  std::vector<sim::SimConfig> grid;
  const std::pair<core::CompilerId, core::VectorMode> combos[] = {
      {core::CompilerId::Gcc, core::VectorMode::Scalar},
      {core::CompilerId::Gcc, core::VectorMode::VLS},
      {core::CompilerId::Clang, core::VectorMode::Scalar},
      {core::CompilerId::Clang, core::VectorMode::VLS},
      {core::CompilerId::Clang, core::VectorMode::VLA},
  };
  for (int rep = 0; rep < kGridReplicas; ++rep) {
    for (const int t : {1, 2, 4, 8, 16, 32, 64}) {
      if (t > num_cores) continue;
      for (const auto prec : core::all_precisions) {
        for (const auto placement : machine::all_placements) {
          for (const auto& [comp, mode] : combos) {
            sim::SimConfig cfg;
            cfg.nthreads = t;
            cfg.precision = prec;
            cfg.placement = placement;
            cfg.compiler = comp;
            cfg.vector_mode = mode;
            grid.push_back(cfg);
          }
        }
      }
    }
  }
  return grid;
}

bool identical(const sim::TimeBreakdown& a, const sim::TimeBreakdown& b) {
  auto same_bits = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  return same_bits(a.compute_s, b.compute_s) &&
         same_bits(a.memory_s, b.memory_s) &&
         same_bits(a.sync_s, b.sync_s) &&
         same_bits(a.atomic_s, b.atomic_s) &&
         same_bits(a.total_s, b.total_s) && a.serving == b.serving &&
         a.vector_path == b.vector_path && a.note == b.note &&
         a.note_compiler == b.note_compiler &&
         a.note_mode == b.note_mode && a.note_rollback == b.note_rollback;
}

struct KernelResult {
  std::string kernel;
  std::size_t points = 0;
  double scalar_ns_per_point = 0.0;
  double batch_ns_per_point = 0.0;
  bool identical = false;

  double speedup() const {
    return batch_ns_per_point > 0.0
               ? scalar_ns_per_point / batch_ns_per_point
               : 0.0;
  }
};

KernelResult bench_kernel(const sim::Simulator& sim,
                          const core::KernelSignature& sig,
                          const std::vector<sim::SimConfig>& grid) {
  KernelResult r;
  r.kernel = sig.name;
  r.points = grid.size();

  std::vector<sim::TimeBreakdown> scalar_out(grid.size());
  std::vector<sim::TimeBreakdown> batch_out(grid.size());
  double scalar_best = 0.0, batch_best = 0.0;

  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < grid.size(); ++i) {
      scalar_out[i] = sim.run(sig, grid[i]);
    }
    const double s = seconds_since(t0);
    if (rep == 0 || s < scalar_best) scalar_best = s;
  }

  for (int rep = 0; rep < kRepeats; ++rep) {
    // Context built inside the timed region: a fair batch cost includes
    // the once-per-(machine, kernel) setup the engine pays too.
    const auto t0 = std::chrono::steady_clock::now();
    sim::EvalContext ctx(sim, sig);
    sim.run_batch(ctx, grid, batch_out);
    const double s = seconds_since(t0);
    if (rep == 0 || s < batch_best) batch_best = s;
  }

  r.scalar_ns_per_point =
      scalar_best * 1e9 / static_cast<double>(grid.size());
  r.batch_ns_per_point =
      batch_best * 1e9 / static_cast<double>(grid.size());
  r.identical = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!identical(scalar_out[i], batch_out[i])) {
      r.identical = false;
      break;
    }
  }
  return r;
}

[[noreturn]] void usage_error(const char* prog, const std::string& what) {
  std::cerr << prog << ": " << what << "\n"
            << "usage: " << prog
            << " [--json <path>] [--csv <path>] [--perf]"
               " [--identity-only]\n";
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim.json";
  std::string csv_path;
  bool perf = false;
  // Skips the speedup gate (sanitizer instrumentation flattens the
  // scalar/batch timing ratio); the identity gate always applies.
  bool identity_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = value();
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--perf") {
      perf = true;
    } else if (arg == "--identity-only") {
      identity_only = true;
    } else {
      usage_error(argv[0], "unknown flag '" + arg + "'");
    }
  }

  std::cout << "== micro_simulator: per-point Simulator::run vs batched "
               "EvalContext path ==\n";

  const sim::Simulator sim(machine::sg2042());
  const auto grid = config_grid(sim.machine().num_cores);

  std::vector<KernelResult> results;
  for (const char* name : kKernels) {
    for (const auto& sig : kernels::all_signatures()) {
      if (sig.name == name) {
        results.push_back(bench_kernel(sim, sig, grid));
      }
    }
  }

  double scalar_total = 0.0, batch_total = 0.0;
  bool all_identical = true;
  for (const auto& r : results) {
    scalar_total += r.scalar_ns_per_point * static_cast<double>(r.points);
    batch_total += r.batch_ns_per_point * static_cast<double>(r.points);
    all_identical = all_identical && r.identical;
  }
  const double speedup =
      batch_total > 0.0 ? scalar_total / batch_total : 0.0;
  const bool speedup_ok = identity_only || speedup >= kMinBatchSpeedup;
  const bool pass = all_identical && speedup_ok;

  report::CsvWriter csv({"kernel", "points", "scalar_ns_per_point",
                         "batch_ns_per_point", "speedup", "identical"});
  report::Table t({"kernel", "points", "scalar ns/pt", "batch ns/pt",
                   "speedup", "identical"});
  for (const auto& r : results) {
    t.add_row({r.kernel, std::to_string(r.points),
               report::Table::num(r.scalar_ns_per_point, 1),
               report::Table::num(r.batch_ns_per_point, 1),
               report::Table::num(r.speedup(), 2),
               r.identical ? "yes" : "NO"});
    csv.add_row({r.kernel, std::to_string(r.points),
                 report::Table::num(r.scalar_ns_per_point, 1),
                 report::Table::num(r.batch_ns_per_point, 1),
                 report::Table::num(r.speedup(), 2),
                 r.identical ? "1" : "0"});
  }
  std::cout << t.render();
  std::cout << "aggregate batch speedup: " << report::Table::num(speedup, 2)
            << "x";
  if (identity_only) {
    std::cout << " (gate skipped: --identity-only)\n";
  } else {
    std::cout << " (need >= " << report::Table::num(kMinBatchSpeedup, 1)
              << ")\n";
  }
  std::cout << "outputs identical: " << (all_identical ? "yes" : "NO")
            << "\n";
  std::cout << (pass ? "PASS" : "FAIL") << "\n";

  if (!csv_path.empty()) {
    csv.write(csv_path);
    std::cout << "wrote " << csv_path << "\n";
  }

  {
    std::ofstream json(json_path);
    json << std::setprecision(6) << std::boolalpha;
    json << "{\n"
         << "  \"bench\": \"micro_simulator\",\n"
         << "  \"machine\": \"" << sim.machine().name << "\",\n"
         << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      json << "    {\"kernel\": \"" << r.kernel
           << "\", \"points\": " << r.points
           << ", \"scalar_ns_per_point\": " << r.scalar_ns_per_point
           << ", \"batch_ns_per_point\": " << r.batch_ns_per_point
           << ", \"speedup\": " << r.speedup()
           << ", \"identical\": " << r.identical << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"batch_speedup\": " << speedup << ",\n"
         << "  \"batch_speedup_min\": " << kMinBatchSpeedup << ",\n"
         << "  \"speedup_gate_skipped\": " << identity_only << ",\n"
         << "  \"outputs_identical\": " << all_identical << ",\n"
         << "  \"pass\": " << pass << "\n"
         << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (perf) {
    const auto snap = obs::registry().snapshot();
    std::cout << "perf counters:\n";
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("sim.", 0) == 0) {
        std::cout << "  " << name << " = " << value << "\n";
      }
    }
  }
  return pass ? 0 : 1;
}
