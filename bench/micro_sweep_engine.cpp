// Microbenchmark + acceptance proof for the sweep engine.
//
// Runs the repo's full figure/table pipeline set — every pipeline
// invocation the pre-engine consumers made in separate processes (the
// fig1-7/tab1-3 binaries, background_d1_vs_v2, paper_deltas, and the
// calibration/experiments regression tests) — twice in one process:
//
//   legacy pass : cache disabled + the pre-engine call graphs
//                 (per-kernel best-thread search), replicating the
//                 historical Simulator::run volume;
//   engine pass : the ported pipelines on a fresh cached engine.
//
// It asserts the rendered outputs (tables + CSV text) are byte
// identical between the passes, between a parallel and a forced-serial
// engine, and between a first and a reuse (all-hits) run, then writes
// the counters to BENCH_sweep.json. Exits 1 if any outputs differ, the
// Simulator::run reduction is below 5x, or the legacy pass's raw
// simulator throughput (EngineCounters::sims_per_second) falls below
// kMinSimsPerSecond (--identity-only skips the throughput gate for
// instrumented builds).
//
// --persist <dir> instead benchmarks the durable memo cache: a cold
// persistent pass populates <dir>, a warm pass in a fresh engine must
// replay from disk (>= 3x fewer Simulator::run calls, byte-identical
// output), and a third pass under an injected bit-flip read fault must
// quarantine the damaged segment and still reproduce the output.
// Writes BENCH_persist.json; exits 1 if any gate fails.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "bench/bench_common.hpp"
#include "resilience/fault_injector.hpp"

namespace {

using namespace sgp;

/// Simulator::run throughput floor (simulations per aggregate
/// simulation-second, EngineCounters::sims_per_second) gated on the
/// legacy pass, which runs every point uncached and so measures the raw
/// hot path. Per-thread time, so the gate is independent of worker
/// count and machine load. Measured ~1M/s on the 1-core CI box in an
/// uninstrumented build after the placement-table + batched-evaluation
/// work (up from ~140k/s when the floor was 30k); the floor sits ~10x
/// below that so only a real hot-path regression (not timer noise) can
/// trip it. Sanitizer builds pass --identity-only and skip it.
constexpr double kMinSimsPerSecond = 100000.0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

std::string render_fig3(const std::vector<experiments::Fig3Row>& rows) {
  std::ostringstream out;
  for (const auto& r : rows) {
    out << r.kernel << ',' << report::Table::num(r.clang_vla, 4) << ','
        << report::Table::num(r.clang_vls, 4) << ',' << r.gcc_vectorizes
        << ',' << r.gcc_runtime_scalar << ',' << r.clang_vectorizes
        << ',' << r.paper_named << '\n';
  }
  return out.str();
}

std::string render_times(const std::map<std::string, double>& times) {
  std::ostringstream out;
  out << std::setprecision(17);
  for (const auto& [name, t] : times) out << name << ',' << t << '\n';
  return out.str();
}

/// One in-process replay of the whole pre-engine consumer surface.
/// `legacy_mode` swaps in the historical call graphs where they
/// differed (multithreaded x86 comparison, best-thread search).
std::string run_pipeline_set(engine::SweepEngine& eng, bool legacy_mode) {
  experiments::reset_best_threads_memo();
  std::ostringstream out;

  auto series = [&](const std::string& title,
                    const std::vector<experiments::RatioSeries>& s) {
    bench::print_series(out, title, s);
    out << bench::series_csv(s).text();
  };
  auto scaling = [&](const std::string& title,
                     const experiments::ScalingTable& t) {
    bench::print_scaling(out, title, t);
    out << bench::scaling_csv(t).text();
  };
  auto x86 = [&](core::Precision prec, bool multi) {
    return (legacy_mode && multi)
               ? experiments::legacy::x86_comparison(prec, multi, eng)
               : experiments::x86_comparison(prec, multi, eng);
  };
  auto best_threads = [&](core::Group g, core::Precision prec) {
    return legacy_mode
               ? experiments::legacy::best_sg2042_threads(g, prec, eng)
               : experiments::best_sg2042_threads(g, prec, eng);
  };

  // fig1..fig7, tab1..tab3 binaries.
  series("figure1", experiments::figure1(eng));
  series("figure2", experiments::figure2(eng));
  out << render_fig3(experiments::figure3(eng));
  series("figure4", x86(core::Precision::FP64, false));
  series("figure5", x86(core::Precision::FP32, false));
  series("figure6", x86(core::Precision::FP64, true));
  series("figure7", x86(core::Precision::FP32, true));
  scaling("table1",
          experiments::scaling_table(machine::Placement::Block, eng));
  scaling("table2",
          experiments::scaling_table(machine::Placement::CyclicNuma, eng));
  scaling("table3", experiments::scaling_table(
                        machine::Placement::ClusterCyclic, eng));

  // background_d1_vs_v2: three whole-suite kernel_times sweeps.
  {
    const auto v2 = machine::visionfive_v2();
    const auto d1 = machine::allwinner_d1();
    auto cfg = [](core::VectorMode mode, core::CompilerId comp) {
      sim::SimConfig c;
      c.precision = core::Precision::FP32;
      c.vector_mode = mode;
      c.compiler = comp;
      c.nthreads = 1;
      return c;
    };
    out << render_times(experiments::kernel_times(
        v2, cfg(core::VectorMode::VLS, core::CompilerId::Gcc), eng));
    out << render_times(experiments::kernel_times(
        d1, cfg(core::VectorMode::Scalar, core::CompilerId::Gcc), eng));
    out << render_times(experiments::kernel_times(
        d1, cfg(core::VectorMode::VLS, core::CompilerId::Clang), eng));
  }

  // paper_deltas: re-derives all three scaling tables.
  scaling("deltas1",
          experiments::scaling_table(machine::Placement::Block, eng));
  scaling("deltas2",
          experiments::scaling_table(machine::Placement::CyclicNuma, eng));
  scaling("deltas3", experiments::scaling_table(
                         machine::Placement::ClusterCyclic, eng));

  // calibration_regression_test process.
  series("cal_fig1", experiments::figure1(eng));
  scaling("cal_block",
          experiments::scaling_table(machine::Placement::Block, eng));
  scaling("cal_cluster", experiments::scaling_table(
                             machine::Placement::ClusterCyclic, eng));
  series("cal_fig2", experiments::figure2(eng));
  series("cal_x86", x86(core::Precision::FP64, false));
  out << render_fig3(experiments::figure3(eng));

  // experiments_test process.
  series("exp_fig1", experiments::figure1(eng));
  scaling("exp_t1",
          experiments::scaling_table(machine::Placement::Block, eng));
  scaling("exp_t2",
          experiments::scaling_table(machine::Placement::CyclicNuma, eng));
  scaling("exp_t3", experiments::scaling_table(
                        machine::Placement::ClusterCyclic, eng));
  series("exp_fig2", experiments::figure2(eng));
  out << render_fig3(experiments::figure3(eng));
  series("exp_fig4", x86(core::Precision::FP64, false));
  series("exp_fig5", x86(core::Precision::FP32, false));
  series("exp_fig6", x86(core::Precision::FP64, true));
  series("exp_fig7", x86(core::Precision::FP32, true));
  for (const auto prec : {core::Precision::FP32, core::Precision::FP64}) {
    for (const auto g : core::all_groups) {
      out << "best_threads," << core::to_string(g) << ','
          << best_threads(g, prec) << '\n';
    }
  }

  return out.str();
}

struct PassResult {
  std::string output;
  engine::EngineCounters counters;
  double wall_s = 0.0;
};

PassResult run_pass(engine::SweepEngine& eng, bool legacy_mode) {
  const auto t0 = std::chrono::steady_clock::now();
  PassResult r;
  r.output = run_pipeline_set(eng, legacy_mode);
  r.wall_s = seconds_since(t0);
  r.counters = eng.counters();
  return r;
}

[[noreturn]] void usage_error(const char* prog, const std::string& what) {
  std::cerr << prog << ": " << what << "\n"
            << "usage: " << prog << " [--json <path>] [--jobs <n>]"
            << " [--perf] [--persist <dir>] [--identity-only]\n";
  std::exit(64);
}

/// --persist mode: cold-vs-warm throughput for the durable memo cache,
/// plus recovery under a corrupted segment. The warm gate (>= 3x fewer
/// Simulator::run calls) is deliberately far below the observed ~all-
/// hits replay so timing noise cannot flake the bench-smoke lane.
int run_persist_bench(const std::string& dir, const std::string& json_path,
                      int jobs) {
  namespace fs = std::filesystem;
  using engine::EngineOptions;
  std::cout << "== micro_sweep_engine --persist: durable memo cache, "
               "cold vs warm ==\n";
  fs::remove_all(dir);

  engine::EnginePersistence persistence;
  persistence.store.dir = dir;
  persistence.note = "micro_sweep_engine --persist";

  auto persistent_pass =
      [&](resilience::FaultInjector* injector) -> PassResult {
    engine::EnginePersistence p = persistence;
    p.store.injector = injector;
    engine::SweepEngine eng(EngineOptions{jobs, true, p});
    return run_pass(eng, /*legacy_mode=*/false);
  };  // engine destructor flushes the final segment

  const auto cold = persistent_pass(nullptr);
  const auto warm = persistent_pass(nullptr);

  // Recovery pass: one bit of the first segment read is flipped; the
  // loader must quarantine that segment, replay the rest, and recompute
  // only the lost points.
  resilience::FaultPlan plan =
      resilience::FaultPlan::parse("persist.read:bitflip:1");
  resilience::FaultInjector injector(plan, 99u);
  const auto faulted = persistent_pass(&injector);

  const std::uint64_t cold_sims = cold.counters.simulations;
  const std::uint64_t warm_sims = warm.counters.simulations;
  const bool warm_identical = warm.output == cold.output;
  const bool faulted_identical = faulted.output == cold.output;
  const std::uint64_t quarantined =
      faulted.counters.persist.store.quarantined_segments;
  const double speedup =
      warm.wall_s > 0.0 ? cold.wall_s / warm.wall_s : 0.0;
  const double sim_ratio =
      double(cold_sims) / double(std::max<std::uint64_t>(warm_sims, 1));
  const bool pass = warm_identical && faulted_identical &&
                    sim_ratio >= 3.0 && quarantined >= 1;

  report::Table t({"pass", "Simulator::run", "resumed points",
                   "quarantined", "wall s"});
  auto row = [&](const char* name, const PassResult& p) {
    t.add_row({name, std::to_string(p.counters.simulations),
               std::to_string(p.counters.persist.cache.resumed_points),
               std::to_string(p.counters.persist.store.quarantined_segments),
               report::Table::num(p.wall_s, 3)});
  };
  row("cold (empty store)", cold);
  row("warm (resume)", warm);
  row("warm (bit-flip fault)", faulted);
  std::cout << t.render();
  std::cout << "Simulator::run cold/warm: "
            << report::Table::num(sim_ratio, 2) << "x (need >= 3)\n"
            << "outputs identical — warm: " << (warm_identical ? "yes" : "NO")
            << ", faulted: " << (faulted_identical ? "yes" : "NO")
            << "; quarantined segments: " << quarantined << " (need >= 1)\n";
  std::cout << (pass ? "PASS" : "FAIL") << "\n";

  {
    std::ofstream json(json_path);
    json << std::setprecision(6) << std::boolalpha;
    json << "{\n"
         << "  \"bench\": \"micro_sweep_engine_persist\",\n"
         << "  \"store_dir\": \"" << dir << "\",\n"
         << "  \"cold\": {\"simulations\": " << cold_sims
         << ", \"flushes\": " << cold.counters.persist.store.flushes
         << ", \"entries_flushed\": "
         << cold.counters.persist.store.entries_flushed
         << ", \"wall_s\": " << cold.wall_s << "},\n"
         << "  \"warm\": {\"simulations\": " << warm_sims
         << ", \"entries_loaded\": "
         << warm.counters.persist.store.entries_loaded
         << ", \"resumed_points\": "
         << warm.counters.persist.cache.resumed_points
         << ", \"wall_s\": " << warm.wall_s << "},\n"
         << "  \"faulted\": {\"simulations\": "
         << faulted.counters.simulations << ", \"quarantined_segments\": "
         << quarantined << ", \"corrupt_entries\": "
         << faulted.counters.persist.store.corrupt_entries
         << ", \"wall_s\": " << faulted.wall_s << "},\n"
         << "  \"cold_warm_sim_ratio\": " << sim_ratio << ",\n"
         << "  \"cold_warm_speedup\": " << speedup << ",\n"
         << "  \"outputs_identical\": {\"warm\": " << warm_identical
         << ", \"faulted\": " << faulted_identical << "},\n"
         << "  \"pass\": " << pass << "\n"
         << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string persist_dir;
  int jobs = 0;
  bool perf = false;
  // Skips the wall-clock throughput gate (sims/second); identity and
  // simulation-count gates still apply. For sanitizer builds, whose
  // instrumentation slows the simulator by an order of magnitude.
  bool identity_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = value();
    } else if (arg == "--persist") {
      persist_dir = value();
    } else if (arg == "--jobs") {
      const std::string v = value();
      try {
        std::size_t used = 0;
        jobs = std::stoi(v, &used);
        if (used != v.size() || jobs < 0) throw std::invalid_argument(v);
      } catch (const std::exception&) {
        usage_error(argv[0], "bad value '" + v + "' for --jobs");
      }
    } else if (arg == "--perf") {
      perf = true;
    } else if (arg == "--identity-only") {
      identity_only = true;
    } else {
      usage_error(argv[0], "unknown flag '" + arg + "'");
    }
  }

  if (!persist_dir.empty()) {
    return run_persist_bench(
        persist_dir, json_path.empty() ? "BENCH_persist.json" : json_path,
        jobs);
  }
  if (json_path.empty()) json_path = "BENCH_sweep.json";

  std::cout << "== micro_sweep_engine: full figure/table pipeline set, "
               "legacy vs engine ==\n";

  // Legacy pass: cache off, pre-engine call graphs. This is the
  // Simulator::run volume the consumer surface used to cost when every
  // consumer was its own process (no sharing is possible without the
  // cache, so running them back to back in one process is equivalent).
  engine::SweepEngine legacy_eng({jobs, /*use_cache=*/false});
  const auto legacy = run_pass(legacy_eng, /*legacy_mode=*/true);

  // Engine pass: the ported pipelines on one fresh cached engine.
  engine::SweepEngine eng({jobs, /*use_cache=*/true});
  const auto first = run_pass(eng, /*legacy_mode=*/false);

  // Reuse pass: same engine again — everything should be served from
  // the cache (a second bench binary in the same process).
  const auto reuse = run_pass(eng, /*legacy_mode=*/false);
  const auto reuse_sims =
      reuse.counters.simulations - first.counters.simulations;

  // Forced-serial pass: determinism check for the parallel scheduler.
  engine::SweepEngine serial_eng({/*jobs=*/1, /*use_cache=*/true});
  const auto serial = run_pass(serial_eng, /*legacy_mode=*/false);

  const bool legacy_identical = legacy.output == first.output;
  const bool serial_identical = serial.output == first.output;
  const bool reuse_identical = reuse.output == first.output;
  const double ratio =
      first.counters.simulations > 0
          ? double(legacy.counters.simulations) /
                double(first.counters.simulations)
          : 0.0;
  // Throughput gate on the uncached pass: simulations per second of
  // wall time spent inside Simulator::run, summed across workers.
  const double sims_per_second = legacy.counters.sims_per_second();
  const bool sims_ok =
      identity_only || sims_per_second >= kMinSimsPerSecond;
  const bool pass = legacy_identical && serial_identical &&
                    reuse_identical && reuse_sims == 0 && ratio >= 5.0 &&
                    sims_ok;

  report::Table t({"pass", "Simulator::run", "requests", "cache hits",
                   "wall s"});
  auto row = [&](const char* name, const PassResult& p,
                 std::uint64_t sims_override, std::uint64_t hits) {
    t.add_row({name, std::to_string(sims_override),
               std::to_string(p.counters.requests),
               std::to_string(hits),
               report::Table::num(p.wall_s, 3)});
  };
  row("legacy (no cache)", legacy, legacy.counters.simulations,
      legacy.counters.cache_hits);
  row("engine (first)", first, first.counters.simulations,
      first.counters.cache_hits);
  row("engine (reuse)", reuse, reuse_sims,
      reuse.counters.cache_hits - first.counters.cache_hits);
  row("engine (serial)", serial, serial.counters.simulations,
      serial.counters.cache_hits);
  std::cout << t.render();
  std::cout << "Simulator::run reduction: "
            << report::Table::num(ratio, 2) << "x (need >= 5)\n";
  std::cout << "simulator throughput (legacy pass): "
            << report::Table::num(sims_per_second, 0) << " sims/s";
  if (identity_only) {
    std::cout << " (gate skipped: --identity-only)\n";
  } else {
    std::cout << " (need >= " << report::Table::num(kMinSimsPerSecond, 0)
              << ")\n";
  }
  std::cout << "outputs identical — legacy: "
            << (legacy_identical ? "yes" : "NO")
            << ", serial: " << (serial_identical ? "yes" : "NO")
            << ", reuse: " << (reuse_identical ? "yes" : "NO") << "\n";
  std::cout << (pass ? "PASS" : "FAIL") << "\n";

  {
    std::ofstream json(json_path);
    json << std::setprecision(6) << std::boolalpha;
    json << "{\n"
         << "  \"bench\": \"micro_sweep_engine\",\n"
         << "  \"jobs\": " << eng.jobs() << ",\n"
         << "  \"legacy\": {\"simulations\": "
         << legacy.counters.simulations
         << ", \"requests\": " << legacy.counters.requests
         << ", \"wall_s\": " << legacy.wall_s << "},\n"
         << "  \"engine\": {\"simulations\": "
         << first.counters.simulations
         << ", \"requests\": " << first.counters.requests
         << ", \"cache_hits\": " << first.counters.cache_hits
         << ", \"cache_entries\": " << first.counters.cache_entries
         << ", \"wall_s\": " << first.wall_s << "},\n"
         << "  \"reuse\": {\"new_simulations\": " << reuse_sims
         << ", \"wall_s\": " << reuse.wall_s << "},\n"
         << "  \"serial\": {\"wall_s\": " << serial.wall_s << "},\n"
         << "  \"simulation_reduction\": " << ratio << ",\n"
         << "  \"sims_per_second\": " << sims_per_second << ",\n"
         << "  \"sims_per_second_min\": " << kMinSimsPerSecond << ",\n"
         << "  \"sims_gate_skipped\": " << identity_only << ",\n"
         << "  \"outputs_identical\": {\"legacy_vs_engine\": "
         << legacy_identical << ", \"parallel_vs_serial\": "
         << serial_identical << ", \"first_vs_reuse\": " << reuse_identical
         << "},\n"
         << "  \"pass\": " << pass << "\n"
         << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (perf) bench::print_perf(std::cout, first.counters);
  return pass ? 0 : 1;
}
