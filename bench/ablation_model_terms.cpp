// Ablation study over the performance model's design choices (the
// mechanisms DESIGN.md claims explain the paper's shapes). For each
// ablated term we regenerate the Table-1/3 stream rows and report how
// the paper's signature pathologies react:
//   * no cluster mesh-port cap  -> block-4 stops being flat;
//   * no oversubscription knee  -> the block-32 dip and the 64-thread
//     collapse disappear;
//   * no sync cost              -> tiny-loop kernels stop limiting apps;
//   * no scalar-stream derate   -> FP64/scalar memory kernels speed up
//     and Figure 2's stream benefit vanishes.
#include <iostream>

#include "kernels/register_all.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sgp;

struct Ablation {
  const char* name;
  void (*apply)(machine::MachineDescriptor&);
};

double stream_speedup(const machine::MachineDescriptor& m, int threads,
                      machine::Placement placement) {
  const sim::Simulator sim(m);
  sim::SimConfig cfg;
  cfg.precision = core::Precision::FP32;
  cfg.placement = placement;
  double sum = 0.0;
  int n = 0;
  for (const auto& sig : kernels::all_signatures()) {
    if (sig.group != core::Group::Stream) continue;
    cfg.nthreads = 1;
    const double t1 = sim.seconds(sig, cfg);
    cfg.nthreads = threads;
    sum += t1 / sim.seconds(sig, cfg);
    ++n;
  }
  return sum / n;
}

double fig2_stream_benefit(const machine::MachineDescriptor& m) {
  const sim::Simulator sim(m);
  sim::SimConfig scalar, vec;
  scalar.precision = vec.precision = core::Precision::FP32;
  scalar.vector_mode = core::VectorMode::Scalar;
  double sum = 0.0;
  int n = 0;
  for (const auto& sig : kernels::all_signatures()) {
    if (sig.group != core::Group::Stream) continue;
    sum += sim.seconds(sig, scalar) / sim.seconds(sig, vec);
    ++n;
  }
  return sum / n;
}

}  // namespace

int main() {
  const Ablation ablations[] = {
      {"full model", [](machine::MachineDescriptor&) {}},
      {"no cluster port cap",
       [](machine::MachineDescriptor& m) { m.cluster_bw_gbs = 0.0; }},
      {"no oversubscription knee",
       [](machine::MachineDescriptor& m) { m.oversubscribe_gamma = 0.0; }},
      {"no sync cost",
       [](machine::MachineDescriptor& m) {
         m.fork_join_us = 0.0;
         m.barrier_us_per_thread = 0.0;
       }},
      {"no scalar stream derate",
       [](machine::MachineDescriptor& m) {
         m.core.scalar_stream_derate = 1.0;
       }},
  };

  std::cout << "== Ablation: which model terms produce the paper's "
               "pathologies? ==\n";
  std::cout << "(stream-class speedups on the SG2042, FP32; paper values: "
               "block-4 ~1.0, block-16 ~4.3, block-32 ~0.8, cluster-32 "
               "~15, any-64 ~1.5-1.8; fig2 stream vec/scalar ~2x)\n\n";

  report::Table t({"model variant", "block-4", "block-16", "block-32",
                   "cluster-32", "cluster-64", "fig2 stream"});
  for (const auto& a : ablations) {
    auto m = machine::sg2042();
    a.apply(m);
    t.add_row({a.name,
               report::Table::num(
                   stream_speedup(m, 4, machine::Placement::Block), 2),
               report::Table::num(
                   stream_speedup(m, 16, machine::Placement::Block), 2),
               report::Table::num(
                   stream_speedup(m, 32, machine::Placement::Block), 2),
               report::Table::num(
                   stream_speedup(m, 32, machine::Placement::ClusterCyclic),
                   2),
               report::Table::num(
                   stream_speedup(m, 64, machine::Placement::ClusterCyclic),
                   2),
               report::Table::num(fig2_stream_benefit(m), 2)});
  }
  std::cout << t.render() << "\n";
  std::cout
      << "Reading: the cluster cap flattens block-4, the knee creates\n"
         "both the block-32 dip and the 64-thread collapse, and the\n"
         "scalar-stream derate is what gives FP32 vectorisation its\n"
         "bandwidth benefit on stream kernels.\n";
  return 0;
}
