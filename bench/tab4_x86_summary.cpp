// Reproduces Table 4: the x86 CPUs compared against, as modelled.
#include <iostream>

#include "bench/bench_common.hpp"
#include "machine/descriptor.hpp"

int main(int argc, char** argv) {
  const auto opt = sgp::bench::parse_bench_args(argc, argv);
  auto& eng = sgp::bench::configure_engine(opt);
  std::cout << "== Table 4: x86 CPUs used to compare against the SG2042 "
               "==\n";
  sgp::report::Table t(
      {"CPU", "Clock", "Cores", "Vector", "FP64 vec", "NUMA", "Mem BW"});
  const auto machines = sgp::machine::x86_machines();
  for (const auto& m : machines) {
    const auto& v = *m.core.vector;
    t.add_row({m.name,
               sgp::report::Table::num(m.core.clock_ghz, 2) + " GHz",
               std::to_string(m.num_cores),
               v.isa + " " + std::to_string(v.width_bits) + "b",
               v.fp64 ? "yes" : "no", std::to_string(m.numa.size()),
               sgp::report::Table::num(m.total_mem_bw_gbs(), 0) + " GB/s"});
  }
  std::cout << t.render() << "\n";

  if (opt.csv_dir) {
    sgp::check::tab4_csv().write(*opt.csv_dir + "/tab4.csv");
  }
  if (opt.perf) sgp::bench::print_perf(std::cout, eng.counters());
  return 0;
}
