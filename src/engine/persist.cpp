#include "engine/persist.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "engine/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_injector.hpp"

namespace fs = std::filesystem;

namespace sgp::engine {

namespace {

/// Process-wide mirrors of the store statistics ("persist.*"), so a
/// metrics snapshot / run manifest carries the persistence story
/// without asking each store instance.
struct PersistMetrics {
  obs::Counter& entries_loaded =
      obs::registry().counter("persist.entries_loaded");
  obs::Counter& corrupt_entries =
      obs::registry().counter("persist.corrupt_entries");
  obs::Counter& quarantined_segments =
      obs::registry().counter("persist.quarantined_segments");
  obs::Counter& refused_segments =
      obs::registry().counter("persist.refused_segments");
  obs::Counter& flushes = obs::registry().counter("persist.flushes");
  obs::Counter& flush_failures =
      obs::registry().counter("persist.flush_failures");
  obs::Counter& entries_flushed =
      obs::registry().counter("persist.entries_flushed");

  static PersistMetrics& get() {
    static PersistMetrics* m = new PersistMetrics();
    return *m;
  }
};

void warn_msg(bool warn, const std::string& msg) {
  if (warn) std::cerr << "persist: warning: " << msg << "\n";
}

// ------------------------------------------------- byte plumbing --

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + sizeof v);
  std::memcpy(out.data() + n, &v, sizeof v);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto n = out.size();
  out.resize(n + sizeof v);
  std::memcpy(out.data() + n, &v, sizeof v);
}

void put_f64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

/// Bounds-checked cursor over a payload; any over-read flags failure
/// instead of touching out-of-range memory.
struct Reader {
  std::span<const std::byte> buf;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || buf.size() - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, buf.data() + pos, n);
    pos += n;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
};

std::uint64_t payload_checksum(std::span<const std::byte> payload) {
  Fnv1a h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

}  // namespace

std::string_view to_string(SegmentStatus s) noexcept {
  switch (s) {
    case SegmentStatus::Ok:         return "ok";
    case SegmentStatus::Missing:    return "missing";
    case SegmentStatus::BadMagic:   return "bad-magic";
    case SegmentStatus::BadVersion: return "bad-version";
    case SegmentStatus::Corrupt:    return "corrupt";
  }
  return "?";
}

// ------------------------------------------------ segment codec --

std::vector<std::byte> build_segment(
    const std::vector<std::vector<std::byte>>& payloads) {
  std::vector<std::byte> out;
  std::size_t total = kSegmentHeaderSize;
  for (const auto& p : payloads) total += p.size() + 12;
  out.reserve(total);
  const auto n = out.size();
  out.resize(n + sizeof kSegmentMagic);
  std::memcpy(out.data() + n, kSegmentMagic, sizeof kSegmentMagic);
  put_u32(out, kSegmentVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, payloads.size());
  for (const auto& p : payloads) {
    put_u32(out, static_cast<std::uint32_t>(p.size()));
    out.insert(out.end(), p.begin(), p.end());
    put_u64(out, payload_checksum(p));
  }
  return out;
}

SegmentParse parse_segment(std::span<const std::byte> bytes,
                           const PayloadFn& fn) {
  SegmentParse out;
  auto corrupt = [&](std::string detail) {
    out.status = SegmentStatus::Corrupt;
    out.detail = std::move(detail);
    return out;
  };
  if (bytes.size() < sizeof kSegmentMagic ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof kSegmentMagic) != 0) {
    out.status = SegmentStatus::BadMagic;
    out.detail = "not a segment file";
    return out;
  }
  if (bytes.size() < kSegmentHeaderSize) return corrupt("truncated header");
  Reader r{bytes, sizeof kSegmentMagic};
  const std::uint32_t version = r.u32();
  const std::uint32_t reserved = r.u32();
  std::uint64_t declared = r.u64();
  // Clamp to what the file could physically frame (>= 12 bytes per
  // entry), so a bit-flipped count field cannot inflate loss counters.
  const std::uint64_t plausible =
      (bytes.size() - kSegmentHeaderSize) / 12 + 1;
  out.declared_entries = std::min<std::uint64_t>(declared, plausible);
  if (version != kSegmentVersion) {
    out.status = SegmentStatus::BadVersion;
    out.detail = "version " + std::to_string(version) +
                 " (this build reads " + std::to_string(kSegmentVersion) +
                 ")";
    return out;
  }
  if (reserved != 0) return corrupt("nonzero reserved header field");

  // First pass: verify every frame before delivering anything — the
  // segment is the atomic unit of recovery.
  std::vector<std::span<const std::byte>> payloads;
  payloads.reserve(static_cast<std::size_t>(out.declared_entries));
  for (std::uint64_t i = 0; i < declared; ++i) {
    const std::uint32_t len = r.u32();
    if (!r.ok || bytes.size() - r.pos < len + sizeof(std::uint64_t)) {
      return corrupt("entry " + std::to_string(i) + ": truncated frame");
    }
    const std::span<const std::byte> payload(bytes.data() + r.pos, len);
    r.pos += len;
    const std::uint64_t sum = r.u64();
    if (sum != payload_checksum(payload)) {
      return corrupt("entry " + std::to_string(i) + ": checksum mismatch");
    }
    payloads.push_back(payload);
  }
  if (r.pos != bytes.size()) {
    return corrupt("trailing bytes after declared entries");
  }
  if (fn) {
    for (const auto& p : payloads) fn(p);
  }
  out.entries = payloads.size();
  return out;
}

// --------------------------------------------- segment file I/O --

bool write_segment_file(const std::string& path,
                        const std::vector<std::vector<std::byte>>& payloads,
                        resilience::FaultInjector* injector, bool warn) {
  const std::vector<std::byte> bytes = build_segment(payloads);
  const std::string tmp = path + ".tmp";

  resilience::ArmedFault wf;
  if (injector) wf = injector->arm("persist.write");
  std::size_t n = bytes.size();
  bool write_failed = wf.kind == resilience::FaultKind::NoSpace;
  if (wf.kind == resilience::FaultKind::TornWrite && !bytes.empty()) {
    // The torn write *reports success*: this is the crash/reordering
    // model where the rename landed but the data did not. Recovery
    // happens at the next load, via checksums and quarantine.
    n = wf.entropy % bytes.size();
  }
  if (!write_failed) {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(n));
    write_failed = !out.flush().good();
  }
  if (write_failed) {
    std::error_code ec;
    fs::remove(tmp, ec);
    warn_msg(warn, "write of " + tmp + " failed" +
                       (wf.kind == resilience::FaultKind::NoSpace
                            ? " (injected ENOSPC)"
                            : ""));
    return false;
  }

  resilience::ArmedFault rf;
  if (injector) rf = injector->arm("persist.rename");
  std::error_code ec;
  if (rf.kind == resilience::FaultKind::RenameFail) {
    ec = std::make_error_code(std::errc::io_error);
  } else {
    fs::rename(tmp, path, ec);
  }
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    warn_msg(warn, "rename " + tmp + " -> " + path + " failed: " +
                       ec.message());
    return false;
  }
  return true;
}

SegmentParse load_segment_file(const std::string& path, const PayloadFn& fn,
                               resilience::FaultInjector* injector,
                               bool warn) {
  SegmentParse out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.status = SegmentStatus::Missing;
    out.detail = "cannot open " + path;
    return out;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> buf(raw.size());
  if (!raw.empty()) std::memcpy(buf.data(), raw.data(), raw.size());
  if (injector && !buf.empty()) {
    const resilience::ArmedFault af = injector->arm("persist.read");
    if (af.kind == resilience::FaultKind::BitFlipRead) {
      const std::uint64_t bit = af.entropy % (buf.size() * 8);
      buf[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
  }
  out = parse_segment(buf, fn);
  if (out.status == SegmentStatus::BadMagic ||
      out.status == SegmentStatus::Corrupt) {
    std::error_code ec;
    fs::rename(path, path + ".quarantine", ec);
    warn_msg(warn, "quarantined " + path + " (" +
                       std::string(to_string(out.status)) +
                       (out.detail.empty() ? "" : ": " + out.detail) + ")" +
                       (ec ? " — quarantine rename failed: " + ec.message()
                           : ""));
  } else if (out.status == SegmentStatus::BadVersion) {
    warn_msg(warn, "refused " + path + " (" + out.detail + ")");
  }
  return out;
}

// ---------------------------------------- cache entry payloads --

std::vector<std::byte> encode_cache_entry(const CacheKey& key,
                                          const sim::TimeBreakdown& value) {
  std::vector<std::byte> out;
  out.reserve(3 * 8 + 5 * 8 + 6 * 4);
  put_u64(out, key.machine);
  put_u64(out, key.signature);
  put_u64(out, key.config);
  put_f64(out, value.compute_s);
  put_f64(out, value.memory_s);
  put_f64(out, value.sync_s);
  put_f64(out, value.atomic_s);
  put_f64(out, value.total_s);
  put_u32(out, static_cast<std::uint32_t>(value.serving));
  put_u32(out, value.vector_path ? 1u : 0u);
  put_u32(out, static_cast<std::uint32_t>(value.note));
  put_u32(out, static_cast<std::uint32_t>(value.note_compiler));
  put_u32(out, static_cast<std::uint32_t>(value.note_mode));
  put_u32(out, value.note_rollback ? 1u : 0u);
  return out;
}

std::optional<std::pair<CacheKey, sim::TimeBreakdown>> decode_cache_entry(
    std::span<const std::byte> payload) {
  Reader r{payload};
  CacheKey key;
  key.machine = r.u64();
  key.signature = r.u64();
  key.config = r.u64();
  sim::TimeBreakdown bd;
  bd.compute_s = r.f64();
  bd.memory_s = r.f64();
  bd.sync_s = r.f64();
  bd.atomic_s = r.f64();
  bd.total_s = r.f64();
  const std::uint32_t serving = r.u32();
  const std::uint32_t vector_path = r.u32();
  const std::uint32_t note = r.u32();
  const std::uint32_t note_compiler = r.u32();
  const std::uint32_t note_mode = r.u32();
  const std::uint32_t note_rollback = r.u32();
  if (!r.ok || serving > static_cast<std::uint32_t>(sim::MemLevel::DRAM) ||
      vector_path > 1 ||
      note > static_cast<std::uint32_t>(compiler::NoteKind::VectorPath) ||
      note_compiler > static_cast<std::uint32_t>(core::CompilerId::Clang) ||
      note_mode > static_cast<std::uint32_t>(core::VectorMode::VLA) ||
      note_rollback > 1 || payload.size() != r.pos) {
    return std::nullopt;
  }
  bd.serving = static_cast<sim::MemLevel>(serving);
  bd.vector_path = vector_path != 0;
  bd.note = static_cast<compiler::NoteKind>(note);
  bd.note_compiler = static_cast<core::CompilerId>(note_compiler);
  bd.note_mode = static_cast<core::VectorMode>(note_mode);
  bd.note_rollback = note_rollback != 0;
  return std::make_pair(key, std::move(bd));
}

// -------------------------------------------------- the store --

PersistentStore::PersistentStore(PersistOptions opt) : opt_(std::move(opt)) {
  std::error_code ec;
  fs::create_directories(opt_.dir, ec);
  if (ec || !fs::is_directory(opt_.dir)) {
    throw std::runtime_error("persist: cannot create directory '" +
                             opt_.dir + "': " + ec.message());
  }
  for (const auto& e : fs::directory_iterator(opt_.dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Crash debris: a flush that never reached its rename.
      std::error_code ec2;
      fs::remove(e.path(), ec2);
      continue;
    }
    // seg-NNNNNN.sgpc — advance the sequence past every existing
    // segment (quarantined ones included, so names never collide).
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "seg-%6llu.sgpc", &seq) == 1) {
      next_seq_ = std::max<std::uint64_t>(next_seq_, seq + 1);
    }
  }
}

std::string PersistentStore::segment_path(std::uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06llu.sgpc",
                static_cast<unsigned long long>(seq));
  return opt_.dir + "/" + buf;
}

void PersistentStore::load(const PayloadFn& fn) {
  auto& m = PersistMetrics::get();
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(opt_.dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".sgpc") == 0) {
      names.push_back(e.path().string());
    }
  }
  std::sort(names.begin(), names.end());
  for (const auto& path : names) {
    const SegmentParse p =
        load_segment_file(path, fn, opt_.injector, opt_.warn);
    switch (p.status) {
      case SegmentStatus::Ok:
        ++stats_.segments_loaded;
        stats_.entries_loaded += p.entries;
        m.entries_loaded.add(p.entries);
        break;
      case SegmentStatus::Missing:
        break;  // raced away; nothing to recover
      case SegmentStatus::BadVersion:
        ++stats_.refused_segments;
        m.refused_segments.add();
        break;
      case SegmentStatus::BadMagic:
      case SegmentStatus::Corrupt: {
        ++stats_.quarantined_segments;
        m.quarantined_segments.add();
        const std::uint64_t lost = std::max<std::uint64_t>(
            p.declared_entries, 1);
        stats_.corrupt_entries += lost;
        m.corrupt_entries.add(lost);
        break;
      }
    }
  }
}

bool PersistentStore::append(
    const std::vector<std::vector<std::byte>>& payloads) {
  auto& m = PersistMetrics::get();
  const std::string path = segment_path(next_seq_);
  const int attempts = std::max(1, opt_.retry.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          opt_.retry.backoff_ms(attempt - 1)));
    }
    if (write_segment_file(path, payloads, opt_.injector, opt_.warn)) {
      ++next_seq_;
      ++stats_.flushes;
      stats_.entries_flushed += payloads.size();
      m.flushes.add();
      m.entries_flushed.add(payloads.size());
      return true;
    }
    ++stats_.flush_failures;
    m.flush_failures.add();
  }
  warn_msg(opt_.warn, "flush of " + std::to_string(payloads.size()) +
                          " entries failed after " +
                          std::to_string(attempts) +
                          " attempts; entries stay queued in memory");
  return false;
}

void PersistentStore::write_manifest(const std::string& note) {
  // Advisory metadata, deliberately outside the fault-injection sites:
  // an injected plan tears segments, not the manifest, so recovery
  // tests stay deterministic. A torn manifest is harmless anyway —
  // read_manifest() ignores anything malformed.
  const std::string path = opt_.dir + "/sweep.manifest";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  out << "sgp-sweep-manifest v1\n"
      << "segments " << stats_.segments_loaded + stats_.flushes << "\n"
      << "entries " << stats_.entries_loaded + stats_.entries_flushed
      << "\n"
      << "flushes " << stats_.flushes << "\n"
      << "note " << note << "\n";
  if (!out.flush().good()) {
    warn_msg(opt_.warn, "cannot write " + tmp);
    return;
  }
  out.close();
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) warn_msg(opt_.warn, "cannot update " + path + ": " + ec.message());
}

std::optional<SweepManifestInfo> PersistentStore::read_manifest() const {
  std::ifstream in(opt_.dir + "/sweep.manifest", std::ios::binary);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "sgp-sweep-manifest v1") {
    warn_msg(opt_.warn, "ignoring malformed sweep.manifest");
    return std::nullopt;
  }
  SweepManifestInfo info;
  while (std::getline(in, line)) {
    const auto sp = line.find(' ');
    if (sp == std::string::npos) continue;
    const std::string key = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    try {
      if (key == "segments") {
        info.segments = std::stoull(value);
      } else if (key == "entries") {
        info.entries = std::stoull(value);
      } else if (key == "flushes") {
        info.flushes = std::stoull(value);
      } else if (key == "note") {
        info.note = value;
      }
    } catch (const std::exception&) {
      warn_msg(opt_.warn, "ignoring malformed sweep.manifest");
      return std::nullopt;
    }
  }
  return info;
}

}  // namespace sgp::engine
