#include "engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/eval_context.hpp"
#include "threading/pool.hpp"

namespace sgp::engine {

namespace {

/// Process-wide engine metrics, aggregated over every SweepEngine
/// (the cache's hit/miss mirrors live in SimCache itself).
struct EngineMetrics {
  obs::Counter& requests = obs::registry().counter("engine.requests");
  obs::Counter& simulations =
      obs::registry().counter("engine.simulations");
  obs::Counter& simulators_built =
      obs::registry().counter("engine.simulators_built");
  obs::Counter& batches = obs::registry().counter("engine.batches");

  static EngineMetrics& get() {
    static EngineMetrics* m = new EngineMetrics();
    return *m;
  }
};

}  // namespace

SweepEngine::SweepEngine(EngineOptions opt)
    : jobs_(threading::recommended_jobs(opt.jobs)),
      use_cache_(opt.use_cache) {
  if (!opt.persist || !use_cache_) return;
  store_ = std::make_unique<PersistentStore>(opt.persist->store);
  flush_min_entries_ = std::max<std::size_t>(1, opt.persist->flush_min_entries);
  persist_note_ = opt.persist->note;
  cache_.set_persist_tracking(true);
  {
    const obs::Span span("SweepEngine::persist_load");
    store_->load([&](std::span<const std::byte> payload) {
      if (const auto entry = decode_cache_entry(payload)) {
        cache_.insert_loaded(entry->first, entry->second);
      } else {
        // The frame verified but the payload is not a cache entry this
        // build understands — count it and move on, never abort.
        undecodable_entries_.fetch_add(1, std::memory_order_relaxed);
        obs::registry().counter("persist.corrupt_entries").add();
      }
    });
  }
  if (opt.persist->flush_interval_ms > 0.0) {
    const double interval_ms = opt.persist->flush_interval_ms;
    flush_thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lk(flush_cv_mu_);
      for (;;) {
        flush_cv_.wait_for(
            lk, std::chrono::duration<double, std::milli>(interval_ms),
            [this] { return stop_flusher_; });
        if (stop_flusher_) return;
        lk.unlock();
        if (cache_.fresh_entries() > 0 ||
            pending_count_.load(std::memory_order_relaxed) > 0) {
          flush_persistent();
        }
        lk.lock();
      }
    });
  }
}

SweepEngine::~SweepEngine() {
  stop_flusher();
  if (store_) {
    // Best-effort final checkpoint; persistence failures must never
    // take down a process that computed its results successfully.
    try {
      flush_persistent();
    } catch (...) {
    }
  }
}

void SweepEngine::stop_flusher() {
  if (!flush_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(flush_cv_mu_);
    stop_flusher_ = true;
  }
  flush_cv_.notify_all();
  flush_thread_.join();
}

bool SweepEngine::flush_persistent() {
  if (!store_) return true;
  std::lock_guard<std::mutex> lock(flush_mu_);
  auto fresh = cache_.drain_fresh();
  pending_.insert(pending_.end(),
                  std::make_move_iterator(fresh.begin()),
                  std::make_move_iterator(fresh.end()));
  pending_count_.store(pending_.size(), std::memory_order_relaxed);
  if (pending_.empty()) return true;
  const obs::Span span("SweepEngine::persist_flush");
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(pending_.size());
  for (const auto& [key, value] : pending_) {
    payloads.push_back(encode_cache_entry(key, value));
  }
  if (!store_->append(payloads)) return false;  // entries stay queued
  pending_.clear();
  pending_count_.store(0, std::memory_order_relaxed);
  store_->write_manifest(persist_note_);
  return true;
}

void SweepEngine::maybe_flush() {
  if (!store_) return;
  if (cache_.fresh_entries() +
          pending_count_.load(std::memory_order_relaxed) >=
      flush_min_entries_) {
    flush_persistent();
  }
}

void SweepEngine::set_jobs(int jobs) {
  const int resolved = threading::recommended_jobs(jobs);
  if (resolved == jobs_) return;
  jobs_ = resolved;
  pool_.reset();  // re-created lazily at the next batch
}

const sim::Simulator& SweepEngine::simulator_for(
    const machine::MachineDescriptor& m, std::uint64_t machine_fp) {
  std::lock_guard<std::mutex> lock(sims_mu_);
  auto it = sims_.find(machine_fp);
  if (it == sims_.end()) {
    it = sims_.emplace(machine_fp, std::make_unique<sim::Simulator>(m))
             .first;
    simulators_built_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::get().simulators_built.add();
  }
  return *it->second;
}

sim::TimeBreakdown SweepEngine::run_point(const SweepPoint& p) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::get().requests.add();
  const std::uint64_t machine_fp = machine_fingerprint(*p.machine);
  const sim::Simulator& simulator = simulator_for(*p.machine, machine_fp);
  auto compute = [&] {
    simulations_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::get().simulations.add();
    const auto t0 = std::chrono::steady_clock::now();
    auto out = simulator.run(*p.signature, p.config);
    sim_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    return out;
  };
  if (!use_cache_) return compute();
  const CacheKey key{machine_fp, signature_fingerprint(*p.signature),
                     config_fingerprint(p.config)};
  return cache_.get_or_compute(key, compute);
}

sim::TimeBreakdown SweepEngine::run(const machine::MachineDescriptor& m,
                                    const core::KernelSignature& sig,
                                    const sim::SimConfig& cfg) {
  sim::TimeBreakdown out = run_point(SweepPoint{&m, &sig, cfg});
  maybe_flush();
  return out;
}

std::vector<sim::TimeBreakdown> SweepEngine::run_batch(
    std::span<const SweepPoint> points) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::get().batches.add();
  const obs::Span span("SweepEngine::run_batch");
  std::vector<sim::TimeBreakdown> results(points.size());
  if (points.empty()) return results;

  requests_.fetch_add(points.size(), std::memory_order_relaxed);
  EngineMetrics::get().requests.add(points.size());

  // Group the batch by (machine, signature) identity: the expensive
  // fingerprint prefix (machine_fingerprint walks to_ini plus every
  // descriptor field, ~10 us; signature_fingerprint ~30 fields) is
  // computed once per group, so each point only hashes its SimConfig.
  struct Group {
    const machine::MachineDescriptor* machine = nullptr;
    const core::KernelSignature* signature = nullptr;
    const sim::Simulator* simulator = nullptr;
    std::uint64_t machine_fp = 0;
    std::uint64_t signature_fp = 0;
    std::vector<std::size_t> miss;  ///< result indices left to price
  };
  struct MachineEntry {
    const machine::MachineDescriptor* machine;
    std::uint64_t fp;
    const sim::Simulator* simulator;
  };
  std::vector<Group> groups;
  std::vector<MachineEntry> machines;
  std::vector<std::uint32_t> point_group(points.size());
  std::vector<CacheKey> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    // Batches come from grids: the same few (machine, signature) pairs
    // repeat point after point, so a linear scan beats hashing.
    std::size_t g = groups.size();
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (groups[j].machine == p.machine &&
          groups[j].signature == p.signature) {
        g = j;
        break;
      }
    }
    if (g == groups.size()) {
      Group group;
      group.machine = p.machine;
      group.signature = p.signature;
      std::size_t me = machines.size();
      for (std::size_t j = 0; j < machines.size(); ++j) {
        if (machines[j].machine == p.machine) {
          me = j;
          break;
        }
      }
      if (me == machines.size()) {
        const std::uint64_t fp = machine_fingerprint(*p.machine);
        machines.push_back(
            MachineEntry{p.machine, fp, &simulator_for(*p.machine, fp)});
      }
      group.machine_fp = machines[me].fp;
      group.simulator = machines[me].simulator;
      group.signature_fp = signature_fingerprint(*p.signature);
      groups.push_back(std::move(group));
    }
    point_group[i] = static_cast<std::uint32_t>(g);
    keys[i] = CacheKey{groups[g].machine_fp, groups[g].signature_fp,
                       config_fingerprint(p.config)};
  }

  // One lock acquisition per shard for the whole batch, instead of one
  // per point.
  std::vector<std::uint8_t> hit(points.size(), 0);
  if (use_cache_) {
    cache_.lookup_batch(keys, results, hit);
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!hit[i]) groups[point_group[i]].miss.push_back(i);
  }

  // Price the misses through sim::Simulator::run_batch, one EvalContext
  // per task so workers share nothing mutable. Large groups are split
  // into chunks so a single-group grid still spreads over the pool.
  constexpr std::size_t kPriceChunk = 256;
  struct Task {
    std::size_t group;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Task> tasks;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t b = 0; b < groups[g].miss.size(); b += kPriceChunk) {
      tasks.push_back(
          Task{g, b, std::min(b + kPriceChunk, groups[g].miss.size())});
    }
  }

  auto price_task = [&](const Task& t) {
    const Group& g = groups[t.group];
    const std::size_t len = t.end - t.begin;
    sim::EvalContext ctx(*g.simulator, *g.signature);
    std::vector<sim::SimConfig> cfgs(len);
    std::vector<sim::TimeBreakdown> outs(len);
    std::vector<CacheKey> miss_keys(len);
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t i = g.miss[t.begin + k];
      cfgs[k] = points[i].config;
      miss_keys[k] = keys[i];
    }
    const auto t0 = std::chrono::steady_clock::now();
    g.simulator->run_batch(ctx, cfgs, outs);
    sim_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    simulations_.fetch_add(len, std::memory_order_relaxed);
    EngineMetrics::get().simulations.add(len);
    for (std::size_t k = 0; k < len; ++k) {
      results[g.miss[t.begin + k]] = outs[k];
    }
    if (use_cache_) cache_.insert_batch(miss_keys, outs);
  };

  if (jobs_ == 1 || tasks.size() <= 1) {
    for (const Task& t : tasks) price_task(t);
  } else {
    // The pool's job slot is single-occupancy, so concurrent run_batch
    // callers serialize here (cache lookups above stay concurrent).
    std::lock_guard<std::mutex> pool_lock(pool_mu_);
    if (!pool_) pool_ = std::make_unique<threading::ThreadPool>(jobs_);
    // Grain 1: tasks have irregular cost (group sizes and thread counts
    // vary wildly across a grid). Rethrows the first exception after
    // the join; results are discarded in that case.
    pool_->parallel_for_dynamic(
        tasks.size(), 1,
        [&](std::size_t begin, std::size_t end, int /*worker*/) {
          for (std::size_t i = begin; i < end; ++i) {
            price_task(tasks[i]);
          }
        });
  }
  maybe_flush();
  return results;
}

std::vector<sim::TimeBreakdown> SweepEngine::run_grid(
    const machine::MachineDescriptor& m,
    std::span<const core::KernelSignature> sigs,
    std::span<const sim::SimConfig> cfgs) {
  const obs::Span span("SweepEngine::run_grid");
  std::vector<SweepPoint> points;
  points.reserve(sigs.size() * cfgs.size());
  for (const auto& cfg : cfgs) {
    for (const auto& sig : sigs) {
      points.push_back(SweepPoint{&m, &sig, cfg});
    }
  }
  return run_batch(points);
}

// ------------------------------------------------------------ phases --

SweepEngine::PhaseScope::PhaseScope(SweepEngine* eng, std::size_t index,
                                    const std::string& name)
    : eng_(eng),
      index_(index),
      start_(std::chrono::steady_clock::now()),
      requests_at_start_(eng->requests_.load(std::memory_order_relaxed)),
      span_(std::make_unique<obs::Span>("phase:" + name)) {}

SweepEngine::PhaseScope::PhaseScope(PhaseScope&& other) noexcept
    : eng_(std::exchange(other.eng_, nullptr)),
      index_(other.index_),
      start_(other.start_),
      requests_at_start_(other.requests_at_start_),
      span_(std::move(other.span_)) {}

SweepEngine::PhaseScope::~PhaseScope() {
  if (!eng_) return;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  eng_->finish_phase(
      index_, wall,
      eng_->requests_.load(std::memory_order_relaxed) -
          requests_at_start_);
}

SweepEngine::PhaseScope SweepEngine::phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(phases_mu_);
  auto it = phase_index_.find(name);
  if (it == phase_index_.end()) {
    it = phase_index_.emplace(name, phases_.size()).first;
    phases_.push_back(PhaseStat{name, 0.0, 0});
  }
  return PhaseScope(this, it->second, name);
}

void SweepEngine::finish_phase(std::size_t index, double wall_s,
                               std::uint64_t requests) {
  std::lock_guard<std::mutex> lock(phases_mu_);
  phases_[index].wall_s += wall_s;
  phases_[index].requests += requests;
}

// ---------------------------------------------------------- counters --

EngineCounters SweepEngine::counters() const {
  EngineCounters out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.simulations = simulations_.load(std::memory_order_relaxed);
  out.simulators_built =
      simulators_built_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.sim_ns = sim_ns_.load(std::memory_order_relaxed);
  const CacheStats cs = cache_.stats();
  out.cache_hits = cs.hits;
  out.cache_misses = cs.misses;
  out.cache_entries = cs.entries;
  {
    std::lock_guard<std::mutex> lock(phases_mu_);
    out.phases = phases_;
  }
  if (store_) {
    out.persist.enabled = true;
    out.persist.store = store_->stats();
    out.persist.cache = cache_.persist_stats();
    out.persist.undecodable_entries =
        undecodable_entries_.load(std::memory_order_relaxed);
    out.persist.pending_entries =
        pending_count_.load(std::memory_order_relaxed) +
        cache_.fresh_entries();
  }
  return out;
}

void SweepEngine::reset_counters() {
  requests_.store(0, std::memory_order_relaxed);
  simulations_.store(0, std::memory_order_relaxed);
  simulators_built_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  sim_ns_.store(0, std::memory_order_relaxed);
  cache_.reset_stats();
  std::lock_guard<std::mutex> lock(phases_mu_);
  phases_.clear();
  phase_index_.clear();
}

void SweepEngine::clear_cache() {
  cache_.clear();
  std::lock_guard<std::mutex> lock(sims_mu_);
  sims_.clear();
}

SweepEngine& shared_engine() {
  static SweepEngine* eng = new SweepEngine();  // never destroyed
  return *eng;
}

}  // namespace sgp::engine
