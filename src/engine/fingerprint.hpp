// Content-addressed fingerprints for the sweep engine's memoization
// cache. A cache key is the triple of 64-bit FNV-1a fingerprints of the
// machine descriptor, the kernel signature and the SimConfig; two
// evaluation points with equal fingerprints are guaranteed (up to hash
// collision, ~2^-64 per pair) to be the same pure-function input to
// Simulator::run and therefore to produce bit-identical TimeBreakdowns.
//
// The machine fingerprint is built from the INI serialization
// (machine::to_ini) *plus* a bit-exact encoding of every numeric field:
// the INI text makes the fingerprint content-addressed in the same form
// users feed to the tools, while the raw field bits catch differences
// the 6-significant-digit INI formatting would flatten (e.g. two L1
// sizes inside the same KiB).
#pragma once

#include <cstdint>
#include <string_view>

#include "core/signature.hpp"
#include "machine/descriptor.hpp"
#include "sim/config.hpp"

namespace sgp::engine {

/// Incremental 64-bit FNV-1a hasher.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n) noexcept;
  void str(std::string_view s) noexcept { bytes(s.data(), s.size()); }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }
  void i32(std::int32_t v) noexcept { bytes(&v, sizeof v); }
  void f64(double v) noexcept;  ///< hashes the bit pattern
  void flag(bool v) noexcept { u64(v ? 1u : 0u); }

  std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV offset basis
};

/// Fingerprint of everything Simulator::run reads from the descriptor.
std::uint64_t machine_fingerprint(const machine::MachineDescriptor& m);

/// Fingerprint of every field of a kernel signature (not just its name,
/// so mutated copies of a registry signature key separately).
std::uint64_t signature_fingerprint(const core::KernelSignature& sig);

/// Fingerprint of a SimConfig.
std::uint64_t config_fingerprint(const sim::SimConfig& cfg);

}  // namespace sgp::engine
