// Crash-safe persistence for the sweep engine's memo cache.
//
// Durability model (docs/PERSISTENCE.md has the full story):
//   * a store is a directory of versioned, append-only *segment files*
//     ("seg-000001.sgpc", ...). Segments are immutable once written;
//     a flush appends a new segment, it never rewrites an old one;
//   * every segment is produced write-temp-then-rename, so a crash
//     leaves either no new segment or a complete one — plus possibly a
//     "*.tmp" file, which the loader deletes as debris;
//   * every entry carries an FNV-1a checksum and the header declares
//     the entry count, so torn writes, bit rot and truncation — even
//     truncation at an exact entry boundary — are detected;
//   * a segment is the atomic unit of recovery: the loader verifies
//     every entry before delivering any, renames segments that fail
//     verification to "<name>.quarantine" (skip-and-warn, never abort)
//     and refuses files with unknown version headers in place, so a
//     newer tool's data is never destroyed;
//   * all I/O can be fault-injected (resilience::FaultInjector sites
//     "persist.write", "persist.rename", "persist.read") and failed
//     flushes retry under a jittered resilience::RetryPolicy.
//
// Everything observable lands in the obs registry under "persist.*".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/cache.hpp"
#include "resilience/retry.hpp"
#include "sim/simulator.hpp"

namespace sgp::resilience {
class FaultInjector;
}

namespace sgp::engine {

// --------------------------------------------- segment byte format --

/// 8-byte magic at offset 0 of every segment file.
inline constexpr char kSegmentMagic[8] = {'S', 'G', 'P', 'C',
                                          'S', 'E', 'G', '\0'};
/// Current format version; loaders refuse anything else. Version 2
/// replaced the free-text note bytes in each cache entry with the four
/// structured note fields (kind, compiler, mode, rollback).
inline constexpr std::uint32_t kSegmentVersion = 2;
/// Header: magic(8) + version(4) + reserved(4, must be 0) + entry
/// count(8). Entries follow: [len u32][payload][fnv1a(payload) u64].
inline constexpr std::size_t kSegmentHeaderSize = 24;

enum class SegmentStatus {
  Ok,          ///< fully verified, entries delivered
  Missing,     ///< file absent or unreadable
  BadMagic,    ///< not a segment file (or its header was destroyed)
  BadVersion,  ///< a version this build does not understand — refused
  Corrupt,     ///< framing/checksum/count violation — quarantine
};

std::string_view to_string(SegmentStatus s) noexcept;

/// Outcome of parsing one segment.
struct SegmentParse {
  SegmentStatus status = SegmentStatus::Ok;
  std::uint64_t declared_entries = 0;  ///< header count (0 if unreadable)
  std::uint64_t entries = 0;           ///< entries delivered (Ok only)
  std::string detail;                  ///< first problem, human-readable
};

using PayloadFn = std::function<void(std::span<const std::byte>)>;

/// Renders payloads into segment bytes (header + framed entries).
std::vector<std::byte> build_segment(
    const std::vector<std::vector<std::byte>>& payloads);

/// Verifies `bytes` as a complete segment. Entries are delivered to
/// `fn` only when the whole segment verifies (the segment is the
/// atomic recovery unit); on any status other than Ok, `fn` is never
/// called. Never throws on malformed input.
SegmentParse parse_segment(std::span<const std::byte> bytes,
                           const PayloadFn& fn);

// ------------------------------------------------ segment file I/O --

/// Atomically replaces `path` with a segment of `payloads`: writes
/// `path + ".tmp"`, flushes, renames. Fault sites: "persist.write"
/// (TornWrite truncates silently — modelling a crash/partial flush
/// that still renamed; NoSpace fails the write), "persist.rename"
/// (RenameFail). Returns false on a detected failure (the temp file is
/// removed); a torn write is *undetected* by design and returns true.
bool write_segment_file(const std::string& path,
                        const std::vector<std::vector<std::byte>>& payloads,
                        resilience::FaultInjector* injector, bool warn);

/// Reads and parses `path`. Fault site: "persist.read" (BitFlipRead
/// flips one bit of the in-memory buffer before parsing). On BadMagic
/// or Corrupt the file is renamed to `path + ".quarantine"`; on
/// BadVersion it is refused but left untouched. Never throws for data
/// reasons.
SegmentParse load_segment_file(const std::string& path, const PayloadFn& fn,
                               resilience::FaultInjector* injector,
                               bool warn);

// ------------------------------------------- cache entry payloads --

/// Serializes one memo-cache entry (key fingerprints + the complete
/// TimeBreakdown, note text included) as a segment payload.
std::vector<std::byte> encode_cache_entry(const CacheKey& key,
                                          const sim::TimeBreakdown& value);

/// Inverse of encode_cache_entry; nullopt on any framing violation.
std::optional<std::pair<CacheKey, sim::TimeBreakdown>> decode_cache_entry(
    std::span<const std::byte> payload);

// ------------------------------------------------------ the store --

struct PersistStats {
  std::uint64_t segments_loaded = 0;
  std::uint64_t entries_loaded = 0;
  std::uint64_t corrupt_entries = 0;  ///< entries lost to quarantined/undecodable data
  std::uint64_t quarantined_segments = 0;
  std::uint64_t refused_segments = 0;  ///< unknown version, left in place
  std::uint64_t flushes = 0;           ///< segments appended successfully
  std::uint64_t flush_failures = 0;    ///< append attempts that failed
  std::uint64_t entries_flushed = 0;
};

struct PersistOptions {
  std::string dir;
  /// Optional I/O fault injection (not owned; must outlive the store).
  resilience::FaultInjector* injector = nullptr;
  /// Failed segment appends retry under this policy. Jitter keeps a
  /// fleet of replicas hitting the same full disk from retrying in
  /// lockstep; the seed keeps each run reproducible.
  resilience::RetryPolicy retry{/*max_attempts=*/3,
                                /*backoff_initial_ms=*/2.0,
                                /*backoff_multiplier=*/2.0,
                                /*backoff_max_ms=*/50.0,
                                /*jitter=*/0.5};
  bool warn = true;  ///< print skip-and-warn diagnostics to stderr
};

/// What sweep.manifest recorded at the last successful flush.
struct SweepManifestInfo {
  std::uint64_t segments = 0;
  std::uint64_t entries = 0;
  std::uint64_t flushes = 0;
  std::string note;
};

/// A directory of segment files plus a human-readable sweep manifest.
/// Thread-compatible: callers (the engine's flush path) serialize
/// access; load() happens once before any append().
class PersistentStore {
 public:
  /// Creates the directory if needed and deletes "*.tmp" crash debris.
  /// Throws std::runtime_error only if the directory cannot be created.
  explicit PersistentStore(PersistOptions opt);

  const PersistOptions& options() const noexcept { return opt_; }

  /// Replays every payload of every *fully verified* segment, in
  /// segment-name order. Corrupt segments are quarantined, unknown
  /// versions refused; neither aborts the load.
  void load(const PayloadFn& fn);

  /// Appends `payloads` as one new segment, retrying failed attempts
  /// under the retry policy. Returns true on (apparent) success; the
  /// caller keeps ownership of the payload data and may re-queue it on
  /// failure.
  bool append(const std::vector<std::vector<std::byte>>& payloads);

  /// Rewrites sweep.manifest (write-temp-then-rename; failures warn
  /// and count, never throw).
  void write_manifest(const std::string& note);

  /// Parses sweep.manifest if present and well-formed.
  std::optional<SweepManifestInfo> read_manifest() const;

  PersistStats stats() const { return stats_; }

 private:
  std::string segment_path(std::uint64_t seq) const;

  PersistOptions opt_;
  std::uint64_t next_seq_ = 1;
  PersistStats stats_;
};

}  // namespace sgp::engine
