#include "engine/cache.hpp"

namespace sgp::engine {

void SimCache::count_hit(Entry& e) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs_hits_.add();
  if (tracking() && e.from_disk) {
    persist_hits_.fetch_add(1, std::memory_order_relaxed);
    obs_persist_hits_.add();
    if (!e.resume_counted) {
      e.resume_counted = true;
      persist_resumed_.fetch_add(1, std::memory_order_relaxed);
      obs_persist_resumed_.add();
    }
  }
}

sim::TimeBreakdown SimCache::get_or_compute(
    const CacheKey& key,
    const std::function<sim::TimeBreakdown()>& compute) {
  Shard& s = shard_of(key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      count_hit(it->second);
      return it->second.value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_.add();
  if (tracking()) {
    persist_misses_.fetch_add(1, std::memory_order_relaxed);
    obs_persist_misses_.add();
  }
  sim::TimeBreakdown value = compute();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    // If another thread raced us to the same key, keep its entry; the
    // compute function is pure, so the values are identical anyway and
    // "first insert wins" keeps the hit-equality contract trivially true.
    const auto [it, inserted] =
        s.map.emplace(key, Entry{std::move(value), false, false});
    if (inserted && tracking()) {
      // Only the winning insert queues for persistence, so a flush
      // writes each computed point exactly once.
      s.fresh.push_back(key);
      fresh_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second.value;
  }
}

std::optional<sim::TimeBreakdown> SimCache::find(const CacheKey& key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs_misses_.add();
    return std::nullopt;
  }
  count_hit(it->second);
  return it->second.value;
}

void SimCache::lookup_batch(std::span<const CacheKey> keys,
                            std::span<sim::TimeBreakdown> results,
                            std::span<std::uint8_t> hit) {
  // Bucket the batch by shard so each shard's mutex is taken once.
  std::array<std::vector<std::size_t>, kShards> buckets;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    buckets[shard_index(keys[i])].push_back(i);
  }
  std::uint64_t misses = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const std::size_t i : buckets[s]) {
      const auto it = shard.map.find(keys[i]);
      if (it == shard.map.end()) {
        hit[i] = 0;
        ++misses;
        continue;
      }
      count_hit(it->second);
      results[i] = it->second.value;
      hit[i] = 1;
    }
  }
  if (misses > 0) {
    misses_.fetch_add(misses, std::memory_order_relaxed);
    obs_misses_.add(misses);
    if (tracking()) {
      persist_misses_.fetch_add(misses, std::memory_order_relaxed);
      obs_persist_misses_.add(misses);
    }
  }
}

void SimCache::insert_batch(std::span<const CacheKey> keys,
                            std::span<const sim::TimeBreakdown> values) {
  std::array<std::vector<std::size_t>, kShards> buckets;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    buckets[shard_index(keys[i])].push_back(i);
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::uint64_t queued = 0;
    for (const std::size_t i : buckets[s]) {
      const auto [it, inserted] =
          shard.map.emplace(keys[i], Entry{values[i], false, false});
      (void)it;
      if (inserted && tracking()) {
        shard.fresh.push_back(keys[i]);
        ++queued;
      }
    }
    // Under the lock, like get_or_compute: a concurrent drain_fresh
    // subtracts the vector size it saw, so the counter and the queue
    // must move together.
    if (queued > 0) {
      fresh_count_.fetch_add(queued, std::memory_order_relaxed);
    }
  }
}

void SimCache::insert_loaded(const CacheKey& key,
                             const sim::TimeBreakdown& value) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.emplace(key, Entry{value, true, false});
}

std::vector<std::pair<CacheKey, sim::TimeBreakdown>> SimCache::drain_fresh() {
  std::vector<std::pair<CacheKey, sim::TimeBreakdown>> out;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const CacheKey& key : s.fresh) {
      const auto it = s.map.find(key);
      // clear() may have raced the queue away; skip silently — a
      // dropped entry simply recomputes next time.
      if (it != s.map.end()) out.emplace_back(key, it->second.value);
    }
    fresh_count_.fetch_sub(s.fresh.size(), std::memory_order_relaxed);
    s.fresh.clear();
  }
  return out;
}

void SimCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    fresh_count_.fetch_sub(s.fresh.size(), std::memory_order_relaxed);
    s.fresh.clear();
    s.map.clear();
  }
}

CacheStats SimCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.entries += s.map.size();
  }
  return out;
}

CachePersistStats SimCache::persist_stats() const {
  CachePersistStats out;
  out.hits = persist_hits_.load(std::memory_order_relaxed);
  out.misses = persist_misses_.load(std::memory_order_relaxed);
  out.resumed_points = persist_resumed_.load(std::memory_order_relaxed);
  return out;
}

void SimCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  persist_hits_.store(0, std::memory_order_relaxed);
  persist_misses_.store(0, std::memory_order_relaxed);
  persist_resumed_.store(0, std::memory_order_relaxed);
}

}  // namespace sgp::engine
