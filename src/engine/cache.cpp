#include "engine/cache.hpp"

namespace sgp::engine {

sim::TimeBreakdown SimCache::get_or_compute(
    const CacheKey& key,
    const std::function<sim::TimeBreakdown()>& compute) {
  Shard& s = shard_of(key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs_hits_.add();
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_.add();
  sim::TimeBreakdown value = compute();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    // If another thread raced us to the same key, keep its entry; the
    // compute function is pure, so the values are identical anyway and
    // "first insert wins" keeps the hit-equality contract trivially true.
    const auto [it, inserted] = s.map.emplace(key, std::move(value));
    return it->second;
  }
}

std::optional<sim::TimeBreakdown> SimCache::find(const CacheKey& key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs_misses_.add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs_hits_.add();
  return it->second;
}

void SimCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

CacheStats SimCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.entries += s.map.size();
  }
  return out;
}

void SimCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace sgp::engine
