// The sweep/evaluation engine: a scheduling and caching layer over
// sim::Simulator for the figure/table experiment pipelines.
//
// Responsibilities (the models stay untouched — results are bit
// identical to direct Simulator::run calls):
//   * memoize TimeBreakdowns in a thread-safe, content-addressed cache
//     keyed by (machine fingerprint, signature fingerprint, SimConfig
//     fingerprint) — see engine/fingerprint.hpp;
//   * build each machine's Simulator once per engine, not once per
//     pipeline;
//   * fan batches of evaluation points out over a
//     sgp::threading::ThreadPool with dynamic scheduling (grain 1:
//     points have irregular cost). Batches fill a pre-sized result
//     vector by index, so parallel output is exactly equal to a
//     forced-serial run;
//   * count everything (requests, hits, Simulator::run executions,
//     simulators built, batches, wall time per named phase) for the
//     bench binaries' --perf flag and BENCH_sweep.json.
//
// Exception contract (inherits PR 1's resilience rules): if any point
// throws, unstarted points are skipped cooperatively, the batch joins,
// and the first exception is rethrown on the calling thread; the engine
// remains usable.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cache.hpp"
#include "engine/fingerprint.hpp"
#include "obs/trace.hpp"

namespace sgp::threading {
class ThreadPool;
}

namespace sgp::engine {

struct EngineOptions {
  /// Worker threads for batches: 1 = forced serial, 0 = one per
  /// hardware thread (threading::recommended_jobs).
  int jobs = 0;
  /// false replicates the pre-engine behaviour (every request runs the
  /// simulator); used for A/B accounting in bench/micro_sweep_engine.
  bool use_cache = true;
};

/// Wall time and request volume attributed to one named phase.
struct PhaseStat {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t requests = 0;
};

struct EngineCounters {
  std::uint64_t requests = 0;      ///< evaluation points asked for
  std::uint64_t cache_hits = 0;    ///< served from the memo cache
  std::uint64_t cache_misses = 0;  ///< memo cache lookups that missed
  std::uint64_t simulations = 0;   ///< actual Simulator::run executions
  std::uint64_t simulators_built = 0;
  std::uint64_t batches = 0;      ///< run_batch/run_grid calls
  std::uint64_t cache_entries = 0;
  std::vector<PhaseStat> phases;  ///< in first-use order
};

/// One evaluation point for run_batch. The machine and signature are
/// borrowed; they must outlive the call.
struct SweepPoint {
  const machine::MachineDescriptor* machine = nullptr;
  const core::KernelSignature* signature = nullptr;
  sim::SimConfig config;
};

class SweepEngine {
 public:
  explicit SweepEngine(EngineOptions opt = {});
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Resolved worker count used for batches.
  int jobs() const noexcept { return jobs_; }
  /// Changes the worker count for subsequent batches. Not thread-safe
  /// against in-flight batches; call between pipelines.
  void set_jobs(int jobs);

  /// Evaluate one point through the cache.
  sim::TimeBreakdown run(const machine::MachineDescriptor& m,
                         const core::KernelSignature& sig,
                         const sim::SimConfig& cfg);

  double seconds(const machine::MachineDescriptor& m,
                 const core::KernelSignature& sig,
                 const sim::SimConfig& cfg) {
    return run(m, sig, cfg).total_s;
  }

  /// Evaluate a batch of points; results are positionally aligned with
  /// `points` regardless of scheduling.
  std::vector<sim::TimeBreakdown> run_batch(
      std::span<const SweepPoint> points);

  /// Cross-product convenience: machine x configs x signatures, results
  /// row-major by config (result[c * sigs.size() + s]).
  std::vector<sim::TimeBreakdown> run_grid(
      const machine::MachineDescriptor& m,
      std::span<const core::KernelSignature> sigs,
      std::span<const sim::SimConfig> cfgs);

  /// RAII wall-clock accumulator: `auto scope = eng.phase("figure1");`
  /// attributes elapsed time and request volume until scope exit.
  class PhaseScope {
   public:
    PhaseScope(PhaseScope&& other) noexcept;
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    PhaseScope& operator=(PhaseScope&&) = delete;

   private:
    friend class SweepEngine;
    PhaseScope(SweepEngine* eng, std::size_t index,
               const std::string& name);
    SweepEngine* eng_;
    std::size_t index_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t requests_at_start_;
    /// Trace span covering the phase (heap so moves keep the
    /// thread-local span stack untouched).
    std::unique_ptr<obs::Span> span_;
  };

  PhaseScope phase(const std::string& name);

  EngineCounters counters() const;
  void reset_counters();
  /// Drops all memoized results and per-machine simulators. Not
  /// thread-safe against in-flight batches.
  void clear_cache();

 private:
  const sim::Simulator& simulator_for(const machine::MachineDescriptor& m,
                                      std::uint64_t machine_fp);
  sim::TimeBreakdown run_point(const SweepPoint& p);
  void finish_phase(std::size_t index, double wall_s,
                    std::uint64_t requests);

  int jobs_;
  const bool use_cache_;
  SimCache cache_;

  std::mutex sims_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Simulator>> sims_;

  std::unique_ptr<threading::ThreadPool> pool_;  ///< lazily created

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> simulations_{0};
  std::atomic<std::uint64_t> simulators_built_{0};
  std::atomic<std::uint64_t> batches_{0};

  mutable std::mutex phases_mu_;
  std::vector<PhaseStat> phases_;
  std::unordered_map<std::string, std::size_t> phase_index_;
};

/// The process-wide engine the convenience experiment overloads use, so
/// every bench binary and test in one process shares one cache.
SweepEngine& shared_engine();

}  // namespace sgp::engine
