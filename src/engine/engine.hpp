// The sweep/evaluation engine: a scheduling and caching layer over
// sim::Simulator for the figure/table experiment pipelines.
//
// Responsibilities (the models stay untouched — results are bit
// identical to direct Simulator::run calls):
//   * memoize TimeBreakdowns in a thread-safe, content-addressed cache
//     keyed by (machine fingerprint, signature fingerprint, SimConfig
//     fingerprint) — see engine/fingerprint.hpp;
//   * build each machine's Simulator once per engine, not once per
//     pipeline;
//   * fan batches of evaluation points out over a
//     sgp::threading::ThreadPool with dynamic scheduling (grain 1:
//     points have irregular cost). Batches fill a pre-sized result
//     vector by index, so parallel output is exactly equal to a
//     forced-serial run;
//   * count everything (requests, hits, Simulator::run executions,
//     simulators built, batches, wall time per named phase) for the
//     bench binaries' --perf flag and BENCH_sweep.json.
//
// Exception contract (inherits PR 1's resilience rules): if any point
// throws, unstarted points are skipped cooperatively, the batch joins,
// and the first exception is rethrown on the calling thread; the engine
// remains usable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/cache.hpp"
#include "engine/fingerprint.hpp"
#include "engine/persist.hpp"
#include "obs/trace.hpp"

namespace sgp::threading {
class ThreadPool;
}

namespace sgp::engine {

/// Durable memo-cache + checkpoint/resume configuration. When set (and
/// the cache is on), the engine loads every verified segment from
/// `store.dir` at construction — so an interrupted sweep replays only
/// its missing points — and flushes freshly-computed results back as
/// new segments: at the end of any batch once `flush_min_entries` have
/// accumulated, from a background flush thread every
/// `flush_interval_ms` (0 disables the thread), and at destruction.
struct EnginePersistence {
  PersistOptions store;  ///< directory, I/O fault injection, flush retry
  std::size_t flush_min_entries = 256;
  double flush_interval_ms = 0.0;
  /// Free-text sweep identity recorded in the store's sweep.manifest.
  std::string note;
};

struct EngineOptions {
  /// Worker threads for batches: 1 = forced serial, 0 = one per
  /// hardware thread (threading::recommended_jobs).
  int jobs = 0;
  /// false replicates the pre-engine behaviour (every request runs the
  /// simulator); used for A/B accounting in bench/micro_sweep_engine.
  bool use_cache = true;
  /// Crash-safe persistence; disabled by default (and ignored when
  /// use_cache is false — there is nothing to persist).
  std::optional<EnginePersistence> persist;
};

/// Wall time and request volume attributed to one named phase.
struct PhaseStat {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t requests = 0;
};

/// Persistence-side accounting, filled only when a store is attached.
struct EnginePersistCounters {
  bool enabled = false;
  PersistStats store;       ///< segment-level loads/flushes/quarantines
  CachePersistStats cache;  ///< persist.hits / misses / resumed_points
  std::uint64_t undecodable_entries = 0;  ///< verified frames that failed decode
  std::uint64_t pending_entries = 0;      ///< computed but not yet durable
};

struct EngineCounters {
  std::uint64_t requests = 0;      ///< evaluation points asked for
  std::uint64_t cache_hits = 0;    ///< served from the memo cache
  std::uint64_t cache_misses = 0;  ///< memo cache lookups that missed
  std::uint64_t simulations = 0;   ///< actual Simulator::run executions
  std::uint64_t simulators_built = 0;
  std::uint64_t batches = 0;      ///< run_batch/run_grid calls
  std::uint64_t cache_entries = 0;
  /// Wall nanoseconds spent inside Simulator::run, summed across
  /// workers — the hot-path cost the memo cache and the replay engine
  /// exist to shrink. Per-thread time, so sims_per_second() measures
  /// simulator throughput independent of worker count and scheduling.
  std::uint64_t sim_ns = 0;
  std::vector<PhaseStat> phases;  ///< in first-use order
  EnginePersistCounters persist;

  /// Simulations per aggregate simulation second (0 when nothing ran).
  /// bench/micro_sweep_engine gates on this so hot-path regressions
  /// fail CI, not code review.
  double sims_per_second() const {
    return sim_ns == 0 ? 0.0
                       : static_cast<double>(simulations) /
                             (static_cast<double>(sim_ns) * 1e-9);
  }
};

/// One evaluation point for run_batch. The machine and signature are
/// borrowed; they must outlive the call.
struct SweepPoint {
  const machine::MachineDescriptor* machine = nullptr;
  const core::KernelSignature* signature = nullptr;
  sim::SimConfig config;
};

class SweepEngine {
 public:
  explicit SweepEngine(EngineOptions opt = {});
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Resolved worker count used for batches.
  int jobs() const noexcept { return jobs_; }
  /// Changes the worker count for subsequent batches. Not thread-safe
  /// against in-flight batches; call between pipelines.
  void set_jobs(int jobs);

  /// Evaluate one point through the cache.
  sim::TimeBreakdown run(const machine::MachineDescriptor& m,
                         const core::KernelSignature& sig,
                         const sim::SimConfig& cfg);

  double seconds(const machine::MachineDescriptor& m,
                 const core::KernelSignature& sig,
                 const sim::SimConfig& cfg) {
    return run(m, sig, cfg).total_s;
  }

  /// Evaluate a batch of points; results are positionally aligned with
  /// `points` regardless of scheduling. Safe to call from multiple
  /// threads on one engine: cache lookups/inserts are sharded, and the
  /// worker-pool dispatch (whose job slot is single-occupancy) is
  /// serialized on pool_mu_ — concurrent callers overlap on hits and
  /// take turns pricing misses.
  std::vector<sim::TimeBreakdown> run_batch(
      std::span<const SweepPoint> points);

  /// Cross-product convenience: machine x configs x signatures, results
  /// row-major by config (result[c * sigs.size() + s]).
  std::vector<sim::TimeBreakdown> run_grid(
      const machine::MachineDescriptor& m,
      std::span<const core::KernelSignature> sigs,
      std::span<const sim::SimConfig> cfgs);

  /// RAII wall-clock accumulator: `auto scope = eng.phase("figure1");`
  /// attributes elapsed time and request volume until scope exit.
  class PhaseScope {
   public:
    PhaseScope(PhaseScope&& other) noexcept;
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    PhaseScope& operator=(PhaseScope&&) = delete;

   private:
    friend class SweepEngine;
    PhaseScope(SweepEngine* eng, std::size_t index,
               const std::string& name);
    SweepEngine* eng_;
    std::size_t index_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t requests_at_start_;
    /// Trace span covering the phase (heap so moves keep the
    /// thread-local span stack untouched).
    std::unique_ptr<obs::Span> span_;
  };

  PhaseScope phase(const std::string& name);

  EngineCounters counters() const;
  void reset_counters();
  /// Drops all memoized results and per-machine simulators. Not
  /// thread-safe against in-flight batches. Durable segments on disk
  /// are untouched (delete the store directory to really start cold).
  void clear_cache();

  // ----------------------------------------------- persistence --

  /// True when a durable store is attached.
  bool persistent() const noexcept { return store_ != nullptr; }

  /// Drains freshly-computed entries and appends them as one segment
  /// (write-temp-then-rename, retried under the store's policy).
  /// Returns true when nothing remains queued; on failure the entries
  /// stay queued in memory for the next flush. Safe to call from any
  /// thread; a no-op without a store.
  bool flush_persistent();

  /// The attached store, for tests/diagnostics (nullptr when none).
  const PersistentStore* persistent_store() const noexcept {
    return store_.get();
  }

 private:
  const sim::Simulator& simulator_for(const machine::MachineDescriptor& m,
                                      std::uint64_t machine_fp);
  sim::TimeBreakdown run_point(const SweepPoint& p);
  void finish_phase(std::size_t index, double wall_s,
                    std::uint64_t requests);
  void maybe_flush();
  void stop_flusher();

  int jobs_;
  const bool use_cache_;
  SimCache cache_;

  // Persistence (all null/zero when EngineOptions.persist is unset).
  std::unique_ptr<PersistentStore> store_;
  std::size_t flush_min_entries_ = 0;
  std::string persist_note_;
  std::atomic<std::uint64_t> undecodable_entries_{0};
  /// Guards pending_ and serializes flushes (including the final one
  /// in the destructor) against the background flush thread.
  std::mutex flush_mu_;
  std::vector<std::pair<CacheKey, sim::TimeBreakdown>> pending_;
  std::atomic<std::uint64_t> pending_count_{0};
  std::thread flush_thread_;
  std::condition_variable flush_cv_;
  std::mutex flush_cv_mu_;
  bool stop_flusher_ = false;  ///< guarded by flush_cv_mu_

  std::mutex sims_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Simulator>> sims_;

  /// Guards lazy pool creation and dispatch: ThreadPool has one job
  /// slot, so concurrent run_batch callers must not dispatch at once.
  std::mutex pool_mu_;
  std::unique_ptr<threading::ThreadPool> pool_;  ///< lazily created

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> simulations_{0};
  std::atomic<std::uint64_t> simulators_built_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> sim_ns_{0};  ///< wall ns inside Simulator::run

  mutable std::mutex phases_mu_;
  std::vector<PhaseStat> phases_;
  std::unordered_map<std::string, std::size_t> phase_index_;
};

/// The process-wide engine the convenience experiment overloads use, so
/// every bench binary and test in one process shares one cache.
SweepEngine& shared_engine();

}  // namespace sgp::engine
