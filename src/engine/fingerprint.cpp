#include "engine/fingerprint.hpp"

#include <bit>

#include "machine/serialize.hpp"

namespace sgp::engine {

void Fnv1a::bytes(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ull;  // FNV prime
  }
}

void Fnv1a::f64(double v) noexcept {
  // +0.0 and -0.0 compare equal but differ in bits; normalise so two
  // descriptors that behave identically fingerprint identically.
  if (v == 0.0) v = 0.0;
  u64(std::bit_cast<std::uint64_t>(v));
}

namespace {

void hash_cache(Fnv1a& h, const machine::CacheSpec& c) {
  h.u64(c.size_bytes);
  h.i32(c.line_bytes);
  h.i32(c.shared_by);
  h.f64(c.bw_bytes_per_cycle);
  h.f64(c.latency_cycles);
}

}  // namespace

std::uint64_t machine_fingerprint(const machine::MachineDescriptor& m) {
  Fnv1a h;
  // Content address via the user-facing serialization first...
  h.str(machine::to_ini(m));
  // ...then every field bit-exactly, covering what the INI text rounds
  // (doubles beyond 6 significant digits, sub-KiB cache sizes) or
  // compresses (non-consecutive cluster layouts).
  h.str(m.name);
  h.i32(m.num_cores);
  const auto& c = m.core;
  h.f64(c.clock_ghz);
  h.i32(c.decode_width);
  h.i32(c.issue_width);
  h.flag(c.out_of_order);
  h.i32(c.fp_pipes);
  h.flag(c.fma);
  h.i32(c.mem_ports);
  h.f64(c.scalar_eff);
  h.f64(c.stream_bw_gbs);
  h.f64(c.scalar_stream_derate);
  h.flag(c.vector.has_value());
  if (c.vector) {
    h.str(c.vector->isa);
    h.i32(c.vector->width_bits);
    h.flag(c.vector->fp32);
    h.flag(c.vector->fp64);
    h.f64(c.vector->efficiency_fp32);
    h.f64(c.vector->efficiency_fp64);
  }
  hash_cache(h, m.l1d);
  hash_cache(h, m.l2);
  hash_cache(h, m.l3);
  h.u64(m.numa.size());
  for (const auto& r : m.numa) {
    h.u64(r.cores.size());
    for (const int id : r.cores) h.i32(id);
    h.i32(r.controllers);
    h.f64(r.mem_bw_gbs);
  }
  h.u64(m.clusters.size());
  for (const auto& cl : m.clusters) {
    h.u64(cl.size());
    for (const int id : cl) h.i32(id);
  }
  h.f64(m.mem_latency_ns);
  h.f64(m.cluster_bw_gbs);
  h.f64(m.remote_numa_penalty);
  h.f64(m.fork_join_us);
  h.f64(m.barrier_us_per_thread);
  h.f64(m.numa_span_sync_factor);
  h.f64(m.oversubscribe_gamma);
  h.f64(m.oversubscribe_knee);
  h.flag(m.l3_memory_side);
  h.f64(m.memory_derating);
  h.f64(m.atomic_rtt_ns);
  return h.digest();
}

std::uint64_t signature_fingerprint(const core::KernelSignature& sig) {
  Fnv1a h;
  h.str(sig.name);
  h.i32(static_cast<int>(sig.group));
  h.f64(sig.iters_per_rep);
  h.f64(sig.reps);
  h.f64(sig.parallel_regions_per_rep);
  h.f64(sig.seq_fraction);
  h.f64(sig.mix.fadd);
  h.f64(sig.mix.fmul);
  h.f64(sig.mix.ffma);
  h.f64(sig.mix.fdiv);
  h.f64(sig.mix.fspecial);
  h.f64(sig.mix.fcmp);
  h.f64(sig.mix.iops);
  h.f64(sig.mix.loads);
  h.f64(sig.mix.stores);
  h.f64(sig.mix.branches);
  h.f64(sig.streamed_reads_per_iter);
  h.f64(sig.streamed_writes_per_iter);
  h.f64(sig.working_set_elems);
  h.i32(static_cast<int>(sig.pattern));
  for (const auto* f : {&sig.gcc, &sig.clang}) {
    h.flag(f->vectorizes);
    h.flag(f->runtime_vector_path);
    h.f64(f->efficiency);
    h.f64(f->memory_efficiency);
  }
  h.flag(sig.integer_dominated);
  h.flag(sig.atomic);
  h.flag(sig.recurrence);
  return h.digest();
}

std::uint64_t config_fingerprint(const sim::SimConfig& cfg) {
  Fnv1a h;
  h.i32(static_cast<int>(cfg.precision));
  h.i32(static_cast<int>(cfg.compiler));
  h.i32(static_cast<int>(cfg.vector_mode));
  h.i32(cfg.nthreads);
  h.i32(static_cast<int>(cfg.placement));
  return h.digest();
}

}  // namespace sgp::engine
