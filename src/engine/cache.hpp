// Thread-safe, content-addressed memoization cache for simulator
// results. Keys are fingerprint triples (see engine/fingerprint.hpp);
// values are complete TimeBreakdowns, so a hit reproduces the original
// miss exactly — including the `serving` level and `note` text.
//
// The cache is sharded: each shard holds an independent map behind its
// own mutex, so concurrent lookups of different keys rarely contend.
// Compute callbacks run *outside* the shard lock; if two threads race
// on the same missing key, both compute (the function is pure, so the
// values are identical) and the first insert wins.
//
// Persistence hooks (used by the engine's durable store, see
// engine/persist.hpp): entries remember whether they were loaded from
// disk, freshly-computed entries queue in a per-shard "fresh" list the
// flush path drains, and disk-origin hits feed the persist.* counters.
// Every hook takes the same shard locks as the lookup path, so the
// flush thread, concurrent lookups, clear() and stats() are race-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace sgp::engine {

/// One evaluation point: (machine, kernel signature, SimConfig).
struct CacheKey {
  std::uint64_t machine = 0;
  std::uint64_t signature = 0;
  std::uint64_t config = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    // The components are already FNV digests; mix with distinct odd
    // multipliers so (a,b,c) and (b,a,c) land apart.
    std::uint64_t h = k.machine * 0x9e3779b97f4a7c15ull;
    h ^= k.signature * 0xc2b2ae3d27d4eb4full;
    h ^= k.config * 0x165667b19e3779f9ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};

/// Per-instance persistence accounting (mirrored process-wide into the
/// obs registry as persist.hits / persist.misses / persist.resumed_points).
struct CachePersistStats {
  std::uint64_t hits = 0;    ///< lookups served by a disk-loaded entry
  std::uint64_t misses = 0;  ///< lookups that had to compute
  std::uint64_t resumed_points = 0;  ///< distinct disk entries reused
};

class SimCache {
 public:
  /// Returns the cached breakdown for `key`, or runs `compute`, stores
  /// the result and returns it. `compute` must be a pure function of
  /// the key's preimage.
  sim::TimeBreakdown get_or_compute(
      const CacheKey& key,
      const std::function<sim::TimeBreakdown()>& compute);

  /// Lookup without side effects on the stored state (still counted in
  /// the hit/miss statistics).
  std::optional<sim::TimeBreakdown> find(const CacheKey& key);

  /// Batched lookup for the engine's grid path: groups the keys by
  /// shard and takes each touched shard's lock exactly once (the
  /// per-point paths above lock per key). For every present key it
  /// writes the value to results[i] and sets hit[i] = 1; absent keys
  /// leave results[i] untouched and hit[i] = 0. Hit/miss (and persist)
  /// statistics are counted exactly like get_or_compute. All three
  /// spans must have the same length.
  void lookup_batch(std::span<const CacheKey> keys,
                    std::span<sim::TimeBreakdown> results,
                    std::span<std::uint8_t> hit);

  /// Batched insert of freshly-computed entries, one lock acquisition
  /// per touched shard. First insert wins (racing callers compute
  /// identical values) and only winning inserts queue for persistence,
  /// matching get_or_compute's insert half. No effect on the hit/miss
  /// statistics.
  void insert_batch(std::span<const CacheKey> keys,
                    std::span<const sim::TimeBreakdown> values);

  void clear();
  CacheStats stats() const;
  void reset_stats();

  // ------------------------------------------- persistence hooks --

  /// Turns on disk-origin accounting and fresh-entry tracking. Off by
  /// default so non-persistent engines pay nothing and emit no
  /// persist.* counters.
  void set_persist_tracking(bool on) {
    persist_tracking_.store(on, std::memory_order_relaxed);
  }

  /// Inserts an entry recovered from the durable store. No effect on
  /// hit/miss statistics; never queues into the fresh list. An entry
  /// already present (e.g. duplicated across segments) is kept as-is.
  void insert_loaded(const CacheKey& key, const sim::TimeBreakdown& value);

  /// Removes and returns every freshly-computed entry queued since the
  /// last drain, for the flush path. Safe against concurrent inserts;
  /// an entry is returned exactly once across all drains.
  std::vector<std::pair<CacheKey, sim::TimeBreakdown>> drain_fresh();

  /// Entries currently queued for the next drain.
  std::uint64_t fresh_entries() const noexcept {
    return fresh_count_.load(std::memory_order_relaxed);
  }

  CachePersistStats persist_stats() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    sim::TimeBreakdown value;
    bool from_disk = false;
    bool resume_counted = false;  ///< first disk-hit already tallied
  };

  struct Shard {
    /// mutable: stats() locks shards on a const cache.
    mutable std::mutex mu;
    std::unordered_map<CacheKey, Entry, CacheKeyHash> map;
    /// Keys inserted by compute since the last drain (persist only).
    std::vector<CacheKey> fresh;
  };

  static std::size_t shard_index(const CacheKey& key) noexcept {
    return CacheKeyHash{}(key) % kShards;
  }

  Shard& shard_of(const CacheKey& key) { return shards_[shard_index(key)]; }

  bool tracking() const noexcept {
    return persist_tracking_.load(std::memory_order_relaxed);
  }

  /// Tallies a hit on `e` under the owning shard's lock.
  void count_hit(Entry& e);

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<bool> persist_tracking_{false};
  std::atomic<std::uint64_t> fresh_count_{0};
  std::atomic<std::uint64_t> persist_hits_{0};
  std::atomic<std::uint64_t> persist_misses_{0};
  std::atomic<std::uint64_t> persist_resumed_{0};
  /// Process-wide mirrors of the per-instance statistics, aggregated
  /// over every SimCache in the obs registry ("engine.cache.*"), so a
  /// metrics snapshot carries the cache story without asking each
  /// engine. Per-instance stats() remains the A/B accounting tool.
  obs::Counter& obs_hits_ =
      obs::registry().counter("engine.cache.hits");
  obs::Counter& obs_misses_ =
      obs::registry().counter("engine.cache.misses");
  obs::Counter& obs_persist_hits_ =
      obs::registry().counter("persist.hits");
  obs::Counter& obs_persist_misses_ =
      obs::registry().counter("persist.misses");
  obs::Counter& obs_persist_resumed_ =
      obs::registry().counter("persist.resumed_points");
};

}  // namespace sgp::engine
