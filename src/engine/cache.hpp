// Thread-safe, content-addressed memoization cache for simulator
// results. Keys are fingerprint triples (see engine/fingerprint.hpp);
// values are complete TimeBreakdowns, so a hit reproduces the original
// miss exactly — including the `serving` level and `note` text.
//
// The cache is sharded: each shard holds an independent map behind its
// own mutex, so concurrent lookups of different keys rarely contend.
// Compute callbacks run *outside* the shard lock; if two threads race
// on the same missing key, both compute (the function is pure, so the
// values are identical) and the first insert wins.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace sgp::engine {

/// One evaluation point: (machine, kernel signature, SimConfig).
struct CacheKey {
  std::uint64_t machine = 0;
  std::uint64_t signature = 0;
  std::uint64_t config = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    // The components are already FNV digests; mix with distinct odd
    // multipliers so (a,b,c) and (b,a,c) land apart.
    std::uint64_t h = k.machine * 0x9e3779b97f4a7c15ull;
    h ^= k.signature * 0xc2b2ae3d27d4eb4full;
    h ^= k.config * 0x165667b19e3779f9ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};

class SimCache {
 public:
  /// Returns the cached breakdown for `key`, or runs `compute`, stores
  /// the result and returns it. `compute` must be a pure function of
  /// the key's preimage.
  sim::TimeBreakdown get_or_compute(
      const CacheKey& key,
      const std::function<sim::TimeBreakdown()>& compute);

  /// Lookup without side effects on the stored state (still counted in
  /// the hit/miss statistics).
  std::optional<sim::TimeBreakdown> find(const CacheKey& key);

  void clear();
  CacheStats stats() const;
  void reset_stats();

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    /// mutable: stats() locks shards on a const cache.
    mutable std::mutex mu;
    std::unordered_map<CacheKey, sim::TimeBreakdown, CacheKeyHash> map;
  };

  Shard& shard_of(const CacheKey& key) {
    return shards_[CacheKeyHash{}(key) % kShards];
  }

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  /// Process-wide mirrors of the per-instance statistics, aggregated
  /// over every SimCache in the obs registry ("engine.cache.*"), so a
  /// metrics snapshot carries the cache story without asking each
  /// engine. Per-instance stats() remains the A/B accounting tool.
  obs::Counter& obs_hits_ =
      obs::registry().counter("engine.cache.hits");
  obs::Counter& obs_misses_ =
      obs::registry().counter("engine.cache.misses");
};

}  // namespace sgp::engine
