// Distributed (MPI-style) performance estimation on clusters of
// modelled nodes: domain-decomposes a kernel across nodes, prices the
// per-node share with the single-node Simulator, and adds the
// communication each kernel's access pattern implies.
#pragma once

#include <string>

#include "core/signature.hpp"
#include "distributed/network.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"

namespace sgp::distributed {

/// What a kernel exchanges each rep under 1D domain decomposition.
enum class CommPattern {
  None,       ///< embarrassingly parallel (streams, init, packing)
  AllReduce,  ///< global reductions (DOT, PI_REDUCE, FIRST_MIN, ...)
  Halo1D,     ///< 1D stencils: two faces of one element row
  Halo2D,     ///< 2D stencils: two faces of ~sqrt(N) elements
  Halo3D,     ///< 3D stencils: two faces of ~N^(2/3) elements
  Transpose,  ///< all-to-all-ish (matrix chains, FW rounds)
};

constexpr std::string_view to_string(CommPattern p) noexcept {
  switch (p) {
    case CommPattern::None:      return "none";
    case CommPattern::AllReduce: return "allreduce";
    case CommPattern::Halo1D:    return "halo-1d";
    case CommPattern::Halo2D:    return "halo-2d";
    case CommPattern::Halo3D:    return "halo-3d";
    case CommPattern::Transpose: return "transpose";
  }
  return "?";
}

/// The communication a kernel's pattern implies.
CommPattern comm_pattern_for(const core::KernelSignature& sig) noexcept;

struct DistributedBreakdown {
  double compute_s = 0.0;  ///< per-node share, all reps
  double comm_s = 0.0;     ///< halo/reduction traffic, all reps
  double sync_s = 0.0;     ///< inter-node barrier, all reps
  double total_s = 0.0;
  CommPattern comm = CommPattern::None;
};

class DistributedSimulator {
 public:
  /// Validates the cluster; node config (threads/placement/compiler) is
  /// fixed per run via the SimConfig.
  explicit DistributedSimulator(ClusterDescriptor cluster);

  const ClusterDescriptor& cluster() const noexcept { return cluster_; }

  /// Strong scaling: the kernel's global problem is split over all
  /// nodes; each node runs `node_cfg` threads of its share.
  DistributedBreakdown run(const core::KernelSignature& sig,
                           const sim::SimConfig& node_cfg) const;

  double seconds(const core::KernelSignature& sig,
                 const sim::SimConfig& node_cfg) const {
    return run(sig, node_cfg).total_s;
  }

 private:
  ClusterDescriptor cluster_;
  sim::Simulator node_sim_;
};

}  // namespace sgp::distributed
