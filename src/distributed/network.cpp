#include "distributed/network.hpp"

#include <cmath>
#include <stdexcept>

namespace sgp::distributed {

double NetworkDescriptor::pt2pt_seconds(double bytes) const {
  if (bytes < 0.0) {
    throw std::invalid_argument("pt2pt_seconds: negative bytes");
  }
  return (latency_us + injection_us) * 1e-6 + bytes / (bandwidth_gbs * 1e9);
}

void NetworkDescriptor::validate() const {
  if (!std::isfinite(latency_us) || !std::isfinite(bandwidth_gbs) ||
      !std::isfinite(injection_us)) {
    throw std::invalid_argument(name + ": non-finite network parameter");
  }
  if (latency_us <= 0.0 || bandwidth_gbs <= 0.0 || injection_us < 0.0) {
    throw std::invalid_argument(name + ": non-positive network parameter");
  }
}

NetworkDescriptor gigabit_ethernet() {
  NetworkDescriptor n;
  n.name = "2x Gigabit Ethernet (onboard)";
  n.latency_us = 30.0;
  n.bandwidth_gbs = 0.22;  // 1.76 Gbit/s sustained over both ports
  n.injection_us = 6.0;
  return n;
}

NetworkDescriptor ethernet_25g() {
  NetworkDescriptor n;
  n.name = "25 GbE (PCIe Gen4 NIC)";
  n.latency_us = 4.0;
  n.bandwidth_gbs = 2.9;
  n.injection_us = 1.5;
  return n;
}

NetworkDescriptor infiniband_hdr() {
  NetworkDescriptor n;
  n.name = "InfiniBand HDR100";
  n.latency_us = 1.2;
  n.bandwidth_gbs = 11.0;
  n.injection_us = 0.4;
  return n;
}

double ClusterDescriptor::effective_slowdown() const {
  double s = straggler_factor;
  if (degraded_nodes > 0 && degraded_factor > s) s = degraded_factor;
  return s;
}

void ClusterDescriptor::validate() const {
  node.validate();
  network.validate();
  if (num_nodes < 1) {
    throw std::invalid_argument("ClusterDescriptor: num_nodes < 1");
  }
  if (degraded_nodes < 0 || degraded_nodes > num_nodes) {
    throw std::invalid_argument(
        "ClusterDescriptor: degraded_nodes must be in [0, num_nodes]");
  }
  if (!std::isfinite(degraded_factor) || degraded_factor < 1.0) {
    throw std::invalid_argument(
        "ClusterDescriptor: degraded_factor must be finite and >= 1");
  }
  if (!std::isfinite(straggler_factor) || straggler_factor < 1.0) {
    throw std::invalid_argument(
        "ClusterDescriptor: straggler_factor must be finite and >= 1");
  }
}

double allreduce_seconds(const NetworkDescriptor& net, double bytes,
                         int nodes) {
  if (nodes < 1) throw std::invalid_argument("allreduce: nodes < 1");
  if (nodes == 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nodes)));
  // Recursive doubling: log2(n) rounds, full payload per round for small
  // messages (reductions here are a handful of doubles).
  return rounds * net.pt2pt_seconds(bytes);
}

double halo_exchange_seconds(const NetworkDescriptor& net,
                             double face_bytes, int neighbors) {
  if (neighbors < 0) throw std::invalid_argument("halo: neighbors < 0");
  if (neighbors == 0) return 0.0;
  // Sends in each direction can pair up; serialised through one NIC.
  return neighbors * net.pt2pt_seconds(face_bytes);
}

double barrier_seconds(const NetworkDescriptor& net, int nodes) {
  if (nodes < 1) throw std::invalid_argument("barrier: nodes < 1");
  if (nodes == 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nodes)));
  return rounds * net.pt2pt_seconds(0.0);
}

}  // namespace sgp::distributed
