#include "distributed/dist_simulator.hpp"

#include <cmath>

namespace sgp::distributed {

using core::AccessPattern;

CommPattern comm_pattern_for(const core::KernelSignature& sig) noexcept {
  switch (sig.pattern) {
    case AccessPattern::Reduction:
      return CommPattern::AllReduce;
    case AccessPattern::Stencil1D:
      return CommPattern::Halo1D;
    case AccessPattern::Stencil2D:
      return CommPattern::Halo2D;
    case AccessPattern::Stencil3D:
      return CommPattern::Halo3D;
    case AccessPattern::BlockedMatrix:
      return CommPattern::Transpose;
    case AccessPattern::Sequential:
      // Scans/recurrences exchange chunk carries: one tiny message pair.
      return CommPattern::Halo1D;
    case AccessPattern::Streaming:
    case AccessPattern::Strided:
    case AccessPattern::Gather:
    case AccessPattern::Sort:
      return CommPattern::None;
  }
  return CommPattern::None;
}

DistributedSimulator::DistributedSimulator(ClusterDescriptor cluster)
    : cluster_(std::move(cluster)), node_sim_(cluster_.node) {
  cluster_.validate();
}

DistributedBreakdown DistributedSimulator::run(
    const core::KernelSignature& sig, const sim::SimConfig& node_cfg) const {
  const int nodes = cluster_.num_nodes;

  // Per-node share of the global problem: scale the iteration count and
  // working set. The signature is copied, not mutated.
  core::KernelSignature share = sig;
  share.iters_per_rep = sig.iters_per_rep / nodes;
  share.working_set_elems = sig.working_set_elems / nodes;

  DistributedBreakdown out;
  out.comm = comm_pattern_for(sig);

  const auto node_bd = node_sim_.run(share, node_cfg);
  // Bulk-synchronous execution: every step waits for the slowest node,
  // so degraded/straggler nodes stretch the whole compute phase.
  out.compute_s = node_bd.total_s * cluster_.effective_slowdown();

  // Per-rep communication volume.
  const double elem_bytes =
      sig.integer_dominated ? 8.0
                            : static_cast<double>(bytes_of(node_cfg.precision));
  const double node_elems = share.working_set_elems;
  double comm_per_rep = 0.0;
  if (nodes > 1) {
    const auto& net = cluster_.network;
    switch (out.comm) {
      case CommPattern::None:
        break;
      case CommPattern::AllReduce:
        comm_per_rep = allreduce_seconds(net, 8.0 * 4, nodes);  // 4 doubles
        break;
      case CommPattern::Halo1D:
        comm_per_rep = halo_exchange_seconds(net, elem_bytes * 2.0, 2);
        break;
      case CommPattern::Halo2D: {
        const double face = std::sqrt(std::max(1.0, node_elems));
        comm_per_rep = halo_exchange_seconds(net, face * elem_bytes, 2);
        break;
      }
      case CommPattern::Halo3D: {
        const double face =
            std::pow(std::max(1.0, node_elems), 2.0 / 3.0);
        comm_per_rep = halo_exchange_seconds(net, face * elem_bytes, 2);
        break;
      }
      case CommPattern::Transpose: {
        // Exchange the node's panel with every other node once per rep
        // (ring schedule: n-1 messages of share/n bytes).
        const double panel = node_elems * elem_bytes /
                             std::max(1, nodes);
        comm_per_rep = (nodes - 1) * net.pt2pt_seconds(panel);
        break;
      }
    }
    // Stencils and transposes exchange once per parallel region.
    comm_per_rep *= sig.parallel_regions_per_rep;
    out.sync_s = barrier_seconds(cluster_.network, nodes) * sig.reps;
  }
  out.comm_s = comm_per_rep * sig.reps;
  out.total_s = out.compute_s + out.comm_s + out.sync_s;
  return out;
}

}  // namespace sgp::distributed
