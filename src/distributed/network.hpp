// Network and cluster descriptors for the paper's "further work":
// distributed-memory (MPI) performance of systems built from SG2042
// nodes. The paper notes that networking performance is driven by the
// auxiliaries coupled with the CPU, so the network is a first-class
// descriptor here.
#pragma once

#include <string>

#include "machine/descriptor.hpp"

namespace sgp::distributed {

/// Hockney-model network: t(bytes) = latency + bytes / bandwidth, plus a
/// per-message host injection overhead (driver + MPI stack).
struct NetworkDescriptor {
  std::string name;
  double latency_us = 1.5;       ///< wire + switch latency, one way
  double bandwidth_gbs = 12.5;   ///< per-NIC sustained bandwidth
  double injection_us = 0.5;     ///< per-message CPU-side overhead

  /// Point-to-point time for one message, seconds.
  double pt2pt_seconds(double bytes) const;

  /// Throws std::invalid_argument on non-positive parameters.
  void validate() const;
};

/// The networks a Milk-V Pioneer class node could realistically carry.
NetworkDescriptor gigabit_ethernet();    ///< onboard 2x GbE
NetworkDescriptor ethernet_25g();        ///< PCIe Gen4 25 GbE NIC
NetworkDescriptor infiniband_hdr();      ///< HDR100 via the x16 slot

/// A cluster: identical nodes, one NIC each, full bisection assumed.
/// Partial-failure what-ifs are priced through the degradation knobs:
/// the suite runs bulk-synchronously, so the slowest node gates every
/// step and the cluster runs at the worst per-node slowdown.
struct ClusterDescriptor {
  machine::MachineDescriptor node;
  NetworkDescriptor network;
  int num_nodes = 1;

  /// Nodes running below par (thermal throttling, failed DIMM, ...).
  int degraded_nodes = 0;
  /// Slowdown multiplier (>= 1) applied to each degraded node.
  double degraded_factor = 1.0;
  /// Slowdown of the single slowest node (>= 1); models one straggler
  /// independent of systematic degradation.
  double straggler_factor = 1.0;

  /// Multiplier the bulk-synchronous step time inherits from the
  /// slowest participant: max of the straggler and (if any node is
  /// degraded) the degradation factor. 1.0 for a healthy cluster.
  double effective_slowdown() const;

  void validate() const;
};

// --- collective models (per operation, seconds) ---

/// Recursive-doubling allreduce of `bytes` across `nodes`.
double allreduce_seconds(const NetworkDescriptor& net, double bytes,
                         int nodes);

/// Nearest-neighbour halo exchange: each node sends/receives
/// `face_bytes` to/from `neighbors` neighbours (overlapping pairs).
double halo_exchange_seconds(const NetworkDescriptor& net,
                             double face_bytes, int neighbors);

/// Barrier (used once per rep when any communication happens).
double barrier_seconds(const NetworkDescriptor& net, int nodes);

}  // namespace sgp::distributed
