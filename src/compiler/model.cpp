#include "compiler/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rvv/codegen.hpp"

namespace sgp::compiler {

using core::AccessPattern;
using core::CompilerId;
using core::Precision;
using core::VectorMode;

double pattern_vector_efficiency(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::Streaming:     return 1.00;
    case AccessPattern::Strided:       return 0.60;
    case AccessPattern::Stencil1D:     return 0.90;
    case AccessPattern::Stencil2D:     return 0.85;
    case AccessPattern::Stencil3D:     return 0.78;
    case AccessPattern::Gather:        return 0.35;
    case AccessPattern::Reduction:     return 0.70;
    case AccessPattern::Sequential:    return 0.10;
    case AccessPattern::BlockedMatrix: return 0.90;
    case AccessPattern::Sort:          return 0.25;
  }
  return 0.5;
}

namespace {

/// Representative loop shape for the rvv codegen, derived from the mix.
rvv::LoopSpec loop_spec_for(const core::KernelSignature& sig,
                            Precision prec, int vector_bits) {
  rvv::LoopSpec spec;
  spec.name = "k";
  spec.sew = prec == Precision::FP32 && !sig.integer_dominated ? 32 : 64;
  spec.vector_bits = vector_bits;
  spec.loads = std::clamp(static_cast<int>(std::lround(sig.mix.loads)), 1, 4);
  spec.stores =
      std::clamp(static_cast<int>(std::lround(sig.mix.stores)), 0, 2);
  spec.fmacc = std::clamp(static_cast<int>(std::lround(sig.mix.ffma)), 0, 4);
  spec.fadd = std::clamp(static_cast<int>(std::lround(sig.mix.fadd)), 0, 4);
  spec.fmul = std::clamp(static_cast<int>(std::lround(sig.mix.fmul)), 0, 4);
  if (spec.fmacc + spec.fadd + spec.fmul == 0) spec.fadd = 1;
  spec.reduction = sig.pattern == AccessPattern::Reduction;
  return spec;
}

}  // namespace

CodegenPlan plan(const core::KernelSignature& sig, Precision prec,
                 CompilerId comp, VectorMode mode,
                 const machine::MachineDescriptor& m) {
  if (mode == VectorMode::VLA && comp == CompilerId::Gcc) {
    throw std::invalid_argument(
        "compiler::plan: GCC only generates VLS RVV assembly");
  }

  CodegenPlan out;
  if (mode == VectorMode::Scalar) {
    out.note = NoteKind::VectorisationDisabled;
    return out;
  }
  if (!m.core.vector) {
    out.note = NoteKind::NoVectorUnit;
    return out;
  }

  const auto& facts = sig.facts(comp);
  if (!facts.vectorizes) {
    out.note = NoteKind::CannotVectorise;
    return out;
  }
  if (!facts.runtime_vector_path) {
    out.note = NoteKind::RuntimeScalar;
    out.scalar_penalty = 1.02;  // versioning/dispatch overhead
    return out;
  }

  const auto& vu = *m.core.vector;
  const bool is_rvv071 = vu.isa == "RVV v0.7.1";
  const int elem_bits =
      sig.integer_dominated ? 64 : (prec == Precision::FP32 ? 32 : 64);

  // Data-type support. Integer vector arithmetic is supported by every
  // unit we model (the C920 supports INT8..INT64).
  const bool dtype_ok =
      sig.integer_dominated ||
      (prec == Precision::FP32 ? vu.fp32 : vu.fp64);
  if (!dtype_ok) {
    // The paper's key C920 finding: FP64 vector ops are not (usefully)
    // supported, so enabling vectorisation buys nothing and costs a
    // little (Figure 2's slightly negative FP64 whiskers).
    out.note = NoteKind::NoFp64Vector;
    out.scalar_penalty = 1.04;
    return out;
  }

  out.vector_path = true;
  out.lanes = static_cast<double>(vu.lanes(elem_bits));
  // The absolute lane efficiency is applied by the core model via
  // vector_flops_per_cycle; here we keep only the *relative* derating
  // (compiler quality x pattern suitability) to avoid double counting.
  out.efficiency = facts.efficiency * pattern_vector_efficiency(sig.pattern);

  // Strip overhead from the representative emitted loop.
  const auto dialect =
      is_rvv071 && comp == CompilerId::Gcc ? rvv::Dialect::V0_7_1
                                           : rvv::Dialect::V1_0;
  const auto cgmode = mode == VectorMode::VLA ? rvv::CodegenMode::VLA
                                              : rvv::CodegenMode::VLS;
  const auto cost =
      rvv::loop_cost(loop_spec_for(sig, prec, vu.width_bits), cgmode, dialect);
  out.overhead_instrs_per_strip = cost.scalar_instrs_per_strip;

  out.memory_efficiency = facts.memory_efficiency *
                          (mode == VectorMode::VLA ? 0.88 : 1.0);

  out.needs_rollback = comp == CompilerId::Clang && is_rvv071;
  out.note = NoteKind::VectorPath;
  return out;
}

std::string note_text(NoteKind kind, CompilerId comp, VectorMode mode,
                      bool rollback, std::string_view machine_name) {
  switch (kind) {
    case NoteKind::VectorisationDisabled:
      return "vectorisation disabled";
    case NoteKind::NoVectorUnit:
      return "no vector unit on " + std::string(machine_name);
    case NoteKind::CannotVectorise:
      return std::string(core::to_string(comp)) +
             " cannot auto-vectorise this kernel";
    case NoteKind::RuntimeScalar:
      return std::string(core::to_string(comp)) +
             " vectorises the kernel but the scalar path is chosen at "
             "runtime";
    case NoteKind::NoFp64Vector:
      return "vector unit does not support FP64 arithmetic; executes at "
             "scalar rate";
    case NoteKind::VectorPath: {
      std::string out = std::string(core::to_string(comp)) + " " +
                        std::string(core::to_string(mode)) + " vector path";
      if (rollback) out += " (RVV v1.0 rolled back to v0.7.1)";
      return out;
    }
  }
  return "?";
}

CapabilityCount count_capabilities(
    const std::vector<core::KernelSignature>& sigs, CompilerId comp) {
  CapabilityCount c;
  for (const auto& s : sigs) {
    const auto& f = s.facts(comp);
    if (f.vectorizes) {
      ++c.vectorized;
      if (!f.runtime_vector_path) ++c.scalar_at_runtime;
    }
  }
  return c;
}

}  // namespace sgp::compiler
