// Compiler model: decides, for (kernel, compiler, vector mode, precision,
// machine), whether the executed code path is vector or scalar and what
// it costs per strip. Encodes the paper's central toolchain facts:
//  * XuanTie GCC 8.4 emits VLS RVV v0.7.1 only; it auto-vectorises 30 of
//    the 64 RAJAPerf kernels, and 7 of those take the scalar path at
//    runtime.
//  * Clang emits RVV v1.0 (VLA or VLS), which must be rolled back to
//    v0.7.1 for the C920 (see rvv/rollback.hpp); it vectorises 59
//    kernels, 3 of which take the scalar path at runtime.
//  * The C920 vector unit does not support FP64 arithmetic, so "FP64 with
//    vectorisation on" executes at scalar speed (with small overhead).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/signature.hpp"
#include "core/types.hpp"
#include "machine/descriptor.hpp"

namespace sgp::compiler {

/// How well a vector unit sustains its ideal lane speedup on a pattern.
double pattern_vector_efficiency(core::AccessPattern p) noexcept;

/// Why the executed code path is what it is. A plan (and every
/// TimeBreakdown derived from it) carries this enum plus the few fields
/// the rendered text interpolates (compiler, mode, rollback, machine
/// name), so the hot path never allocates a string; serialization paths
/// call note_text() to reproduce the exact historical wording.
enum class NoteKind : std::uint8_t {
  VectorisationDisabled,  ///< VectorMode::Scalar requested
  NoVectorUnit,           ///< machine has no vector unit
  CannotVectorise,        ///< compiler cannot auto-vectorise the kernel
  RuntimeScalar,          ///< vectorised, but runtime picks scalar
  NoFp64Vector,           ///< vector unit lacks FP64 arithmetic
  VectorPath,             ///< vector instructions are executed
};

/// Renders the note text for a plan/breakdown byte-identically to the
/// strings the model used to build per evaluation. `machine_name` is
/// only interpolated for NoteKind::NoVectorUnit; `comp`/`mode`/
/// `rollback` only for the compiler-attributed kinds.
std::string note_text(NoteKind kind, core::CompilerId comp,
                      core::VectorMode mode, bool rollback,
                      std::string_view machine_name);

/// The executed code path and its per-strip costs.
struct CodegenPlan {
  bool vector_path = false;  ///< vector instructions are executed
  double lanes = 1.0;        ///< elements retired per vector op
  /// Sustained fraction of the ideal `lanes` speedup (compiler quality x
  /// pattern suitability).
  double efficiency = 1.0;
  /// Scalar bookkeeping instructions per strip (vsetvli, pointer bumps).
  double overhead_instrs_per_strip = 0.0;
  /// Slowdown applied when vectorisation was requested but the executed
  /// path is scalar (code bloat, runtime dispatch); 1.0 = none.
  double scalar_penalty = 1.0;
  /// Fraction of streaming bandwidth the emitted code sustains. VLA
  /// strip-mining re-issues vsetvli between loads, which costs some
  /// stream locality; kernel-specific compiler pathologies also land
  /// here (VectorizationFacts::memory_efficiency).
  double memory_efficiency = 1.0;
  /// Clang output must pass through the RVV v1.0 -> v0.7.1 rollback to
  /// run on this machine.
  bool needs_rollback = false;
  NoteKind note = NoteKind::VectorisationDisabled;
};

/// Builds the plan. Throws std::invalid_argument for impossible requests
/// (VLA with GCC — GCC only generates VLS RVV assembly).
CodegenPlan plan(const core::KernelSignature& sig, core::Precision prec,
                 core::CompilerId comp, core::VectorMode mode,
                 const machine::MachineDescriptor& m);

/// Aggregate capability counts over a set of kernels (to check the
/// paper's 30/7 and 59/3 figures).
struct CapabilityCount {
  int vectorized = 0;         ///< compiler emits a vector path
  int scalar_at_runtime = 0;  ///< of those, runtime picks scalar
};

CapabilityCount count_capabilities(
    const std::vector<core::KernelSignature>& sigs, core::CompilerId comp);

}  // namespace sgp::compiler
