// A small RISC-V Vector assembly IR covering the two dialects the paper
// deals with: RVV v1.0 (what Clang emits) and RVV v0.7.1 (what the
// XuanTie C920 executes). Programs are sequences of instructions, labels
// and directives; enough structure to implement and test the rollback
// pass of Lee et al. ("Backporting RISC-V vector assembly"), which the
// paper uses to run Clang-generated code on the SG2042.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::rvv {

enum class Dialect { V1_0, V0_7_1 };

constexpr std::string_view to_string(Dialect d) noexcept {
  return d == Dialect::V1_0 ? "RVV v1.0" : "RVV v0.7.1";
}

enum class LineKind { Instruction, Label, Directive, Comment, Blank };

struct Line {
  LineKind kind = LineKind::Blank;
  std::string mnemonic;                 ///< instructions only
  std::vector<std::string> operands;    ///< instructions only
  std::string text;                     ///< labels/directives/comments verbatim
  std::size_t source_line = 0;          ///< 1-based line in the input

  bool is_vector() const noexcept {
    return kind == LineKind::Instruction && !mnemonic.empty() &&
           mnemonic.front() == 'v';
  }
};

struct Program {
  std::vector<Line> lines;

  std::size_t instruction_count() const noexcept {
    std::size_t n = 0;
    for (const auto& l : lines)
      if (l.kind == LineKind::Instruction) ++n;
    return n;
  }
  std::size_t vector_instruction_count() const noexcept {
    std::size_t n = 0;
    for (const auto& l : lines)
      if (l.is_vector()) ++n;
    return n;
  }
};

struct ParseError : std::runtime_error {
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  std::size_t line_number;
};

/// Parses assembly text. Accepts labels ("name:"), directives (".word"),
/// comments ("#...") and "mnemonic op, op, ..." instructions.
Program parse(std::string_view text);

/// Renders a program back to assembly text.
std::string print(const Program& p);

/// True when `mnemonic` is a known instruction of dialect `d` (vector
/// instructions from our tables; any non-'v' mnemonic is assumed to be
/// valid scalar RISC-V in both dialects).
bool known_mnemonic(std::string_view mnemonic, Dialect d);

struct VerifyIssue {
  std::size_t source_line = 0;
  std::string message;
};

/// Reports every vector instruction that is not valid in dialect `d`.
std::vector<VerifyIssue> verify(const Program& p, Dialect d);

}  // namespace sgp::rvv
