// Emits representative RVV assembly for an elementwise loop nest, in
// either codegen mode (VLA as Clang emits it, VLS as XuanTie GCC emits
// it) and either dialect. Used three ways: as the input generator for
// rollback tests/tools, to derive per-strip instruction counts for the
// performance model, and by the rollback_tool example.
#pragma once

#include "rvv/ir.hpp"

namespace sgp::rvv {

/// Shape of one vectorisable inner loop.
struct LoopSpec {
  std::string name = "kernel";
  int sew = 32;           ///< element width in bits (32 or 64)
  int vector_bits = 128;  ///< target vector register width (VLS)
  int loads = 2;          ///< distinct input streams
  int stores = 1;         ///< distinct output streams
  int fmacc = 1;          ///< fused multiply-accumulate ops per element
  int fadd = 0;
  int fmul = 0;
  bool reduction = false; ///< loop reduces into a scalar
};

/// Vector-length-agnostic vs vector-length-specific code generation.
enum class CodegenMode { VLA, VLS };

constexpr std::string_view to_string(CodegenMode m) noexcept {
  return m == CodegenMode::VLA ? "VLA" : "VLS";
}

/// Emits the loop as assembly in the given dialect.
/// VLA: strip-mined with vsetvli inside the loop (Clang style).
/// VLS: vl fixed to the register width, vsetvli hoisted, plus a scalar
/// tail loop (XuanTie GCC style).
Program emit_loop(const LoopSpec& spec, CodegenMode mode, Dialect d);

/// Static cost of the emitted loop, derived by counting instructions.
struct LoopCost {
  double vector_instrs_per_strip = 0;  ///< vector instructions per strip
  double scalar_instrs_per_strip = 0;  ///< bookkeeping per strip
  double elems_per_strip = 1;          ///< elements retired per strip
  /// Total dynamic instructions per element.
  double instrs_per_elem() const noexcept {
    return (vector_instrs_per_strip + scalar_instrs_per_strip) /
           elems_per_strip;
  }
};

LoopCost loop_cost(const LoopSpec& spec, CodegenMode mode, Dialect d);

}  // namespace sgp::rvv
