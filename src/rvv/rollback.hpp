// The RVV v1.0 -> v0.7.1 "rollback" transformation. This is the enabling
// tool of the paper's Section 3.2 Clang experiments: Clang can only emit
// RVV v1.0, the C920 only executes v0.7.1, and this pass rewrites the
// assembly between the dialects (after Lee, Jamieson & Brown,
// "Backporting RISC-V vector assembly", arXiv:2304.10324).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "rvv/ir.hpp"

namespace sgp::rvv {

struct RollbackError : std::runtime_error {
  RollbackError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  std::size_t line_number;
};

struct RollbackOptions {
  /// Allow multi-instruction expansions (vsetivli -> li + vsetvli,
  /// whole-register moves -> vmv.v.v, ...). When false, any instruction
  /// with no 1:1 v0.7.1 equivalent raises RollbackError.
  bool allow_expansion = true;
  /// Scratch integer register used by expansions that need one.
  std::string scratch_reg = "t6";
};

struct RollbackResult {
  Program program;                 ///< valid RVV v0.7.1
  std::vector<std::string> notes;  ///< one entry per non-trivial rewrite
  std::size_t rewritten = 0;       ///< instructions changed
};

/// Rewrites a v1.0 program to v0.7.1. Throws RollbackError on
/// untranslatable constructs (fractional LMUL, vzext/vsext, and --
/// without allow_expansion -- anything needing expansion).
RollbackResult rollback(const Program& v1, const RollbackOptions& opts = {});

/// Convenience: parse -> rollback -> print.
std::string rollback_text(std::string_view v1_asm,
                          const RollbackOptions& opts = {});

}  // namespace sgp::rvv
