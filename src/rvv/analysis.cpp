#include "rvv/analysis.hpp"

#include <sstream>

namespace sgp::rvv {

namespace {

bool is_vsetvl(const std::string& m) {
  return m == "vsetvli" || m == "vsetivli" || m == "vsetvl";
}

bool is_vector_memory(const std::string& m) {
  // All vector loads/stores start with vl/vs and end in ".v"; this
  // covers both dialects' unit-stride, strided, indexed and
  // fault-only-first forms, and excludes arithmetic like vsll/vsub via
  // the explicit prefix list.
  if (m.size() < 4 || m.compare(m.size() - 2, 2, ".v") != 0) return false;
  for (const char* p : {"vle", "vls", "vlx", "vlu", "vlo", "vlb", "vlh",
                        "vlw", "vl1", "vse", "vss", "vsx", "vsu", "vso",
                        "vsb", "vsh", "vsw", "vs1"}) {
    if (m.rfind(p, 0) == 0) {
      // Disambiguate arithmetic false friends.
      if (m.rfind("vsext", 0) == 0) return false;
      return true;
    }
  }
  return false;
}

bool is_branch(const std::string& m) {
  return m == "beq" || m == "bne" || m == "blt" || m == "bge" ||
         m == "bltu" || m == "bgeu" || m == "beqz" || m == "bnez" ||
         m == "j" || m == "jal" || m == "jalr";
}

}  // namespace

InstructionMix analyze(const Program& p) {
  InstructionMix mix;
  for (const auto& line : p.lines) {
    if (line.kind != LineKind::Instruction) continue;
    ++mix.total;
    ++mix.by_mnemonic[line.mnemonic];
    if (is_vsetvl(line.mnemonic)) {
      ++mix.vsetvl;
      continue;
    }
    if (line.is_vector()) {
      ++mix.vector;
      if (is_vector_memory(line.mnemonic)) {
        ++mix.vector_memory;
      } else {
        ++mix.vector_arithmetic;
      }
      continue;
    }
    ++mix.scalar;
    if (is_branch(line.mnemonic)) ++mix.branches;
  }
  return mix;
}

std::string render_mix(const InstructionMix& mix) {
  std::ostringstream out;
  out << "instructions: " << mix.total << "\n";
  out << "  vector:     " << mix.vector << " ("
      << static_cast<int>(100.0 * mix.vector_ratio() + 0.5) << "%)\n";
  out << "    memory:   " << mix.vector_memory << "\n";
  out << "    arith:    " << mix.vector_arithmetic << "\n";
  out << "  vsetvl*:    " << mix.vsetvl << "\n";
  out << "  scalar:     " << mix.scalar << " (branches " << mix.branches
      << ")\n";
  out << "  arith/mem:  " << mix.arith_per_mem() << "\n";
  return out.str();
}

}  // namespace sgp::rvv
