#include "rvv/codegen.hpp"

#include <stdexcept>
#include <string>

namespace sgp::rvv {

namespace {

Line instr(std::string mnemonic, std::vector<std::string> ops) {
  Line l;
  l.kind = LineKind::Instruction;
  l.mnemonic = std::move(mnemonic);
  l.operands = std::move(ops);
  return l;
}

Line label(const std::string& name) {
  Line l;
  l.kind = LineKind::Label;
  l.text = name + ":";
  return l;
}

/// "(reg)" / "0(reg)" memory operands, built with += to sidestep a
/// GCC 12 -Wrestrict false positive on char* + std::string&&.
std::string paren(const std::string& reg) {
  std::string s = "(";
  s += reg;
  s += ")";
  return s;
}

std::string offset0(const std::string& reg) {
  std::string s = "0(";
  s += reg;
  s += ")";
  return s;
}

std::string sew_token(int sew) {
  std::string t = "e";
  t += std::to_string(sew);
  return t;
}

/// Unit-stride load/store mnemonic for the dialect. In v1.0 accesses are
/// width-typed; in v0.7.1 we use the SEW-relative forms.
std::string mem_mnemonic(bool store, int sew, Dialect d) {
  if (d == Dialect::V1_0) {
    std::string m = store ? "vse" : "vle";
    m += std::to_string(sew);
    m += ".v";
    return m;
  }
  return store ? "vse.v" : "vle.v";
}

}  // namespace

Program emit_loop(const LoopSpec& spec, CodegenMode mode, Dialect d) {
  if (spec.sew != 32 && spec.sew != 64) {
    throw std::invalid_argument("emit_loop: sew must be 32 or 64");
  }
  if (spec.loads < 1 || spec.loads > 4 || spec.stores < 0 ||
      spec.stores > 2) {
    throw std::invalid_argument("emit_loop: unsupported stream count");
  }

  Program p;
  const int vl_elems = spec.vector_bits / spec.sew;
  const int elem_bytes = spec.sew / 8;
  // Pointer registers: a1.. for loads then stores; a0 holds n.
  auto ptr_reg = [](int i) {
    std::string r = "a";
    r += std::to_string(i + 1);
    return r;
  };
  const int streams = spec.loads + spec.stores;

  p.lines.push_back(label(spec.name));
  if (spec.reduction) {
    // Zero the accumulator vector.
    std::vector<std::string> ops{"v8", "v8", "v8"};
    p.lines.push_back(instr("vxor.vv", std::move(ops)));
  }

  if (mode == CodegenMode::VLS) {
    // Hoisted configuration: vl = register width.
    p.lines.push_back(instr("li", {"t0", std::to_string(vl_elems)}));
    if (d == Dialect::V1_0) {
      p.lines.push_back(
          instr("vsetvli", {"zero", "t0", sew_token(spec.sew), "m1", "ta",
                            "ma"}));
    } else {
      p.lines.push_back(
          instr("vsetvli", {"zero", "t0", sew_token(spec.sew), "m1"}));
    }
    // Guard: fewer elements than one strip go straight to the scalar
    // tail (the strip loop is do-while shaped).
    p.lines.push_back(instr("blt", {"a0", "t0", spec.name + "_tail"}));
  }

  p.lines.push_back(label(spec.name + "_loop"));
  if (mode == CodegenMode::VLA) {
    if (d == Dialect::V1_0) {
      p.lines.push_back(instr(
          "vsetvli", {"t0", "a0", sew_token(spec.sew), "m1", "ta", "ma"}));
    } else {
      p.lines.push_back(
          instr("vsetvli", {"t0", "a0", sew_token(spec.sew), "m1"}));
    }
  }

  // Loads.
  for (int i = 0; i < spec.loads; ++i) {
    std::string dst = "v";
    dst += std::to_string(i);
    p.lines.push_back(instr(mem_mnemonic(false, spec.sew, d),
                            {std::move(dst), paren(ptr_reg(i))}));
  }
  // Arithmetic: accumulate into v4 (or v8 for reductions).
  const std::string acc = spec.reduction ? "v8" : "v4";
  for (int i = 0; i < spec.fmacc; ++i) {
    p.lines.push_back(instr("vfmacc.vv", {acc, "v0", "v1"}));
  }
  for (int i = 0; i < spec.fmul; ++i) {
    p.lines.push_back(instr("vfmul.vv", {"v4", "v0", "v1"}));
  }
  for (int i = 0; i < spec.fadd; ++i) {
    p.lines.push_back(instr("vfadd.vv", {"v4", "v4", "v0"}));
  }
  // Stores.
  for (int i = 0; i < spec.stores; ++i) {
    p.lines.push_back(
        instr(mem_mnemonic(true, spec.sew, d),
              {"v4", paren(ptr_reg(spec.loads + i))}));
  }

  // Pointer bumps and trip-count update.
  if (mode == CodegenMode::VLA) {
    // Byte count depends on the vl chosen this strip.
    p.lines.push_back(
        instr("slli", {"t1", "t0",
                       std::to_string(elem_bytes == 4 ? 2 : 3)}));
    for (int i = 0; i < streams; ++i) {
      p.lines.push_back(instr("add", {ptr_reg(i), ptr_reg(i), "t1"}));
    }
    p.lines.push_back(instr("sub", {"a0", "a0", "t0"}));
    p.lines.push_back(instr("bnez", {"a0", spec.name + "_loop"}));
  } else {
    for (int i = 0; i < streams; ++i) {
      p.lines.push_back(instr(
          "addi", {ptr_reg(i), ptr_reg(i),
                   std::to_string(vl_elems * elem_bytes)}));
    }
    std::string neg_vl = "-";
    neg_vl += std::to_string(vl_elems);
    p.lines.push_back(instr("addi", {"a0", "a0", std::move(neg_vl)}));
    p.lines.push_back(instr(
        "bge", {"a0", "t0", spec.name + "_loop"}));  // while n >= vl

    // Scalar tail loop (VLS cannot express partial strips).
    p.lines.push_back(label(spec.name + "_tail"));
    p.lines.push_back(instr("beqz", {"a0", spec.name + "_done"}));
    const std::string fl = spec.sew == 32 ? "flw" : "fld";
    const std::string fs = spec.sew == 32 ? "fsw" : "fsd";
    for (int i = 0; i < spec.loads; ++i) {
      std::string freg = "f";
      freg += std::to_string(i);
      p.lines.push_back(
          instr(fl, {std::move(freg), offset0(ptr_reg(i))}));
    }
    const std::string suffix = spec.sew == 32 ? ".s" : ".d";
    if (spec.fmacc > 0) {
      p.lines.push_back(
          instr("fmadd" + suffix, {"f4", "f0", "f1", "f4"}));
    } else if (spec.fmul > 0) {
      p.lines.push_back(instr("fmul" + suffix, {"f4", "f0", "f1"}));
    } else {
      p.lines.push_back(instr("fadd" + suffix, {"f4", "f4", "f0"}));
    }
    for (int i = 0; i < spec.stores; ++i) {
      p.lines.push_back(
          instr(fs, {"f4", offset0(ptr_reg(spec.loads + i))}));
    }
    for (int i = 0; i < streams; ++i) {
      p.lines.push_back(
          instr("addi", {ptr_reg(i), ptr_reg(i), std::to_string(elem_bytes)}));
    }
    p.lines.push_back(instr("addi", {"a0", "a0", "-1"}));
    p.lines.push_back(instr("bnez", {"a0", spec.name + "_tail"}));
  }

  p.lines.push_back(label(spec.name + "_done"));
  if (spec.reduction) {
    // Fold the accumulator: vfredsum (v0.7.1) / vfredusum (v1.0).
    const std::string red =
        d == Dialect::V1_0 ? "vfredusum.vs" : "vfredsum.vs";
    p.lines.push_back(instr(red, {"v4", "v8", "v4"}));
    p.lines.push_back(instr("vfmv.f.s", {"fa0", "v4"}));
  }
  p.lines.push_back(instr("ret", {}));
  return p;
}

LoopCost loop_cost(const LoopSpec& spec, CodegenMode mode, Dialect d) {
  const Program p = emit_loop(spec, mode, d);
  // Count only the strip-mined loop body (between the _loop label and its
  // backward branch), which dominates dynamic cost.
  LoopCost cost;
  cost.elems_per_strip = spec.vector_bits / spec.sew;
  bool in_loop = false;
  const std::string loop_label = spec.name + "_loop:";
  for (const auto& l : p.lines) {
    if (l.kind == LineKind::Label) {
      if (l.text == loop_label) in_loop = true;
      else if (in_loop) break;  // fell out of the loop body
      continue;
    }
    if (!in_loop || l.kind != LineKind::Instruction) continue;
    if (l.is_vector()) {
      cost.vector_instrs_per_strip += 1;
    } else {
      cost.scalar_instrs_per_strip += 1;
    }
    if (l.mnemonic == "bnez" || l.mnemonic == "bge") break;
  }
  (void)d;
  return cost;
}

}  // namespace sgp::rvv
