#include "rvv/interpreter.hpp"

#include <algorithm>
#include <cstring>

namespace sgp::rvv {

namespace {

bool parse_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  std::size_t used = 0;
  try {
    out = std::stoll(s, &used, 0);
  } catch (const std::exception&) {
    return false;
  }
  return used == s.size();
}

int sew_of_token(const std::string& tok) {
  if (tok == "e8") return 8;
  if (tok == "e16") return 16;
  if (tok == "e32") return 32;
  if (tok == "e64") return 64;
  return 0;
}

}  // namespace

Interpreter::Interpreter(std::size_t mem_bytes, int vlen_bits)
    : vlen_bits_(vlen_bits), mem_(mem_bytes, 0) {
  if (vlen_bits < 64 || vlen_bits % 64 != 0) {
    throw std::invalid_argument("Interpreter: VLEN must be a multiple of 64");
  }
  x_["zero"] = 0;
  x_["x0"] = 0;
}

void Interpreter::set_x(const std::string& reg, std::int64_t value) {
  if (reg != "zero" && reg != "x0") x_[reg] = value;
}

std::int64_t Interpreter::x(const std::string& reg) const {
  if (reg == "zero" || reg == "x0") return 0;
  const auto it = x_.find(reg);
  return it == x_.end() ? 0 : it->second;
}

void Interpreter::set_f(const std::string& reg, double value) {
  f_[reg] = value;
}

double Interpreter::f(const std::string& reg) const {
  const auto it = f_.find(reg);
  return it == f_.end() ? 0.0 : it->second;
}

void Interpreter::store_f32(std::uint64_t addr,
                            const std::vector<float>& data) {
  if (addr + data.size() * 4 > mem_.size()) {
    throw std::out_of_range("store_f32: out of memory range");
  }
  std::memcpy(mem_.data() + addr, data.data(), data.size() * 4);
}

void Interpreter::store_f64(std::uint64_t addr,
                            const std::vector<double>& data) {
  if (addr + data.size() * 8 > mem_.size()) {
    throw std::out_of_range("store_f64: out of memory range");
  }
  std::memcpy(mem_.data() + addr, data.data(), data.size() * 8);
}

std::vector<float> Interpreter::load_f32(std::uint64_t addr,
                                         std::size_t count) const {
  if (addr + count * 4 > mem_.size()) {
    throw std::out_of_range("load_f32: out of memory range");
  }
  std::vector<float> out(count);
  std::memcpy(out.data(), mem_.data() + addr, count * 4);
  return out;
}

std::vector<double> Interpreter::load_f64(std::uint64_t addr,
                                          std::size_t count) const {
  if (addr + count * 8 > mem_.size()) {
    throw std::out_of_range("load_f64: out of memory range");
  }
  std::vector<double> out(count);
  std::memcpy(out.data(), mem_.data() + addr, count * 8);
  return out;
}

double Interpreter::vreg_lane(const std::string& reg, int lane) const {
  const auto it = v_.find(reg);
  if (it == v_.end()) return 0.0;
  const auto& bytes = it->second;
  if (sew_ == 32) {
    float v = 0;
    std::memcpy(&v, bytes.data() + lane * 4, 4);
    return v;
  }
  double v = 0;
  std::memcpy(&v, bytes.data() + lane * 8, 8);
  return v;
}

void Interpreter::set_vreg_lane(const std::string& reg, int lane,
                                double value) {
  auto& bytes = v_[reg];
  if (bytes.empty()) {
    bytes.assign(static_cast<std::size_t>(vlen_bits_ / 8), 0);
  }
  if (sew_ == 32) {
    const float v = static_cast<float>(value);
    std::memcpy(bytes.data() + lane * 4, &v, 4);
  } else {
    std::memcpy(bytes.data() + lane * 8, &value, 8);
  }
}

std::uint64_t Interpreter::mem_operand_addr(const std::string& operand,
                                            std::size_t line) const {
  // Forms: "(a1)" and "<imm>(a1)".
  const auto open = operand.find('(');
  const auto close = operand.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw ExecError(line, "bad memory operand '" + operand + "'");
  }
  std::int64_t offset = 0;
  if (open > 0 && !parse_int(operand.substr(0, open), offset)) {
    throw ExecError(line, "bad memory offset in '" + operand + "'");
  }
  const std::string reg = operand.substr(open + 1, close - open - 1);
  return static_cast<std::uint64_t>(x(reg) + offset);
}

std::int64_t Interpreter::value_of(const std::string& operand,
                                   std::size_t line) const {
  std::int64_t imm = 0;
  if (parse_int(operand, imm)) return imm;
  if (operand.empty()) throw ExecError(line, "empty operand");
  return x(operand);
}

Interpreter::RunResult Interpreter::run(const Program& program,
                                        std::size_t max_steps) {
  // Resolve labels.
  std::map<std::string, std::size_t> labels;
  for (std::size_t i = 0; i < program.lines.size(); ++i) {
    const auto& l = program.lines[i];
    if (l.kind == LineKind::Label) {
      labels[l.text.substr(0, l.text.size() - 1)] = i;
    }
  }
  auto jump_target = [&](const std::string& name,
                         std::size_t line) -> std::size_t {
    const auto it = labels.find(name);
    if (it == labels.end()) {
      throw ExecError(line, "unknown label '" + name + "'");
    }
    return it->second;
  };

  RunResult result;
  std::size_t pc = 0;
  while (pc < program.lines.size()) {
    if (result.instructions_executed >= max_steps) {
      throw ExecError(program.lines[pc].source_line,
                      "instruction limit exceeded");
    }
    const auto& l = program.lines[pc];
    if (l.kind != LineKind::Instruction) {
      ++pc;
      continue;
    }
    ++result.instructions_executed;
    const auto& m = l.mnemonic;
    const auto& ops = l.operands;
    const std::size_t line = l.source_line;
    auto need = [&](std::size_t n) {
      if (ops.size() < n) {
        throw ExecError(line, m + ": expected " + std::to_string(n) +
                                  " operands");
      }
    };

    // --- control flow ---
    if (m == "ret") break;
    if (m == "bnez") {
      need(2);
      pc = x(ops[0]) != 0 ? jump_target(ops[1], line) : pc + 1;
      continue;
    }
    if (m == "beqz") {
      need(2);
      pc = x(ops[0]) == 0 ? jump_target(ops[1], line) : pc + 1;
      continue;
    }
    if (m == "bge") {
      need(3);
      pc = x(ops[0]) >= value_of(ops[1], line) ? jump_target(ops[2], line)
                                               : pc + 1;
      continue;
    }
    if (m == "blt") {
      need(3);
      pc = x(ops[0]) < value_of(ops[1], line) ? jump_target(ops[2], line)
                                              : pc + 1;
      continue;
    }

    // --- scalar integer ---
    if (m == "li") {
      need(2);
      set_x(ops[0], value_of(ops[1], line));
    } else if (m == "add") {
      need(3);
      set_x(ops[0], x(ops[1]) + value_of(ops[2], line));
    } else if (m == "addi") {
      need(3);
      set_x(ops[0], x(ops[1]) + value_of(ops[2], line));
    } else if (m == "sub") {
      need(3);
      set_x(ops[0], x(ops[1]) - x(ops[2]));
    } else if (m == "slli") {
      need(3);
      set_x(ops[0], x(ops[1]) << value_of(ops[2], line));

      // --- scalar float ---
    } else if (m == "flw") {
      need(2);
      const auto addr = mem_operand_addr(ops[1], line);
      set_f(ops[0], static_cast<double>(load_f32(addr, 1)[0]));
    } else if (m == "fld") {
      need(2);
      set_f(ops[0], load_f64(mem_operand_addr(ops[1], line), 1)[0]);
    } else if (m == "fsw") {
      need(2);
      store_f32(mem_operand_addr(ops[1], line),
                {static_cast<float>(f(ops[0]))});
    } else if (m == "fsd") {
      need(2);
      store_f64(mem_operand_addr(ops[1], line), {f(ops[0])});
    } else if (m == "fmadd.s" || m == "fmadd.d") {
      need(4);
      set_f(ops[0], f(ops[1]) * f(ops[2]) + f(ops[3]));
    } else if (m == "fmul.s" || m == "fmul.d") {
      need(3);
      set_f(ops[0], f(ops[1]) * f(ops[2]));
    } else if (m == "fadd.s" || m == "fadd.d") {
      need(3);
      set_f(ops[0], f(ops[1]) + f(ops[2]));

      // --- vector configuration ---
    } else if (m == "vsetvli") {
      need(3);
      ++result.strips;
      for (std::size_t i = 2; i < ops.size(); ++i) {
        if (const int s = sew_of_token(ops[i])) sew_ = s;
      }
      const int vlmax = vlen_bits_ / sew_;
      const std::int64_t avl = x(ops[1]);
      vl_ = static_cast<int>(std::min<std::int64_t>(avl, vlmax));
      set_x(ops[0], vl_);

      // --- vector memory ---
    } else if (m == "vle.v" || m == "vle32.v" || m == "vle64.v") {
      need(2);
      if ((m == "vle32.v" && sew_ != 32) || (m == "vle64.v" && sew_ != 64)) {
        throw ExecError(line, m + " under SEW=" + std::to_string(sew_));
      }
      const auto addr = mem_operand_addr(ops[1], line);
      for (int lane = 0; lane < vl_; ++lane) {
        const double v =
            sew_ == 32
                ? static_cast<double>(load_f32(addr + lane * 4ull, 1)[0])
                : load_f64(addr + lane * 8ull, 1)[0];
        set_vreg_lane(ops[0], lane, v);
      }
    } else if (m == "vse.v" || m == "vse32.v" || m == "vse64.v") {
      need(2);
      const auto addr = mem_operand_addr(ops[1], line);
      for (int lane = 0; lane < vl_; ++lane) {
        const double v = vreg_lane(ops[0], lane);
        if (sew_ == 32) {
          store_f32(addr + lane * 4ull, {static_cast<float>(v)});
        } else {
          store_f64(addr + lane * 8ull, {v});
        }
      }

      // --- vector arithmetic ---
    } else if (m == "vfmacc.vv") {
      need(3);
      for (int lane = 0; lane < vl_; ++lane) {
        set_vreg_lane(ops[0], lane,
                      vreg_lane(ops[0], lane) +
                          vreg_lane(ops[1], lane) * vreg_lane(ops[2], lane));
      }
    } else if (m == "vfmul.vv") {
      need(3);
      for (int lane = 0; lane < vl_; ++lane) {
        set_vreg_lane(ops[0], lane,
                      vreg_lane(ops[1], lane) * vreg_lane(ops[2], lane));
      }
    } else if (m == "vfadd.vv") {
      need(3);
      for (int lane = 0; lane < vl_; ++lane) {
        set_vreg_lane(ops[0], lane,
                      vreg_lane(ops[1], lane) + vreg_lane(ops[2], lane));
      }
    } else if (m == "vxor.vv") {
      need(3);
      // Used only as "zero the register" (vxor v, v, v) by the codegen.
      if (ops[0] == ops[1] && ops[1] == ops[2]) {
        const int lanes = vlen_bits_ / sew_;
        for (int lane = 0; lane < lanes; ++lane) {
          set_vreg_lane(ops[0], lane, 0.0);
        }
      } else {
        throw ExecError(line, "general vxor.vv not supported");
      }
    } else if (m == "vmv.v.v") {
      need(2);
      for (int lane = 0; lane < vl_; ++lane) {
        set_vreg_lane(ops[0], lane, vreg_lane(ops[1], lane));
      }

      // --- reductions / extracts ---
    } else if (m == "vfredusum.vs" || m == "vfredsum.vs" ||
               m == "vfredosum.vs") {
      need(3);
      // vd[0] = sum(vs2[*]) + vs1[0]; we sum over VLMAX lanes because
      // the accumulator was built over full strips.
      const int lanes = vlen_bits_ / sew_;
      double sum = vreg_lane(ops[2], 0);
      for (int lane = 0; lane < lanes; ++lane) {
        sum += vreg_lane(ops[1], lane);
      }
      set_vreg_lane(ops[0], 0, sum);
    } else if (m == "vfmv.f.s") {
      need(2);
      set_f(ops[0], vreg_lane(ops[1], 0));
    } else {
      throw ExecError(line, "unsupported instruction '" + m + "'");
    }
    ++pc;
  }
  return result;
}

}  // namespace sgp::rvv
