#include "rvv/ir.hpp"

#include <algorithm>
#include <set>

namespace sgp::rvv {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Vector mnemonics shared by both dialects (arithmetic, moves, masks and
/// reductions that did not change name between v0.7.1 and v1.0).
const std::set<std::string, std::less<>>& common_vector_mnemonics() {
  static const std::set<std::string, std::less<>> s{
      // integer arithmetic
      "vadd.vv", "vadd.vx", "vadd.vi", "vsub.vv", "vsub.vx", "vrsub.vx",
      "vmul.vv", "vmul.vx", "vmulh.vv", "vdiv.vv", "vrem.vv",
      "vand.vv", "vand.vx", "vand.vi", "vor.vv", "vor.vx", "vor.vi",
      "vxor.vv", "vxor.vx", "vxor.vi", "vsll.vv", "vsll.vx", "vsll.vi",
      "vsrl.vv", "vsrl.vx", "vsrl.vi", "vsra.vv", "vsra.vx", "vsra.vi",
      "vmin.vv", "vmin.vx", "vmax.vv", "vmax.vx", "vminu.vv", "vmaxu.vv",
      "vmacc.vv", "vmacc.vx", "vnmsac.vv", "vmadd.vv", "vnmsub.vv",
      // fp arithmetic
      "vfadd.vv", "vfadd.vf", "vfsub.vv", "vfsub.vf", "vfrsub.vf",
      "vfmul.vv", "vfmul.vf", "vfdiv.vv", "vfdiv.vf", "vfrdiv.vf",
      "vfsqrt.v", "vfmin.vv", "vfmin.vf", "vfmax.vv", "vfmax.vf",
      "vfmacc.vv", "vfmacc.vf", "vfnmacc.vv", "vfnmacc.vf",
      "vfmsac.vv", "vfmsac.vf", "vfnmsac.vv", "vfnmsac.vf",
      "vfmadd.vv", "vfmadd.vf", "vfmsub.vv", "vfmsub.vf",
      "vfneg.v", "vfabs.v", "vfsgnj.vv", "vfsgnjn.vv", "vfsgnjx.vv",
      // compares
      "vmseq.vv", "vmsne.vv", "vmslt.vv", "vmsle.vv", "vmsgt.vx",
      "vmfeq.vv", "vmfne.vv", "vmflt.vv", "vmfle.vv", "vmfgt.vf",
      // moves / splats
      "vmv.v.v", "vmv.v.x", "vmv.v.i", "vfmv.v.f", "vmv.s.x", "vfmv.s.f",
      "vfmv.f.s",
      // slides / permutation
      "vslideup.vx", "vslideup.vi", "vslidedown.vx", "vslidedown.vi",
      "vslide1up.vx", "vslide1down.vx", "vrgather.vv", "vrgather.vx",
      "vcompress.vm",
      // mask ops (unchanged names)
      "vmand.mm", "vmor.mm", "vmxor.mm", "vmnand.mm", "vmnor.mm",
      "vmxnor.mm", "vfirst.m", "vid.v", "viota.m", "vmsbf.m", "vmsif.m",
      "vmsof.m",
      // reductions (unchanged)
      "vredsum.vs", "vredmax.vs", "vredmin.vs", "vredand.vs", "vredor.vs",
      "vredxor.vs", "vfredosum.vs", "vfredmax.vs", "vfredmin.vs",
      // widening fp
      "vfwadd.vv", "vfwmul.vv", "vfwmacc.vv", "vfwcvt.f.f.v",
      "vfncvt.f.f.w",
      // int<->fp conversions
      "vfcvt.f.x.v", "vfcvt.x.f.v", "vfcvt.rtz.x.f.v",
      "vmerge.vvm", "vfmerge.vfm", "vadc.vvm",
  };
  return s;
}

/// Mnemonics that exist only in RVV v1.0.
const std::set<std::string, std::less<>>& v1_only_mnemonics() {
  static const std::set<std::string, std::less<>> s{
      "vsetivli",
      // typed unit-stride / strided / indexed loads & stores
      "vle8.v", "vle16.v", "vle32.v", "vle64.v",
      "vse8.v", "vse16.v", "vse32.v", "vse64.v",
      "vlse8.v", "vlse16.v", "vlse32.v", "vlse64.v",
      "vsse8.v", "vsse16.v", "vsse32.v", "vsse64.v",
      "vluxei8.v", "vluxei16.v", "vluxei32.v", "vluxei64.v",
      "vloxei8.v", "vloxei16.v", "vloxei32.v", "vloxei64.v",
      "vsuxei8.v", "vsuxei16.v", "vsuxei32.v", "vsuxei64.v",
      "vsoxei8.v", "vsoxei16.v", "vsoxei32.v", "vsoxei64.v",
      // fault-only-first
      "vle8ff.v", "vle16ff.v", "vle32ff.v", "vle64ff.v",
      // whole-register ops
      "vl1r.v", "vl2r.v", "vl4r.v", "vl8r.v", "vl1re32.v", "vl1re64.v",
      "vs1r.v", "vs2r.v", "vs4r.v", "vs8r.v",
      "vmv1r.v", "vmv2r.v", "vmv4r.v", "vmv8r.v",
      // renamed in 1.0
      "vcpop.m", "vmandn.mm", "vmorn.mm", "vmnot.m", "vfredusum.vs",
      "vmv.x.s",
      // new in 1.0
      "vzext.vf2", "vzext.vf4", "vzext.vf8",
      "vsext.vf2", "vsext.vf4", "vsext.vf8",
      "vfslide1up.vf", "vfslide1down.vf",
  };
  return s;
}

/// Mnemonics that exist only in RVV v0.7.1.
const std::set<std::string, std::less<>>& v071_only_mnemonics() {
  static const std::set<std::string, std::less<>> s{
      // width-typed loads/stores (b/h/w signed, bu/hu/wu unsigned,
      // e = SEW-width)
      "vlb.v", "vlh.v", "vlw.v", "vlbu.v", "vlhu.v", "vlwu.v", "vle.v",
      "vsb.v", "vsh.v", "vsw.v", "vse.v",
      "vlsb.v", "vlsh.v", "vlsw.v", "vlsbu.v", "vlshu.v", "vlswu.v",
      "vlse.v", "vssb.v", "vssh.v", "vssw.v", "vsse.v",
      "vlxb.v", "vlxh.v", "vlxw.v", "vlxbu.v", "vlxhu.v", "vlxwu.v",
      "vlxe.v", "vsxb.v", "vsxh.v", "vsxw.v", "vsxe.v",
      // fault-only-first
      "vlbff.v", "vlhff.v", "vlwff.v", "vleff.v",
      // renamed by 1.0
      "vpopc.m", "vmandnot.mm", "vmornot.mm", "vfredsum.vs",
      "vext.x.v",
  };
  return s;
}

}  // namespace

Program parse(std::string_view text) {
  Program prog;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    Line line;
    line.source_line = line_no;

    // Split off trailing comment.
    std::string comment;
    if (const auto h = raw.find('#'); h != std::string_view::npos) {
      comment = std::string(raw.substr(h));
      raw = raw.substr(0, h);
    }
    const std::string_view body = trim(raw);

    if (body.empty()) {
      if (!comment.empty()) {
        line.kind = LineKind::Comment;
        line.text = comment;
      } else {
        line.kind = LineKind::Blank;
      }
      prog.lines.push_back(std::move(line));
      continue;
    }
    if (body.back() == ':') {
      if (body.size() == 1) throw ParseError(line_no, "empty label");
      line.kind = LineKind::Label;
      line.text = std::string(body);
      prog.lines.push_back(std::move(line));
      continue;
    }
    if (body.front() == '.') {
      line.kind = LineKind::Directive;
      line.text = std::string(body);
      prog.lines.push_back(std::move(line));
      continue;
    }

    // Instruction: mnemonic then comma-separated operands.
    line.kind = LineKind::Instruction;
    std::size_t sp = body.find_first_of(" \t");
    line.mnemonic = std::string(body.substr(0, sp));
    std::transform(line.mnemonic.begin(), line.mnemonic.end(),
                   line.mnemonic.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (sp != std::string_view::npos) {
      std::string_view rest = trim(body.substr(sp));
      while (!rest.empty()) {
        std::size_t comma = rest.find(',');
        std::string_view op = trim(rest.substr(0, comma));
        if (op.empty()) throw ParseError(line_no, "empty operand");
        line.operands.emplace_back(op);
        if (comma == std::string_view::npos) break;
        rest = trim(rest.substr(comma + 1));
        if (rest.empty()) throw ParseError(line_no, "trailing comma");
      }
    }
    if (!comment.empty()) line.text = comment;
    prog.lines.push_back(std::move(line));
  }
  // The loop emits one spurious blank for the final newline; drop it.
  if (!prog.lines.empty() && prog.lines.back().kind == LineKind::Blank &&
      !text.empty() && text.back() == '\n') {
    prog.lines.pop_back();
  }
  return prog;
}

std::string print(const Program& p) {
  std::string out;
  for (const auto& l : p.lines) {
    switch (l.kind) {
      case LineKind::Blank:
        break;
      case LineKind::Comment:
      case LineKind::Label:
      case LineKind::Directive:
        out += l.text;
        break;
      case LineKind::Instruction: {
        out += "    ";
        out += l.mnemonic;
        for (std::size_t i = 0; i < l.operands.size(); ++i) {
          out += i == 0 ? " " : ", ";
          out += l.operands[i];
        }
        if (!l.text.empty()) {
          out += "  ";
          out += l.text;
        }
        break;
      }
    }
    out += '\n';
  }
  return out;
}

bool known_mnemonic(std::string_view mnemonic, Dialect d) {
  if (mnemonic.empty()) return false;
  if (mnemonic.front() != 'v') return true;  // scalar RISC-V: assume valid
  if (mnemonic == "vsetvli" || mnemonic == "vsetvl") return true;
  if (common_vector_mnemonics().count(mnemonic) > 0) return true;
  if (d == Dialect::V1_0) return v1_only_mnemonics().count(mnemonic) > 0;
  return v071_only_mnemonics().count(mnemonic) > 0;
}

std::vector<VerifyIssue> verify(const Program& p, Dialect d) {
  std::vector<VerifyIssue> issues;
  for (const auto& l : p.lines) {
    if (l.kind != LineKind::Instruction) continue;
    if (!known_mnemonic(l.mnemonic, d)) {
      issues.push_back(
          VerifyIssue{l.source_line, l.mnemonic + " is not valid in " +
                                         std::string(to_string(d))});
      continue;
    }
    // vsetvli tail/mask policy flags and fractional LMUL are 1.0-only.
    if (l.mnemonic == "vsetvli" && d == Dialect::V0_7_1) {
      for (const auto& op : l.operands) {
        if (op == "ta" || op == "tu" || op == "ma" || op == "mu") {
          issues.push_back(VerifyIssue{
              l.source_line, "vsetvli policy flag '" + op +
                                 "' is not valid in RVV v0.7.1"});
        }
        if (op.size() >= 2 && op[0] == 'm' && op[1] == 'f') {
          issues.push_back(VerifyIssue{
              l.source_line, "fractional LMUL '" + op +
                                 "' is not valid in RVV v0.7.1"});
        }
      }
    }
  }
  return issues;
}

}  // namespace sgp::rvv
