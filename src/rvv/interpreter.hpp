// A functional interpreter for the RVV IR: executes programs (both
// dialects) against real registers and a flat memory, so the rollback
// pass can be validated *semantically* — the v1.0 input and its v0.7.1
// output must compute identical results, and VLA code must produce the
// same results at any VLEN.
//
// Coverage: the scalar and vector instructions that `emit_loop` and
// `rollback` produce (loads/stores, FP arithmetic, reductions, vsetvli,
// branches, pointer arithmetic). Unknown instructions raise ExecError.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "rvv/ir.hpp"

namespace sgp::rvv {

struct ExecError : std::runtime_error {
  ExecError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_number(line) {}
  std::size_t line_number;
};

class Interpreter {
 public:
  /// `mem_bytes` of zeroed memory; VLEN in bits (vector register width).
  explicit Interpreter(std::size_t mem_bytes, int vlen_bits = 128);

  // --- state access (for test setup/inspection) ---
  void set_x(const std::string& reg, std::int64_t value);
  std::int64_t x(const std::string& reg) const;
  void set_f(const std::string& reg, double value);
  double f(const std::string& reg) const;

  /// Writes an FP32/FP64 array into memory at `addr`.
  void store_f32(std::uint64_t addr, const std::vector<float>& data);
  void store_f64(std::uint64_t addr, const std::vector<double>& data);
  std::vector<float> load_f32(std::uint64_t addr, std::size_t count) const;
  std::vector<double> load_f64(std::uint64_t addr,
                               std::size_t count) const;

  int vlen_bits() const noexcept { return vlen_bits_; }
  int vl() const noexcept { return vl_; }
  int sew() const noexcept { return sew_; }

  struct RunResult {
    std::size_t instructions_executed = 0;
    std::size_t strips = 0;  ///< vsetvli executions
  };

  /// Executes from the first line until `ret` (or the program's end).
  /// Throws ExecError on unknown instructions, bad memory accesses or
  /// when `max_steps` is exceeded (runaway loop guard).
  RunResult run(const Program& program, std::size_t max_steps = 2'000'000);

 private:
  double vreg_lane(const std::string& reg, int lane) const;
  void set_vreg_lane(const std::string& reg, int lane, double value);
  std::uint64_t mem_operand_addr(const std::string& operand,
                                 std::size_t line) const;
  std::int64_t value_of(const std::string& operand,
                        std::size_t line) const;

  int vlen_bits_;
  int vl_ = 0;
  int sew_ = 32;
  std::map<std::string, std::int64_t> x_;
  std::map<std::string, double> f_;
  std::map<std::string, std::vector<std::uint8_t>> v_;
  std::vector<std::uint8_t> mem_;
};

}  // namespace sgp::rvv
