// Static analysis over parsed RVV assembly: instruction-mix histograms
// and derived metrics (vector ratio, memory/arithmetic balance). Used by
// the rollback tool's --stats mode and by the vectorisation tooling.
#pragma once

#include <map>
#include <string>

#include "rvv/ir.hpp"

namespace sgp::rvv {

struct InstructionMix {
  std::map<std::string, std::size_t> by_mnemonic;
  std::size_t total = 0;
  std::size_t vector = 0;
  std::size_t vector_memory = 0;      ///< vector loads/stores
  std::size_t vector_arithmetic = 0;  ///< vector ALU/FP ops
  std::size_t vsetvl = 0;             ///< vsetvli/vsetivli/vsetvl
  std::size_t scalar = 0;
  std::size_t branches = 0;

  /// Fraction of instructions that are vector ops (0 when empty).
  double vector_ratio() const {
    return total == 0 ? 0.0 : static_cast<double>(vector) / total;
  }
  /// Vector arithmetic per vector memory op (0 when no memory ops).
  double arith_per_mem() const {
    return vector_memory == 0
               ? 0.0
               : static_cast<double>(vector_arithmetic) / vector_memory;
  }
};

/// Computes the mix of a whole program (labels/directives ignored).
InstructionMix analyze(const Program& p);

/// Renders the mix as a short human-readable report.
std::string render_mix(const InstructionMix& mix);

}  // namespace sgp::rvv
