#include "rvv/rollback.hpp"

#include <map>
#include <optional>

namespace sgp::rvv {

namespace {

/// vtype state tracked while walking the program, updated at each
/// vsetvli/vsetivli. SEW in bits; 0 = unknown.
struct VtypeState {
  int sew = 0;
  std::string lmul = "m1";
};

std::optional<int> parse_sew(const std::string& op) {
  if (op.size() >= 2 && op[0] == 'e') {
    if (op == "e8") return 8;
    if (op == "e16") return 16;
    if (op == "e32") return 32;
    if (op == "e64") return 64;
  }
  return std::nullopt;
}

bool is_lmul(const std::string& op) {
  return op == "m1" || op == "m2" || op == "m4" || op == "m8" ||
         op == "mf2" || op == "mf4" || op == "mf8";
}

bool is_policy_flag(const std::string& op) {
  return op == "ta" || op == "tu" || op == "ma" || op == "mu";
}

/// Memory-op classification for the typed v1.0 loads/stores.
struct MemOp {
  bool is_store = false;
  enum class Addr { Unit, Strided, Indexed } addr = Addr::Unit;
  int width = 0;       // element width in bits
  bool fault_first = false;
};

std::optional<MemOp> classify_mem(const std::string& m) {
  // vle{w}.v vse{w}.v vlse{w}.v vsse{w}.v vluxei{w}.v vloxei{w}.v
  // vsuxei{w}.v vsoxei{w}.v vle{w}ff.v
  auto ends_with = [](const std::string& s, const char* suf) {
    const std::string t(suf);
    return s.size() >= t.size() && s.compare(s.size() - t.size(), t.size(), t) == 0;
  };
  auto width_from = [](const std::string& s, std::size_t at) -> int {
    if (s.compare(at, 2, "64") == 0) return 64;
    if (s.compare(at, 2, "32") == 0) return 32;
    if (s.compare(at, 2, "16") == 0) return 16;
    if (s.compare(at, 1, "8") == 0) return 8;
    return 0;
  };
  MemOp op;
  if (!ends_with(m, ".v")) return std::nullopt;
  if (m.rfind("vle", 0) == 0) {
    op.width = width_from(m, 3);
    if (op.width == 0) return std::nullopt;
    op.fault_first = ends_with(m, "ff.v");
    return op;
  }
  if (m.rfind("vse", 0) == 0 && m != "vsetvli" && m != "vsext.vf2") {
    op.is_store = true;
    op.width = width_from(m, 3);
    if (op.width == 0) return std::nullopt;
    return op;
  }
  if (m.rfind("vlse", 0) == 0) {
    op.addr = MemOp::Addr::Strided;
    op.width = width_from(m, 4);
    if (op.width == 0) return std::nullopt;
    return op;
  }
  if (m.rfind("vsse", 0) == 0) {
    op.is_store = true;
    op.addr = MemOp::Addr::Strided;
    op.width = width_from(m, 4);
    if (op.width == 0) return std::nullopt;
    return op;
  }
  if (m.rfind("vlux", 0) == 0 || m.rfind("vlox", 0) == 0) {
    op.addr = MemOp::Addr::Indexed;
    op.width = width_from(m, 6);
    if (op.width == 0) return std::nullopt;
    return op;
  }
  if (m.rfind("vsux", 0) == 0 || m.rfind("vsox", 0) == 0) {
    op.is_store = true;
    op.addr = MemOp::Addr::Indexed;
    op.width = width_from(m, 6);
    if (op.width == 0) return std::nullopt;
    return op;
  }
  return std::nullopt;
}

/// v0.7.1 mnemonic for a memory op given the current SEW.
std::string legacy_mem_mnemonic(const MemOp& op, int sew, std::size_t line) {
  if (op.fault_first) {
    if (op.width == sew) return "vleff.v";
    switch (op.width) {
      case 8:  return "vlbff.v";
      case 16: return "vlhff.v";
      case 32: return "vlwff.v";
      default: break;
    }
    throw RollbackError(line, "fault-only-first load width unsupported");
  }
  if (op.width == sew || sew == 0) {
    // SEW-width access: the "e" forms.
    switch (op.addr) {
      case MemOp::Addr::Unit:    return op.is_store ? "vse.v" : "vle.v";
      case MemOp::Addr::Strided: return op.is_store ? "vsse.v" : "vlse.v";
      case MemOp::Addr::Indexed: return op.is_store ? "vsxe.v" : "vlxe.v";
    }
  }
  if (op.width > sew) {
    throw RollbackError(line,
                        "memory element width exceeds SEW; cannot roll back");
  }
  // Narrower-than-SEW access: sign-extending width-typed forms.
  const char* w = op.width == 8 ? "b" : op.width == 16 ? "h" : "w";
  std::string m;
  switch (op.addr) {
    case MemOp::Addr::Unit:    m = op.is_store ? "vs" : "vl"; break;
    case MemOp::Addr::Strided: m = op.is_store ? "vss" : "vls"; break;
    case MemOp::Addr::Indexed: m = op.is_store ? "vsx" : "vlx"; break;
  }
  m += w;
  m += ".v";
  return m;
}

/// Renames with identical operand forms.
const std::map<std::string, std::string>& simple_renames() {
  static const std::map<std::string, std::string> r{
      {"vcpop.m", "vpopc.m"},
      {"vmandn.mm", "vmandnot.mm"},
      {"vmorn.mm", "vmornot.mm"},
      {"vfredusum.vs", "vfredsum.vs"},
  };
  return r;
}

}  // namespace

RollbackResult rollback(const Program& v1, const RollbackOptions& opts) {
  RollbackResult result;
  VtypeState vtype;

  auto note = [&result](std::size_t line, const std::string& msg) {
    result.notes.push_back("line " + std::to_string(line) + ": " + msg);
  };

  for (const auto& line : v1.lines) {
    if (line.kind != LineKind::Instruction) {
      result.program.lines.push_back(line);
      continue;
    }
    const std::string& m = line.mnemonic;
    Line out = line;

    // --- vsetvli / vsetivli -------------------------------------------
    if (m == "vsetvli" || m == "vsetivli") {
      std::vector<std::string> ops;
      for (const auto& op : line.operands) {
        if (is_policy_flag(op)) continue;  // v1.0-only; drop
        if (is_lmul(op) && op[1] == 'f') {
          throw RollbackError(line.source_line,
                              "fractional LMUL '" + op +
                                  "' has no RVV v0.7.1 equivalent");
        }
        if (auto sew = parse_sew(op)) vtype.sew = *sew;
        if (is_lmul(op)) vtype.lmul = op;
        ops.push_back(op);
      }
      if (m == "vsetivli") {
        // vsetivli rd, uimm, vtype...  ->  li scratch, uimm ;
        // vsetvli rd, scratch, vtype...
        if (!opts.allow_expansion) {
          throw RollbackError(line.source_line,
                              "vsetivli needs expansion (disabled)");
        }
        if (ops.size() < 2) {
          throw RollbackError(line.source_line, "malformed vsetivli");
        }
        Line li;
        li.kind = LineKind::Instruction;
        li.mnemonic = "li";
        li.operands = {opts.scratch_reg, ops[1]};
        li.source_line = line.source_line;
        result.program.lines.push_back(std::move(li));
        ops[1] = opts.scratch_reg;
        out.mnemonic = "vsetvli";
        out.operands = std::move(ops);
        note(line.source_line, "vsetivli expanded to li + vsetvli");
        ++result.rewritten;
        result.program.lines.push_back(std::move(out));
        continue;
      }
      if (ops.size() != line.operands.size()) {
        note(line.source_line, "dropped v1.0 vsetvli policy flags");
        ++result.rewritten;
      }
      out.operands = std::move(ops);
      result.program.lines.push_back(std::move(out));
      continue;
    }

    // --- typed memory operations --------------------------------------
    if (auto mem = classify_mem(m)) {
      out.mnemonic = legacy_mem_mnemonic(*mem, vtype.sew, line.source_line);
      note(line.source_line, m + " -> " + out.mnemonic);
      ++result.rewritten;
      result.program.lines.push_back(std::move(out));
      continue;
    }

    // --- simple renames ------------------------------------------------
    if (auto it = simple_renames().find(m); it != simple_renames().end()) {
      out.mnemonic = it->second;
      note(line.source_line, m + " -> " + out.mnemonic);
      ++result.rewritten;
      result.program.lines.push_back(std::move(out));
      continue;
    }

    // --- element extract -----------------------------------------------
    if (m == "vmv.x.s") {
      // vmv.x.s rd, vs2  ->  vext.x.v rd, vs2, x0
      out.mnemonic = "vext.x.v";
      out.operands.push_back("x0");
      note(line.source_line, "vmv.x.s -> vext.x.v (element 0)");
      ++result.rewritten;
      result.program.lines.push_back(std::move(out));
      continue;
    }

    // --- whole register moves / loads ----------------------------------
    if (m == "vmv1r.v") {
      if (!opts.allow_expansion) {
        throw RollbackError(line.source_line,
                            "vmv1r.v needs expansion (disabled)");
      }
      out.mnemonic = "vmv.v.v";
      note(line.source_line,
           "vmv1r.v -> vmv.v.v (assumes vl covers the register)");
      ++result.rewritten;
      result.program.lines.push_back(std::move(out));
      continue;
    }
    if (m == "vmnot.m") {
      // vmnot.m vd, vs  ->  vmnand.mm vd, vs, vs
      out.mnemonic = "vmnand.mm";
      if (out.operands.size() == 2) out.operands.push_back(out.operands[1]);
      note(line.source_line, "vmnot.m -> vmnand.mm vd, vs, vs");
      ++result.rewritten;
      result.program.lines.push_back(std::move(out));
      continue;
    }

    // --- untranslatable -------------------------------------------------
    if (m.rfind("vzext", 0) == 0 || m.rfind("vsext", 0) == 0 ||
        m.rfind("vl1r", 0) == 0 || m.rfind("vl2r", 0) == 0 ||
        m.rfind("vl4r", 0) == 0 || m.rfind("vl8r", 0) == 0 ||
        m.rfind("vs1r", 0) == 0 || m.rfind("vs2r", 0) == 0 ||
        m.rfind("vs4r", 0) == 0 || m.rfind("vs8r", 0) == 0 ||
        m == "vmv2r.v" || m == "vmv4r.v" || m == "vmv8r.v" ||
        m == "vfslide1up.vf" || m == "vfslide1down.vf") {
      throw RollbackError(line.source_line,
                          m + " has no RVV v0.7.1 equivalent");
    }

    // Anything else passes through (common vector ops and scalar code).
    result.program.lines.push_back(std::move(out));
  }
  return result;
}

std::string rollback_text(std::string_view v1_asm,
                          const RollbackOptions& opts) {
  return print(rollback(parse(v1_asm), opts).program);
}

}  // namespace sgp::rvv
