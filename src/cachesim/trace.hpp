// Synthetic address-trace generators mirroring the AccessPattern
// taxonomy of the analytical model, and helpers to build a cache
// hierarchy from a machine descriptor and replay kernel-like sweeps on
// it.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "core/types.hpp"
#include "machine/descriptor.hpp"

namespace sgp::cachesim {

struct AccessRecord {
  Addr addr = 0;
  bool is_write = false;
};

using Trace = std::vector<AccessRecord>;

/// Trace of one full sweep over `arrays` arrays of `elems` elements of
/// `elem_bytes` each, in the given pattern. Arrays are laid out
/// contiguously starting at `base`, separated by a guard page.
struct SweepSpec {
  core::AccessPattern pattern = core::AccessPattern::Streaming;
  std::size_t arrays = 2;        ///< first arrays-1 are read, last is written
  std::size_t elems = 1 << 16;
  std::size_t elem_bytes = 8;
  std::size_t stride_elems = 8;  ///< Strided pattern only
  unsigned seed = 7;             ///< Gather pattern only
  Addr base = 1 << 20;

  /// Field-wise equality — the decode cache key in ReplayArena.
  bool operator==(const SweepSpec&) const = default;
};

/// Materializes one full sweep by flattening the TraceCursor run
/// stream (replay.hpp); reserves the exact per-pattern access count up
/// front. Kept for the legacy vector-replay path and tools that want a
/// concrete trace.
Trace generate_sweep(const SweepSpec& spec);

/// Cache hierarchy mirroring a machine descriptor's per-core view
/// (private L1, the core's share of L2, the core's share of L3 when
/// core-side). `l2_sharers`/`l3_sharers` model how many active cores
/// divide the shared levels.
Hierarchy hierarchy_for(const machine::MachineDescriptor& m,
                        int l2_sharers = 1, int l3_sharers = 1);

/// The per-level configs hierarchy_for builds — exposed so replays can
/// construct several hierarchies (e.g. one per set-shard) from the
/// same descriptor, and so config-level oracles can perturb them.
std::vector<CacheConfig> hierarchy_configs(
    const machine::MachineDescriptor& m, int l2_sharers = 1,
    int l3_sharers = 1);

/// Replays the sweep `reps` times (flushing nothing in between, like a
/// RAJAPerf kernel re-running over resident data) and returns the
/// hierarchy for inspection. Delegates to the streaming engine
/// (replay_stream in replay.hpp): runs are coalesced per cache line
/// and reps are extrapolated once the per-level deltas go periodic —
/// the statistics are bit-identical to the full vector replay.
struct ReplayResult {
  Hierarchy hierarchy;
  std::uint64_t accesses = 0;
  /// Miss rate of the *last* rep at each level (steady state).
  std::vector<double> steady_miss_rate;
};

ReplayResult replay(const machine::MachineDescriptor& m,
                    const SweepSpec& spec, int reps, int l2_sharers = 1,
                    int l3_sharers = 1);

}  // namespace sgp::cachesim
