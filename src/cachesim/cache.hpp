// Trace-driven set-associative cache simulator. This is the detailed
// counterpart of the analytical sim::CacheModel: it executes address
// traces against a real set/way/LRU structure, and the validation tests
// check that the analytical model's serving-level decisions agree with
// simulated miss rates on synthetic kernels.
//
// The hot entry points are run-based: TraceCursor (replay.hpp) yields
// AccessRuns and Hierarchy::access_run consumes them, collapsing the
// accesses that fall into one cache line into a single tag check plus a
// counted hit increment. The coalescing is exact — the per-access
// `access` path and the run path produce bit-identical CacheStats —
// because a run's same-line accesses are consecutive in the global
// access order, so nothing can intervene and evict the line between
// them (see docs/CACHESIM.md for the argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sgp::cachesim {

using Addr = std::uint64_t;

enum class ReplacementPolicy { LRU, FIFO };

struct CacheConfig {
  std::string name = "L1";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;
  ReplacementPolicy policy = ReplacementPolicy::LRU;
  bool write_allocate = true;

  std::size_t num_sets() const { return size_bytes / (line_bytes * ways); }

  /// Throws std::invalid_argument on non-power-of-two geometry or
  /// inconsistent sizes.
  void validate() const;
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  /// Writebacks arriving from the level above (see write_back_line).
  /// Kept separate from the demand counters so miss rates measure
  /// demand traffic only; a wb_miss at the last level is DRAM write
  /// traffic (dram_bytes()).
  std::uint64_t wb_hits = 0;
  std::uint64_t wb_misses = 0;

  /// Demand accesses (writeback absorption excluded).
  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
  }

  bool operator==(const CacheStats&) const = default;

  CacheStats& operator+=(const CacheStats& o) {
    read_hits += o.read_hits;
    read_misses += o.read_misses;
    write_hits += o.write_hits;
    write_misses += o.write_misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    wb_hits += o.wb_hits;
    wb_misses += o.wb_misses;
    return *this;
  }
  CacheStats& operator-=(const CacheStats& o) {
    read_hits -= o.read_hits;
    read_misses -= o.read_misses;
    write_hits -= o.write_hits;
    write_misses -= o.write_misses;
    evictions -= o.evictions;
    writebacks -= o.writebacks;
    wb_hits -= o.wb_hits;
    wb_misses -= o.wb_misses;
    return *this;
  }
  /// Every field multiplied by `k` (steady-state rep extrapolation).
  CacheStats scaled(std::uint64_t k) const {
    return CacheStats{read_hits * k,  read_misses * k,  write_hits * k,
                      write_misses * k, evictions * k,  writebacks * k,
                      wb_hits * k,    wb_misses * k};
  }
};

/// `count` accesses starting at `base`, advancing `step_bytes` per
/// access (0 = the same address repeatedly). A run never mixes reads
/// and writes, and its accesses are consecutive in the trace order.
struct AccessRun {
  Addr base = 0;
  std::uint64_t step_bytes = 0;
  std::uint64_t count = 1;
  bool is_write = false;

  bool operator==(const AccessRun&) const = default;
};

/// One level of cache. Accesses report hit/miss; misses are meant to be
/// forwarded to the next level by the caller (see Hierarchy).
class Cache {
 public:
  /// Outcome of access_line: whether the (first) access hit, and
  /// whether installing on a miss evicted a dirty victim the caller
  /// must write back to the next level.
  struct LineOutcome {
    bool hit = false;
    bool writeback = false;
    Addr victim_addr = 0;  ///< line-aligned address of the dirty victim
  };

  explicit Cache(CacheConfig config);

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }

  /// True on hit. On miss the line is installed (allocate-on-miss; for
  /// writes only when write_allocate).
  bool access(Addr addr, bool is_write);

  /// `n` consecutive accesses that all fall into the line holding
  /// `addr`, performed as one tag check. Exactly equivalent to calling
  /// `access` n times on same-line addresses back to back: on a hit all
  /// n count as hits; on an allocating miss the first counts as the
  /// miss and the remaining n-1 hit the just-installed line; a
  /// write-around miss counts all n as write misses. LRU stamps end at
  /// the clock after the last access, FIFO stamps keep the fill time.
  LineOutcome access_line(Addr addr, bool is_write, std::uint64_t n = 1);

  /// Absorbs a writeback arriving from the level above: on hit the
  /// resident line turns dirty (counted as a wb_hit) and true is
  /// returned; on miss a wb_miss is counted, nothing is allocated
  /// (writeback data needs no fill), and false tells the hierarchy to
  /// forward the writeback further down. Writeback absorption is
  /// accounted separately from demand traffic.
  bool write_back_line(Addr addr);

  /// Folds externally accounted events into the statistics — used by
  /// the replay engine's steady-state extrapolation, which skips
  /// simulating reps whose per-level deltas are already periodic.
  void add_stats(const CacheStats& delta) { stats_ += delta; }

  /// Is the line currently resident (no state change)?
  bool probe(Addr addr) const;

  /// Invalidate everything (keeps statistics).
  void flush();

  /// Lines currently resident.
  std::size_t resident_lines() const;

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t stamp = 0;  // LRU: last-use time; FIFO: fill time
  };

  std::size_t set_index(Addr addr) const;
  Addr tag_of(Addr addr) const;

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_;  // sets x ways, row-major
  std::uint64_t clock_ = 0;
};

/// An inclusive-enough multi-level hierarchy: an access walks down the
/// levels until it hits; lower levels are only consulted (and filled) on
/// a miss above. A dirty line evicted from level i is written back to
/// level i+1 after the demand walk completes: it re-dirties the line
/// when resident (write hit) and otherwise passes through as a write
/// miss towards memory without allocating. Reports per-level stats and
/// the DRAM traffic in bytes.
class Hierarchy {
 public:
  /// Accesses processed through the run API, for obs instrumentation.
  struct RunTelemetry {
    std::uint64_t runs = 0;           ///< access_run calls
    std::uint64_t line_segments = 0;  ///< L1 tag checks those runs cost
    std::uint64_t coalesced = 0;      ///< accesses folded into segments
    std::uint64_t accesses = 0;       ///< logical accesses replayed
  };

  explicit Hierarchy(std::vector<CacheConfig> levels);

  /// Performs one access; returns the deepest level index that HIT, or
  /// levels() if it went to memory.
  std::size_t access(Addr addr, bool is_write);

  /// Replays a whole run, coalescing the accesses that share an L1
  /// line into one access_line call per line touched. Bit-identical
  /// statistics to calling `access` once per run element.
  void access_run(const AccessRun& run);

  std::size_t levels() const noexcept { return caches_.size(); }
  const Cache& level(std::size_t i) const { return caches_.at(i); }

  /// Adds an externally computed stats delta to one level (replay
  /// steady-state extrapolation).
  void add_stats(std::size_t level, const CacheStats& delta) {
    caches_.at(level).add_stats(delta);
  }

  /// Bytes fetched from memory (miss traffic of the last level).
  std::uint64_t dram_bytes() const;

  const RunTelemetry& telemetry() const noexcept { return telemetry_; }

  void flush();

 private:
  /// `n` same-L1-line consecutive accesses: one L1 tag check, at most
  /// one forwarded access per lower level, then pending writebacks.
  std::size_t access_segment(Addr addr, bool is_write, std::uint64_t n);
  /// Walks a writeback down from `level` until a cache absorbs it.
  void write_back(std::size_t level, Addr addr);

  std::vector<Cache> caches_;
  /// (next level, victim address) collected during one demand walk.
  std::vector<std::pair<std::size_t, Addr>> pending_wb_;
  RunTelemetry telemetry_;
};

}  // namespace sgp::cachesim
