// Trace-driven set-associative cache simulator. This is the detailed
// counterpart of the analytical sim::CacheModel: it executes address
// traces against a real set/way/LRU structure, and the validation tests
// check that the analytical model's serving-level decisions agree with
// simulated miss rates on synthetic kernels.
//
// The hot entry points are batch-based: a decoder (arena.hpp) turns a
// TraceCursor run stream into a flat buffer of LineSegments (same-line
// groups of consecutive accesses, reads before writes) and
// Hierarchy::access_batch replays the buffer with one tag check per
// segment. Per-set state is structure-of-arrays (separate tag / stamp /
// dirty arrays with an invalid-tag sentinel), so the way scan is a
// branch-light linear probe over a contiguous tag array and set/tag
// math is shift-and-mask, not division. The coalescing is exact — the
// per-access `access` path, the run path and the batch path produce
// bit-identical CacheStats — because a segment's same-line accesses
// are consecutive in the global access order, so nothing can intervene
// and evict the line between them (see docs/CACHESIM.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sgp::cachesim {

using Addr = std::uint64_t;

enum class ReplacementPolicy { LRU, FIFO };

struct CacheConfig {
  std::string name = "L1";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;
  ReplacementPolicy policy = ReplacementPolicy::LRU;
  bool write_allocate = true;

  std::size_t num_sets() const { return size_bytes / (line_bytes * ways); }

  /// Throws std::invalid_argument on non-power-of-two geometry or
  /// inconsistent sizes.
  void validate() const;
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  /// Writebacks arriving from the level above (see write_back_line).
  /// Kept separate from the demand counters so miss rates measure
  /// demand traffic only; a wb_miss at the last level is DRAM write
  /// traffic (dram_bytes()).
  std::uint64_t wb_hits = 0;
  std::uint64_t wb_misses = 0;

  /// Demand accesses (writeback absorption excluded).
  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
  }

  bool operator==(const CacheStats&) const = default;

  CacheStats& operator+=(const CacheStats& o) {
    read_hits += o.read_hits;
    read_misses += o.read_misses;
    write_hits += o.write_hits;
    write_misses += o.write_misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    wb_hits += o.wb_hits;
    wb_misses += o.wb_misses;
    return *this;
  }
  CacheStats& operator-=(const CacheStats& o) {
    read_hits -= o.read_hits;
    read_misses -= o.read_misses;
    write_hits -= o.write_hits;
    write_misses -= o.write_misses;
    evictions -= o.evictions;
    writebacks -= o.writebacks;
    wb_hits -= o.wb_hits;
    wb_misses -= o.wb_misses;
    return *this;
  }
  /// Every field multiplied by `k` (steady-state rep extrapolation).
  CacheStats scaled(std::uint64_t k) const {
    return CacheStats{read_hits * k,  read_misses * k,  write_hits * k,
                      write_misses * k, evictions * k,  writebacks * k,
                      wb_hits * k,    wb_misses * k};
  }
};

/// `count` accesses starting at `base`, advancing `step_bytes` per
/// access (0 = the same address repeatedly). A run never mixes reads
/// and writes, and its accesses are consecutive in the trace order.
struct AccessRun {
  Addr base = 0;
  std::uint64_t step_bytes = 0;
  std::uint64_t count = 1;
  bool is_write = false;

  bool operator==(const AccessRun&) const = default;
};

/// A decoded batch element: `reads` read accesses followed by `writes`
/// write accesses, all consecutive in the trace order and all falling
/// into the L1 line holding `addr`. Pure-read (writes == 0), pure-write
/// (reads == 0) and read-modify-write segments share one layout so the
/// replay loop is a single tight pass over a flat 16-byte-element
/// array.
struct LineSegment {
  Addr addr = 0;
  std::uint32_t reads = 0;
  std::uint32_t writes = 0;

  bool operator==(const LineSegment&) const = default;
};

/// Set-shard view for parallel single-replay: the cache stores only the
/// sets whose line address satisfies `line % (1 << count_log2) ==
/// index`, at 1/2^count_log2 of the configured capacity. Sets partition
/// lines disjointly, so replaying a shard-filtered trace on a shard
/// view is bit-identical to the serial replay restricted to those sets
/// (docs/CACHESIM.md has the determinism argument).
struct ShardView {
  std::uint32_t count_log2 = 0;  ///< log2 of the shard count
  std::uint32_t index = 0;       ///< this shard's line class
};

/// One level of cache. Accesses report hit/miss; misses are meant to be
/// forwarded to the next level by the caller (see Hierarchy).
class Cache {
 public:
  /// Outcome of access_line/access_rw: whether the (first) access hit,
  /// and whether installing on a miss evicted a dirty victim the caller
  /// must write back to the next level.
  struct LineOutcome {
    bool hit = false;
    bool writeback = false;
    Addr victim_addr = 0;  ///< line-aligned address of the dirty victim
  };

  explicit Cache(CacheConfig config, ShardView shard = {});

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }

  /// True on hit. On miss the line is installed (allocate-on-miss; for
  /// writes only when write_allocate).
  bool access(Addr addr, bool is_write);

  /// `n` consecutive accesses that all fall into the line holding
  /// `addr`, performed as one tag check. Exactly equivalent to calling
  /// `access` n times on same-line addresses back to back: on a hit all
  /// n count as hits; on an allocating miss the first counts as the
  /// miss and the remaining n-1 hit the just-installed line; a
  /// write-around miss counts all n as write misses. LRU stamps end at
  /// the clock after the last access, FIFO stamps keep the fill time.
  LineOutcome access_line(Addr addr, bool is_write, std::uint64_t n = 1);

  /// One LineSegment: `reads` reads then `writes` writes on the line
  /// holding `addr` (reads + writes >= 1), as one tag check. Exactly
  /// equivalent to access_line(addr, false, reads) followed by
  /// access_line(addr, true, writes): the write part always hits the
  /// line the read part installed (or found), even on write-around
  /// caches, because reads allocate unconditionally.
  LineOutcome access_rw(Addr addr, std::uint32_t reads,
                        std::uint32_t writes);

  /// Demand-replays a whole segment buffer against this single cache
  /// (no miss forwarding — the single-level fast path of
  /// Hierarchy::access_batch). Returns the number of logical accesses
  /// replayed.
  std::uint64_t access_batch(std::span<const LineSegment> segs);

  /// Absorbs a writeback arriving from the level above: on hit the
  /// resident line turns dirty (counted as a wb_hit) and true is
  /// returned; on miss a wb_miss is counted, nothing is allocated
  /// (writeback data needs no fill), and false tells the hierarchy to
  /// forward the writeback further down. Writeback absorption is
  /// accounted separately from demand traffic.
  bool write_back_line(Addr addr);

  /// Folds externally accounted events into the statistics — used by
  /// the replay engine's steady-state extrapolation, which skips
  /// simulating reps whose per-level deltas are already periodic.
  void add_stats(const CacheStats& delta) { stats_ += delta; }

  /// Is the line currently resident (no state change)?
  bool probe(Addr addr) const;

  /// Invalidate everything (keeps statistics).
  void flush();

  /// Lines currently resident.
  std::size_t resident_lines() const;

 private:
  /// Physical row of `addr`'s set in the (possibly shard-view) arrays.
  std::size_t set_of(Addr addr) const noexcept {
    return static_cast<std::size_t>(
               (addr >> line_shift_) >> shard_log2_) &
           phys_set_mask_;
  }
  Addr tag_of(Addr addr) const noexcept {
    return (addr >> line_shift_) >> set_shift_;
  }

  CacheConfig config_;
  CacheStats stats_;

  // Structure-of-arrays per-set state, each sized phys_sets * ways and
  // indexed row-major by (physical set, way). Invalid ways hold
  // kInvalidTag (never a real tag: tags are < 2^61 for >= 8-byte
  // lines) and stamp 0 (valid lines always stamp >= 1, so the victim
  // scan is a single min-stamp probe that naturally prefers the first
  // invalid way, exactly like the legacy first-invalid-else-oldest
  // walk).
  std::vector<Addr> tags_;
  std::vector<std::uint64_t> stamps_;
  std::vector<std::uint8_t> dirty_;

  std::uint64_t clock_ = 0;
  std::uint32_t line_shift_ = 0;  ///< log2(line_bytes)
  std::uint32_t set_shift_ = 0;   ///< log2(num_sets), full geometry
  std::uint32_t shard_log2_ = 0;
  std::uint32_t shard_index_ = 0;
  std::size_t phys_set_mask_ = 0;  ///< physical sets - 1
  std::size_t ways_ = 0;
  bool lru_ = true;
  bool write_allocate_ = true;
};

/// An inclusive-enough multi-level hierarchy: an access walks down the
/// levels until it hits; lower levels are only consulted (and filled) on
/// a miss above. A dirty line evicted from level i is written back to
/// level i+1 after the demand walk completes: it re-dirties the line
/// when resident (write hit) and otherwise passes through as a write
/// miss towards memory without allocating. Reports per-level stats and
/// the DRAM traffic in bytes.
class Hierarchy {
 public:
  /// Accesses processed through the run/batch APIs, for obs
  /// instrumentation.
  struct RunTelemetry {
    std::uint64_t runs = 0;           ///< access runs decoded/replayed
    std::uint64_t line_segments = 0;  ///< L1 tag checks those runs cost
    std::uint64_t coalesced = 0;      ///< accesses folded into segments
    std::uint64_t accesses = 0;       ///< logical accesses replayed
  };

  explicit Hierarchy(std::vector<CacheConfig> levels, ShardView shard = {});

  /// Performs one access; returns the deepest level index that HIT, or
  /// levels() if it went to memory.
  std::size_t access(Addr addr, bool is_write);

  /// Replays a whole run, coalescing the accesses that share an L1
  /// line into one tag check per line touched. Bit-identical
  /// statistics to calling `access` once per run element.
  void access_run(const AccessRun& run);

  /// Replays a decoded segment buffer (arena.hpp): one L1 tag check
  /// per segment, the miss walk out of line. Bit-identical statistics
  /// to replaying each segment's reads-then-writes through `access`.
  /// `runs` is the number of access runs the buffer was decoded from,
  /// folded into telemetry only.
  void access_batch(std::span<const LineSegment> segs,
                    std::uint64_t runs = 0);

  std::size_t levels() const noexcept { return caches_.size(); }
  const Cache& level(std::size_t i) const { return caches_.at(i); }

  /// Adds an externally computed stats delta to one level (replay
  /// steady-state extrapolation, shard merging).
  void add_stats(std::size_t level, const CacheStats& delta) {
    caches_.at(level).add_stats(delta);
  }

  /// Bytes fetched from memory (miss traffic of the last level).
  std::uint64_t dram_bytes() const;

  const RunTelemetry& telemetry() const noexcept { return telemetry_; }
  /// Folds a shard's telemetry into this hierarchy's (shard merging).
  void merge_telemetry(const RunTelemetry& t);

  void flush();

 private:
  /// One segment: L1 tag check inline, miss walk + writebacks out of
  /// line. Returns the deepest level that hit (levels() = memory).
  std::size_t process_segment(Addr addr, std::uint32_t reads,
                              std::uint32_t writes);
  /// Demand walk below L1 plus deferred writebacks after an L1 miss.
  std::size_t miss_walk(Addr addr, std::uint32_t reads,
                        std::uint32_t writes,
                        const Cache::LineOutcome& l1_out);
  /// Walks a writeback down from `level` until a cache absorbs it.
  void write_back(std::size_t level, Addr addr);

  std::vector<Cache> caches_;
  /// (next level, victim address) collected during one demand walk.
  std::vector<std::pair<std::size_t, Addr>> pending_wb_;
  RunTelemetry telemetry_;
};

}  // namespace sgp::cachesim
