// Trace-driven set-associative cache simulator. This is the detailed
// counterpart of the analytical sim::CacheModel: it executes address
// traces against a real set/way/LRU structure, and the validation tests
// check that the analytical model's serving-level decisions agree with
// simulated miss rates on synthetic kernels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sgp::cachesim {

using Addr = std::uint64_t;

enum class ReplacementPolicy { LRU, FIFO };

struct CacheConfig {
  std::string name = "L1";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;
  ReplacementPolicy policy = ReplacementPolicy::LRU;
  bool write_allocate = true;

  std::size_t num_sets() const { return size_bytes / (line_bytes * ways); }

  /// Throws std::invalid_argument on non-power-of-two geometry or
  /// inconsistent sizes.
  void validate() const;
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t misses() const { return read_misses + write_misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
  }
};

/// One level of cache. Accesses report hit/miss; misses are meant to be
/// forwarded to the next level by the caller (see Hierarchy).
class Cache {
 public:
  explicit Cache(CacheConfig config);

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }

  /// True on hit. On miss the line is installed (allocate-on-miss; for
  /// writes only when write_allocate).
  bool access(Addr addr, bool is_write);

  /// Is the line currently resident (no state change)?
  bool probe(Addr addr) const;

  /// Invalidate everything (keeps statistics).
  void flush();

  /// Lines currently resident.
  std::size_t resident_lines() const;

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t stamp = 0;  // LRU: last-use time; FIFO: fill time
  };

  std::size_t set_index(Addr addr) const;
  Addr tag_of(Addr addr) const;

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_;  // sets x ways, row-major
  std::uint64_t clock_ = 0;
};

/// An inclusive-enough multi-level hierarchy: an access walks down the
/// levels until it hits; lower levels are only consulted (and filled) on
/// a miss above. Reports per-level stats and the DRAM traffic in bytes.
class Hierarchy {
 public:
  explicit Hierarchy(std::vector<CacheConfig> levels);

  /// Performs one access; returns the deepest level index that HIT, or
  /// levels() if it went to memory.
  std::size_t access(Addr addr, bool is_write);

  std::size_t levels() const noexcept { return caches_.size(); }
  const Cache& level(std::size_t i) const { return caches_.at(i); }

  /// Bytes fetched from memory (miss traffic of the last level).
  std::uint64_t dram_bytes() const;

  void flush();

 private:
  std::vector<Cache> caches_;
};

}  // namespace sgp::cachesim
