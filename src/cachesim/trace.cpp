#include "cachesim/trace.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "cachesim/replay.hpp"

namespace sgp::cachesim {

Trace generate_sweep(const SweepSpec& spec) {
  // The cursor defines the canonical access order; flattening its run
  // stream keeps the materialized trace and the streaming replay
  // bit-for-bit the same sequence.
  TraceCursor cursor(spec);
  Trace trace;
  trace.reserve(cursor.total_accesses());
  AccessRun run;
  while (cursor.next(run)) {
    // The reserve above must be exact for every pattern — Gather's
    // index+data interleave included — so the flattening never
    // reallocates mid-build.
    assert(trace.size() + run.count <= cursor.total_accesses());
    Addr addr = run.base;
    for (std::uint64_t k = 0; k < run.count; ++k) {
      trace.push_back({addr, run.is_write});
      addr += run.step_bytes;
    }
  }
  assert(trace.size() == cursor.total_accesses());
  return trace;
}

std::vector<CacheConfig> hierarchy_configs(
    const machine::MachineDescriptor& m, int l2_sharers, int l3_sharers) {
  auto round_pow2 = [](std::size_t v) {
    std::size_t p = 1;
    while (p * 2 <= v) p *= 2;
    return p;
  };
  std::vector<CacheConfig> cfgs;
  CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = round_pow2(m.l1d.size_bytes);
  l1.line_bytes = static_cast<std::size_t>(m.l1d.line_bytes);
  l1.ways = 8;
  cfgs.push_back(l1);

  CacheConfig l2;
  l2.name = "L2";
  l2.size_bytes = round_pow2(
      m.l2.size_bytes / static_cast<std::size_t>(std::max(1, l2_sharers)));
  l2.line_bytes = static_cast<std::size_t>(m.l2.line_bytes);
  l2.ways = 8;
  cfgs.push_back(l2);

  if (m.l3.present()) {
    CacheConfig l3;
    l3.name = "L3";
    l3.size_bytes = round_pow2(
        m.l3.size_bytes / static_cast<std::size_t>(std::max(1, l3_sharers)));
    l3.line_bytes = static_cast<std::size_t>(m.l3.line_bytes);
    l3.ways = 16;
    cfgs.push_back(l3);
  }
  return cfgs;
}

Hierarchy hierarchy_for(const machine::MachineDescriptor& m,
                        int l2_sharers, int l3_sharers) {
  return Hierarchy(hierarchy_configs(m, l2_sharers, l3_sharers));
}

ReplayResult replay(const machine::MachineDescriptor& m,
                    const SweepSpec& spec, int reps, int l2_sharers,
                    int l3_sharers) {
  ReplayOptions opt;
  opt.l2_sharers = l2_sharers;
  opt.l3_sharers = l3_sharers;
  return replay_stream(m, spec, reps, opt);
}

}  // namespace sgp::cachesim
