#include "cachesim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace sgp::cachesim {

namespace {

constexpr Addr kGuard = 1 << 16;  // space between arrays

Addr array_base(const SweepSpec& spec, std::size_t array) {
  const Addr span = static_cast<Addr>(spec.elems) * spec.elem_bytes;
  return spec.base + static_cast<Addr>(array) * (span + kGuard);
}

}  // namespace

Trace generate_sweep(const SweepSpec& spec) {
  using core::AccessPattern;
  if (spec.arrays == 0 || spec.elems == 0) {
    throw std::invalid_argument("generate_sweep: empty spec");
  }
  Trace trace;
  const std::size_t reads = spec.arrays > 1 ? spec.arrays - 1 : 1;
  const bool has_write = spec.arrays > 1;
  trace.reserve(spec.elems * spec.arrays);

  auto emit_elem = [&](std::size_t logical_index) {
    for (std::size_t a = 0; a < reads; ++a) {
      trace.push_back({array_base(spec, a) +
                           static_cast<Addr>(logical_index) * spec.elem_bytes,
                       false});
    }
    if (has_write) {
      trace.push_back(
          {array_base(spec, reads) +
               static_cast<Addr>(logical_index) * spec.elem_bytes,
           true});
    }
  };

  switch (spec.pattern) {
    case AccessPattern::Streaming:
    case AccessPattern::Reduction:
      for (std::size_t i = 0; i < spec.elems; ++i) emit_elem(i);
      break;
    case AccessPattern::Strided: {
      const std::size_t stride = std::max<std::size_t>(1, spec.stride_elems);
      for (std::size_t phase = 0; phase < stride; ++phase) {
        for (std::size_t i = phase; i < spec.elems; i += stride) {
          emit_elem(i);
        }
      }
      break;
    }
    case AccessPattern::Stencil1D:
      // i-1, i, i+1 from array 0; write array 1.
      for (std::size_t i = 1; i + 1 < spec.elems; ++i) {
        for (const std::size_t j : {i - 1, i, i + 1}) {
          trace.push_back(
              {array_base(spec, 0) + static_cast<Addr>(j) * spec.elem_bytes,
               false});
        }
        trace.push_back(
            {array_base(spec, 1) + static_cast<Addr>(i) * spec.elem_bytes,
             true});
      }
      break;
    case AccessPattern::Gather: {
      std::mt19937 rng(spec.seed);
      std::uniform_int_distribution<std::size_t> dist(0, spec.elems - 1);
      for (std::size_t i = 0; i < spec.elems; ++i) {
        // index load (sequential) + gathered data load (random).
        trace.push_back(
            {array_base(spec, 0) + static_cast<Addr>(i) * spec.elem_bytes,
             false});
        trace.push_back({array_base(spec, 1) +
                             static_cast<Addr>(dist(rng)) * spec.elem_bytes,
                         false});
      }
      break;
    }
    case AccessPattern::Sequential:
    case AccessPattern::Sort:
      // A forward sweep with read-modify-write (recurrence-like).
      for (std::size_t i = 0; i < spec.elems; ++i) {
        const Addr a =
            array_base(spec, 0) + static_cast<Addr>(i) * spec.elem_bytes;
        trace.push_back({a, false});
        trace.push_back({a, true});
      }
      break;
    case AccessPattern::Stencil2D:
    case AccessPattern::Stencil3D:
    case AccessPattern::BlockedMatrix: {
      // Row sweep with a re-visited neighbour row one "row" back.
      const std::size_t row = std::max<std::size_t>(
          8, static_cast<std::size_t>(std::sqrt(spec.elems)));
      for (std::size_t i = row; i < spec.elems; ++i) {
        trace.push_back(
            {array_base(spec, 0) + static_cast<Addr>(i) * spec.elem_bytes,
             false});
        trace.push_back({array_base(spec, 0) +
                             static_cast<Addr>(i - row) * spec.elem_bytes,
                         false});
        if (spec.arrays > 1) {
          trace.push_back(
              {array_base(spec, 1) + static_cast<Addr>(i) * spec.elem_bytes,
               true});
        }
      }
      break;
    }
  }
  return trace;
}

Hierarchy hierarchy_for(const machine::MachineDescriptor& m,
                        int l2_sharers, int l3_sharers) {
  auto round_pow2 = [](std::size_t v) {
    std::size_t p = 1;
    while (p * 2 <= v) p *= 2;
    return p;
  };
  std::vector<CacheConfig> cfgs;
  CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = round_pow2(m.l1d.size_bytes);
  l1.line_bytes = static_cast<std::size_t>(m.l1d.line_bytes);
  l1.ways = 8;
  cfgs.push_back(l1);

  CacheConfig l2;
  l2.name = "L2";
  l2.size_bytes = round_pow2(
      m.l2.size_bytes / static_cast<std::size_t>(std::max(1, l2_sharers)));
  l2.line_bytes = static_cast<std::size_t>(m.l2.line_bytes);
  l2.ways = 8;
  cfgs.push_back(l2);

  if (m.l3.present()) {
    CacheConfig l3;
    l3.name = "L3";
    l3.size_bytes = round_pow2(
        m.l3.size_bytes / static_cast<std::size_t>(std::max(1, l3_sharers)));
    l3.line_bytes = static_cast<std::size_t>(m.l3.line_bytes);
    l3.ways = 16;
    cfgs.push_back(l3);
  }
  return Hierarchy(std::move(cfgs));
}

ReplayResult replay(const machine::MachineDescriptor& m,
                    const SweepSpec& spec, int reps, int l2_sharers,
                    int l3_sharers) {
  if (reps < 1) throw std::invalid_argument("replay: reps must be >= 1");
  ReplayResult result{hierarchy_for(m, l2_sharers, l3_sharers), 0, {}};
  const Trace trace = generate_sweep(spec);

  // Warm reps.
  for (int r = 0; r + 1 < reps; ++r) {
    for (const auto& a : trace) {
      result.hierarchy.access(a.addr, a.is_write);
      ++result.accesses;
    }
  }
  // Final rep: measure steady-state per-level miss rates.
  std::vector<CacheStats> before;
  for (std::size_t i = 0; i < result.hierarchy.levels(); ++i) {
    before.push_back(result.hierarchy.level(i).stats());
  }
  for (const auto& a : trace) {
    result.hierarchy.access(a.addr, a.is_write);
    ++result.accesses;
  }
  for (std::size_t i = 0; i < result.hierarchy.levels(); ++i) {
    const auto& now = result.hierarchy.level(i).stats();
    const auto acc = now.accesses() - before[i].accesses();
    const auto miss = now.misses() - before[i].misses();
    result.steady_miss_rate.push_back(
        acc == 0 ? 0.0 : static_cast<double>(miss) / acc);
  }
  return result;
}

}  // namespace sgp::cachesim
