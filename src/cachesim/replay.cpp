#include "cachesim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "cachesim/arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "threading/pool.hpp"

namespace sgp::cachesim {

namespace {

constexpr Addr kGuard = 1 << 16;  // space between arrays

}  // namespace

TraceCursor::TraceCursor(const SweepSpec& spec) : spec_(spec) {
  using core::AccessPattern;
  if (spec_.arrays == 0 || spec_.elems == 0) {
    throw std::invalid_argument("generate_sweep: empty spec");
  }
  reads_ = spec_.arrays > 1 ? spec_.arrays - 1 : 1;
  has_write_ = spec_.arrays > 1;
  streams_ = reads_ + (has_write_ ? 1 : 0);
  stride_ = std::max<std::size_t>(1, spec_.stride_elems);

  switch (spec_.pattern) {
    case AccessPattern::Streaming:
    case AccessPattern::Reduction:
    case AccessPattern::Strided:
      // Every element visited once per stream (strided phases cover
      // [0, elems) exactly).
      total_ = static_cast<std::uint64_t>(spec_.elems) * streams_;
      break;
    case AccessPattern::Stencil1D:
      streams_ = 2;  // one 3-read run + one write run per element
      total_ = spec_.elems >= 3
                   ? 4 * static_cast<std::uint64_t>(spec_.elems - 2)
                   : 0;
      break;
    case AccessPattern::Gather:
      streams_ = 2;
      total_ = 2 * static_cast<std::uint64_t>(spec_.elems);
      break;
    case AccessPattern::Sequential:
    case AccessPattern::Sort:
      streams_ = 2;  // read-modify-write per element
      total_ = 2 * static_cast<std::uint64_t>(spec_.elems);
      break;
    case AccessPattern::Stencil2D:
    case AccessPattern::Stencil3D:
    case AccessPattern::BlockedMatrix:
      row_ = std::max<std::size_t>(
          8, static_cast<std::size_t>(std::sqrt(spec_.elems)));
      streams_ = 2 + (spec_.arrays > 1 ? 1 : 0);
      total_ = spec_.elems > row_
                   ? static_cast<std::uint64_t>(spec_.elems - row_) * streams_
                   : 0;
      break;
  }
  rewind();
}

Addr TraceCursor::array_addr(std::size_t array, std::size_t elem) const {
  const Addr span =
      static_cast<Addr>(spec_.elems) * spec_.elem_bytes;
  return spec_.base + static_cast<Addr>(array) * (span + kGuard) +
         static_cast<Addr>(elem) * spec_.elem_bytes;
}

void TraceCursor::rewind() {
  using core::AccessPattern;
  i_ = spec_.pattern == AccessPattern::Stencil1D ? 1 : 0;
  if (spec_.pattern == AccessPattern::Stencil2D ||
      spec_.pattern == AccessPattern::Stencil3D ||
      spec_.pattern == AccessPattern::BlockedMatrix) {
    i_ = row_;
  }
  k_ = 0;
  phase_ = 0;
  stream_ = 0;
  if (spec_.pattern == AccessPattern::Gather) {
    rng_.seed(spec_.seed);
    dist_ = std::uniform_int_distribution<std::size_t>(0, spec_.elems - 1);
  }
}

bool TraceCursor::next(AccessRun& out) {
  using core::AccessPattern;
  const std::uint64_t eb = spec_.elem_bytes;

  switch (spec_.pattern) {
    case AccessPattern::Streaming:
    case AccessPattern::Reduction: {
      if (i_ >= spec_.elems) return false;
      const std::size_t blk = std::min(kRunBlockElems, spec_.elems - i_);
      const bool write = has_write_ && stream_ == reads_;
      out = AccessRun{array_addr(stream_, i_), eb, blk, write};
      if (++stream_ == streams_) {
        stream_ = 0;
        i_ += blk;
      }
      return true;
    }

    case AccessPattern::Strided: {
      while (phase_ < stride_) {
        const std::size_t count =
            phase_ < spec_.elems ? (spec_.elems - phase_ - 1) / stride_ + 1
                                 : 0;
        if (k_ >= count) {
          ++phase_;
          k_ = 0;
          continue;
        }
        const std::size_t blk = std::min(kRunBlockElems, count - k_);
        const std::size_t elem0 = phase_ + k_ * stride_;
        const bool write = has_write_ && stream_ == reads_;
        out = AccessRun{array_addr(stream_, elem0), stride_ * eb, blk, write};
        if (++stream_ == streams_) {
          stream_ = 0;
          k_ += blk;
        }
        return true;
      }
      return false;
    }

    case AccessPattern::Stencil1D: {
      // i-1, i, i+1 from array 0; write array 1 (always, like the
      // legacy generator).
      if (spec_.elems < 3 || i_ + 1 >= spec_.elems) return false;
      if (stream_ == 0) {
        out = AccessRun{array_addr(0, i_ - 1), eb, 3, false};
        stream_ = 1;
      } else {
        out = AccessRun{array_addr(1, i_), 0, 1, true};
        stream_ = 0;
        ++i_;
      }
      return true;
    }

    case AccessPattern::Gather: {
      // index load (sequential) + gathered data load (random).
      if (i_ >= spec_.elems) return false;
      if (stream_ == 0) {
        out = AccessRun{array_addr(0, i_), 0, 1, false};
        stream_ = 1;
      } else {
        out = AccessRun{array_addr(1, dist_(rng_)), 0, 1, false};
        stream_ = 0;
        ++i_;
      }
      return true;
    }

    case AccessPattern::Sequential:
    case AccessPattern::Sort: {
      // A forward sweep with read-modify-write (recurrence-like).
      if (i_ >= spec_.elems) return false;
      out = AccessRun{array_addr(0, i_), 0, 1, stream_ == 1};
      if (++stream_ == 2) {
        stream_ = 0;
        ++i_;
      }
      return true;
    }

    case AccessPattern::Stencil2D:
    case AccessPattern::Stencil3D:
    case AccessPattern::BlockedMatrix: {
      // Row sweep with a re-visited neighbour row one "row" back.
      if (i_ >= spec_.elems) return false;
      if (stream_ == 0) {
        out = AccessRun{array_addr(0, i_), 0, 1, false};
      } else if (stream_ == 1) {
        out = AccessRun{array_addr(0, i_ - row_), 0, 1, false};
      } else {
        out = AccessRun{array_addr(1, i_), 0, 1, true};
      }
      if (++stream_ == streams_) {
        stream_ = 0;
        ++i_;
      }
      return true;
    }
  }
  return false;
}

namespace {

std::vector<CacheStats> level_stats(const Hierarchy& h) {
  std::vector<CacheStats> out;
  out.reserve(h.levels());
  for (std::size_t i = 0; i < h.levels(); ++i) {
    out.push_back(h.level(i).stats());
  }
  return out;
}

void push_steady_rates(ReplayResult& result,
                       const std::vector<CacheStats>& delta) {
  for (const auto& d : delta) {
    const auto acc = d.accesses();
    result.steady_miss_rate.push_back(
        acc == 0 ? 0.0 : static_cast<double>(d.misses()) / acc);
  }
}

struct RepLoopOutcome {
  std::vector<CacheStats> final_delta;  ///< last (or periodic) rep delta
  std::uint64_t skipped = 0;            ///< reps extrapolated, not run
};

/// The rep loop shared by the serial and per-shard replay paths, so
/// the steady-state detection and extrapolation are the same code on
/// both sides of the sharded-vs-serial identity oracle: replay the
/// buffer per rep, and once two consecutive reps have identical
/// per-level stats deltas the cache state is periodic, so the
/// remaining reps each add exactly this delta again — extrapolate
/// instead of simulating them.
RepLoopOutcome run_reps(Hierarchy& h, std::span<const LineSegment> segs,
                        std::uint64_t runs, int reps, bool early_exit) {
  const std::size_t nlevels = h.levels();
  std::vector<CacheStats> prev(nlevels), delta(nlevels),
      prev_delta(nlevels);
  bool have_prev_delta = false;
  RepLoopOutcome out;
  for (int r = 0; r < reps; ++r) {
    h.access_batch(segs, runs);
    const auto now = level_stats(h);
    for (std::size_t i = 0; i < nlevels; ++i) {
      delta[i] = now[i];
      delta[i] -= prev[i];
    }
    prev = now;
    if (early_exit && have_prev_delta && delta == prev_delta &&
        r + 1 < reps) {
      out.skipped = static_cast<std::uint64_t>(reps - (r + 1));
      for (std::size_t i = 0; i < nlevels; ++i) {
        h.add_stats(i, delta[i].scaled(out.skipped));
      }
      break;
    }
    prev_delta = delta;
    have_prev_delta = true;
  }
  // The final rep's delta (shared by every extrapolated rep) is the
  // steady state, exactly as the legacy last-rep measurement.
  out.final_delta = std::move(delta);
  return out;
}

void count_replay_obs(const Hierarchy::RunTelemetry& t,
                      std::uint64_t skipped) {
  auto& reg = obs::registry();
  reg.counter("cachesim.replays").add();
  reg.counter("cachesim.runs").add(t.runs);
  reg.counter("cachesim.line_segments").add(t.line_segments);
  reg.counter("cachesim.accesses_coalesced").add(t.coalesced);
  reg.counter("cachesim.accesses_simulated").add(t.accesses);
  reg.counter("cachesim.reps_skipped").add(skipped);
}

ReplayArena& pick_arena(const ReplayOptions& opt) {
  return opt.arena != nullptr ? *opt.arena : ReplayArena::thread_default();
}

}  // namespace

ReplayResult replay_stream(const std::vector<CacheConfig>& cfgs,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt) {
  if (reps < 1) throw std::invalid_argument("replay: reps must be >= 1");
  if (cfgs.empty()) {
    throw std::invalid_argument("replay: needs at least one level");
  }
  obs::Span span("cachesim.replay");

  const DecodedSweep& dec =
      pick_arena(opt).decoded(spec, cfgs.front().line_bytes);
  ReplayResult result{Hierarchy(cfgs), 0, {}};
  const auto out = run_reps(result.hierarchy, dec.segments, dec.runs, reps,
                            opt.early_exit);
  // Simulated + extrapolated reps all cover the full sweep.
  result.accesses = dec.accesses * static_cast<std::uint64_t>(reps);
  push_steady_rates(result, out.final_delta);
  count_replay_obs(result.hierarchy.telemetry(), out.skipped);
  return result;
}

ReplayResult replay_stream(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt) {
  return replay_stream(hierarchy_configs(m, opt.l2_sharers, opt.l3_sharers),
                       spec, reps, opt);
}

std::size_t max_shards(const std::vector<CacheConfig>& cfgs) {
  if (cfgs.empty()) return 1;
  constexpr std::size_t kCap = 64;
  const std::size_t line = cfgs.front().line_bytes;
  std::size_t min_sets = kCap;
  for (const auto& c : cfgs) {
    if (c.line_bytes != line) return 1;  // classes would not partition sets
    min_sets = std::min(min_sets, c.num_sets());
  }
  std::size_t s = 1;
  while (s * 2 <= min_sets) s *= 2;
  return s;
}

ReplayResult replay_sharded(const std::vector<CacheConfig>& cfgs,
                            const SweepSpec& spec, int reps,
                            std::size_t shards, int jobs,
                            const ReplayOptions& opt) {
  if (reps < 1) throw std::invalid_argument("replay: reps must be >= 1");
  if (cfgs.empty()) {
    throw std::invalid_argument("replay: needs at least one level");
  }
  if (shards <= 1) return replay_stream(cfgs, spec, reps, opt);
  if ((shards & (shards - 1)) != 0) {
    throw std::invalid_argument(
        "replay_sharded: shard count must be a power of two");
  }
  if (shards > max_shards(cfgs)) {
    throw std::invalid_argument(
        "replay_sharded: shard count exceeds max_shards for this hierarchy");
  }
  obs::Span span("cachesim.replay");

  ReplayArena& arena = pick_arena(opt);
  const DecodedSweep& dec = arena.decoded(spec, cfgs.front().line_bytes);
  const auto& parts = arena.partition(dec, shards);
  std::uint32_t shard_log2 = 0;
  while ((std::size_t{1} << shard_log2) < shards) ++shard_log2;

  // One persistent hierarchy per shard; shards hold disjoint sets, so
  // the workers never touch shared mutable state.
  std::vector<Hierarchy> shard_h;
  shard_h.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_h.emplace_back(cfgs,
                         ShardView{shard_log2, static_cast<std::uint32_t>(s)});
  }

  const int workers = std::min<int>(threading::recommended_jobs(jobs),
                                    static_cast<int>(shards));
  threading::ThreadPool pool(std::max(workers, 1));
  auto run_rep = [&] {
    if (workers <= 1) {
      for (std::size_t s = 0; s < shards; ++s) {
        shard_h[s].access_batch(parts[s], 0);
      }
    } else {
      pool.parallel_for(shards,
                        [&](std::size_t begin, std::size_t end, int) {
                          for (std::size_t s = begin; s < end; ++s) {
                            shard_h[s].access_batch(parts[s], 0);
                          }
                        });
    }
  };

  // Lockstep rep loop with the early-exit criterion applied to the
  // SUMMED per-level deltas. The sum over shards after each rep equals
  // the serial hierarchy's stats after that rep (disjoint sets, same
  // per-shard event sequences), so this loop exits at exactly the rep
  // the serial replay_stream exits at, making the extrapolated totals
  // and steady rates bit-identical — per-shard exit heuristics could
  // fire on shard-local coincidences the serial criterion never sees.
  const std::size_t nlevels = shard_h.front().levels();
  std::vector<CacheStats> prev(nlevels), delta(nlevels),
      prev_delta(nlevels);
  bool have_prev_delta = false;
  std::uint64_t skipped = 0;
  for (int r = 0; r < reps; ++r) {
    run_rep();
    std::vector<CacheStats> now(nlevels);
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t i = 0; i < nlevels; ++i) {
        now[i] += shard_h[s].level(i).stats();
      }
    }
    for (std::size_t i = 0; i < nlevels; ++i) {
      delta[i] = now[i];
      delta[i] -= prev[i];
    }
    prev = now;
    if (opt.early_exit && have_prev_delta && delta == prev_delta &&
        r + 1 < reps) {
      skipped = static_cast<std::uint64_t>(reps - (r + 1));
      break;
    }
    prev_delta = delta;
    have_prev_delta = true;
  }

  // Shard-index-ordered merge (like check::sharded_reports): integer
  // stat sums commute, so the order only matters for determinism of
  // the floating-point steady rates derived below. The extrapolated
  // reps are added once, on the merged totals.
  ReplayResult result{Hierarchy(cfgs), 0, {}};
  for (std::size_t i = 0; i < nlevels; ++i) {
    CacheStats sum = prev[i];
    sum += delta[i].scaled(skipped);
    result.hierarchy.add_stats(i, sum);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    result.hierarchy.merge_telemetry(shard_h[s].telemetry());
  }
  result.accesses = dec.accesses * static_cast<std::uint64_t>(reps);
  push_steady_rates(result, delta);
  count_replay_obs(result.hierarchy.telemetry(), skipped);
  obs::registry().counter("cachesim.sharded_replays").add();
  return result;
}

ReplayResult replay_sharded(const machine::MachineDescriptor& m,
                            const SweepSpec& spec, int reps,
                            std::size_t shards, int jobs,
                            const ReplayOptions& opt) {
  return replay_sharded(hierarchy_configs(m, opt.l2_sharers, opt.l3_sharers),
                        spec, reps, shards, jobs, opt);
}

ReplayResult replay_vector(const std::vector<CacheConfig>& cfgs,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt) {
  (void)opt;  // no decode scratch or early exit on the reference path
  if (reps < 1) throw std::invalid_argument("replay: reps must be >= 1");
  if (cfgs.empty()) {
    throw std::invalid_argument("replay: needs at least one level");
  }
  ReplayResult result{Hierarchy(cfgs), 0, {}};
  const Trace trace = generate_sweep(spec);

  // Warm reps.
  for (int r = 0; r + 1 < reps; ++r) {
    for (const auto& a : trace) {
      result.hierarchy.access(a.addr, a.is_write);
      ++result.accesses;
    }
  }
  // Final rep: measure steady-state per-level miss rates.
  const auto before = level_stats(result.hierarchy);
  for (const auto& a : trace) {
    result.hierarchy.access(a.addr, a.is_write);
    ++result.accesses;
  }
  auto delta = level_stats(result.hierarchy);
  for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= before[i];
  push_steady_rates(result, delta);
  return result;
}

ReplayResult replay_vector(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt) {
  return replay_vector(hierarchy_configs(m, opt.l2_sharers, opt.l3_sharers),
                       spec, reps, opt);
}

}  // namespace sgp::cachesim
