#include "cachesim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sgp::cachesim {

namespace {

constexpr Addr kGuard = 1 << 16;  // space between arrays

}  // namespace

TraceCursor::TraceCursor(const SweepSpec& spec) : spec_(spec) {
  using core::AccessPattern;
  if (spec_.arrays == 0 || spec_.elems == 0) {
    throw std::invalid_argument("generate_sweep: empty spec");
  }
  reads_ = spec_.arrays > 1 ? spec_.arrays - 1 : 1;
  has_write_ = spec_.arrays > 1;
  streams_ = reads_ + (has_write_ ? 1 : 0);
  stride_ = std::max<std::size_t>(1, spec_.stride_elems);

  switch (spec_.pattern) {
    case AccessPattern::Streaming:
    case AccessPattern::Reduction:
    case AccessPattern::Strided:
      // Every element visited once per stream (strided phases cover
      // [0, elems) exactly).
      total_ = static_cast<std::uint64_t>(spec_.elems) * streams_;
      break;
    case AccessPattern::Stencil1D:
      streams_ = 2;  // one 3-read run + one write run per element
      total_ = spec_.elems >= 3
                   ? 4 * static_cast<std::uint64_t>(spec_.elems - 2)
                   : 0;
      break;
    case AccessPattern::Gather:
      streams_ = 2;
      total_ = 2 * static_cast<std::uint64_t>(spec_.elems);
      break;
    case AccessPattern::Sequential:
    case AccessPattern::Sort:
      streams_ = 2;  // read-modify-write per element
      total_ = 2 * static_cast<std::uint64_t>(spec_.elems);
      break;
    case AccessPattern::Stencil2D:
    case AccessPattern::Stencil3D:
    case AccessPattern::BlockedMatrix:
      row_ = std::max<std::size_t>(
          8, static_cast<std::size_t>(std::sqrt(spec_.elems)));
      streams_ = 2 + (spec_.arrays > 1 ? 1 : 0);
      total_ = spec_.elems > row_
                   ? static_cast<std::uint64_t>(spec_.elems - row_) * streams_
                   : 0;
      break;
  }
  rewind();
}

Addr TraceCursor::array_addr(std::size_t array, std::size_t elem) const {
  const Addr span =
      static_cast<Addr>(spec_.elems) * spec_.elem_bytes;
  return spec_.base + static_cast<Addr>(array) * (span + kGuard) +
         static_cast<Addr>(elem) * spec_.elem_bytes;
}

void TraceCursor::rewind() {
  using core::AccessPattern;
  i_ = spec_.pattern == AccessPattern::Stencil1D ? 1 : 0;
  if (spec_.pattern == AccessPattern::Stencil2D ||
      spec_.pattern == AccessPattern::Stencil3D ||
      spec_.pattern == AccessPattern::BlockedMatrix) {
    i_ = row_;
  }
  k_ = 0;
  phase_ = 0;
  stream_ = 0;
  if (spec_.pattern == AccessPattern::Gather) {
    rng_.seed(spec_.seed);
    dist_ = std::uniform_int_distribution<std::size_t>(0, spec_.elems - 1);
  }
}

bool TraceCursor::next(AccessRun& out) {
  using core::AccessPattern;
  const std::uint64_t eb = spec_.elem_bytes;

  switch (spec_.pattern) {
    case AccessPattern::Streaming:
    case AccessPattern::Reduction: {
      if (i_ >= spec_.elems) return false;
      const std::size_t blk = std::min(kRunBlockElems, spec_.elems - i_);
      const bool write = has_write_ && stream_ == reads_;
      out = AccessRun{array_addr(stream_, i_), eb, blk, write};
      if (++stream_ == streams_) {
        stream_ = 0;
        i_ += blk;
      }
      return true;
    }

    case AccessPattern::Strided: {
      while (phase_ < stride_) {
        const std::size_t count =
            phase_ < spec_.elems ? (spec_.elems - phase_ - 1) / stride_ + 1
                                 : 0;
        if (k_ >= count) {
          ++phase_;
          k_ = 0;
          continue;
        }
        const std::size_t blk = std::min(kRunBlockElems, count - k_);
        const std::size_t elem0 = phase_ + k_ * stride_;
        const bool write = has_write_ && stream_ == reads_;
        out = AccessRun{array_addr(stream_, elem0), stride_ * eb, blk, write};
        if (++stream_ == streams_) {
          stream_ = 0;
          k_ += blk;
        }
        return true;
      }
      return false;
    }

    case AccessPattern::Stencil1D: {
      // i-1, i, i+1 from array 0; write array 1 (always, like the
      // legacy generator).
      if (spec_.elems < 3 || i_ + 1 >= spec_.elems) return false;
      if (stream_ == 0) {
        out = AccessRun{array_addr(0, i_ - 1), eb, 3, false};
        stream_ = 1;
      } else {
        out = AccessRun{array_addr(1, i_), 0, 1, true};
        stream_ = 0;
        ++i_;
      }
      return true;
    }

    case AccessPattern::Gather: {
      // index load (sequential) + gathered data load (random).
      if (i_ >= spec_.elems) return false;
      if (stream_ == 0) {
        out = AccessRun{array_addr(0, i_), 0, 1, false};
        stream_ = 1;
      } else {
        out = AccessRun{array_addr(1, dist_(rng_)), 0, 1, false};
        stream_ = 0;
        ++i_;
      }
      return true;
    }

    case AccessPattern::Sequential:
    case AccessPattern::Sort: {
      // A forward sweep with read-modify-write (recurrence-like).
      if (i_ >= spec_.elems) return false;
      out = AccessRun{array_addr(0, i_), 0, 1, stream_ == 1};
      if (++stream_ == 2) {
        stream_ = 0;
        ++i_;
      }
      return true;
    }

    case AccessPattern::Stencil2D:
    case AccessPattern::Stencil3D:
    case AccessPattern::BlockedMatrix: {
      // Row sweep with a re-visited neighbour row one "row" back.
      if (i_ >= spec_.elems) return false;
      if (stream_ == 0) {
        out = AccessRun{array_addr(0, i_), 0, 1, false};
      } else if (stream_ == 1) {
        out = AccessRun{array_addr(0, i_ - row_), 0, 1, false};
      } else {
        out = AccessRun{array_addr(1, i_), 0, 1, true};
      }
      if (++stream_ == streams_) {
        stream_ = 0;
        ++i_;
      }
      return true;
    }
  }
  return false;
}

namespace {

std::vector<CacheStats> level_stats(const Hierarchy& h) {
  std::vector<CacheStats> out;
  out.reserve(h.levels());
  for (std::size_t i = 0; i < h.levels(); ++i) {
    out.push_back(h.level(i).stats());
  }
  return out;
}

void push_steady_rates(ReplayResult& result,
                       const std::vector<CacheStats>& delta) {
  for (const auto& d : delta) {
    const auto acc = d.accesses();
    result.steady_miss_rate.push_back(
        acc == 0 ? 0.0 : static_cast<double>(d.misses()) / acc);
  }
}

}  // namespace

ReplayResult replay_stream(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt) {
  if (reps < 1) throw std::invalid_argument("replay: reps must be >= 1");
  obs::Span span("cachesim.replay");

  ReplayResult result{hierarchy_for(m, opt.l2_sharers, opt.l3_sharers), 0,
                      {}};
  TraceCursor cursor(spec);
  const bool eligible =
      opt.early_exit && spec.pattern != core::AccessPattern::Gather;

  const std::size_t nlevels = result.hierarchy.levels();
  std::vector<CacheStats> prev(nlevels), delta(nlevels),
      prev_delta(nlevels);
  bool have_prev_delta = false;
  std::uint64_t skipped = 0;

  for (int r = 0; r < reps; ++r) {
    cursor.rewind();
    AccessRun run;
    while (cursor.next(run)) result.hierarchy.access_run(run);
    result.accesses += cursor.total_accesses();

    const auto now = level_stats(result.hierarchy);
    for (std::size_t i = 0; i < nlevels; ++i) {
      delta[i] = now[i];
      delta[i] -= prev[i];
    }
    prev = now;

    // Two consecutive reps with identical per-level deltas: the cache
    // state is periodic, so the remaining reps each add exactly this
    // delta again — extrapolate instead of simulating them.
    if (eligible && have_prev_delta && delta == prev_delta &&
        r + 1 < reps) {
      skipped = static_cast<std::uint64_t>(reps - (r + 1));
      for (std::size_t i = 0; i < nlevels; ++i) {
        result.hierarchy.add_stats(i, delta[i].scaled(skipped));
      }
      result.accesses += cursor.total_accesses() * skipped;
      break;
    }
    prev_delta = delta;
    have_prev_delta = true;
  }
  // The final rep's delta (shared by every extrapolated rep) is the
  // steady state, exactly as the legacy last-rep measurement.
  push_steady_rates(result, delta);

  auto& reg = obs::registry();
  const auto& t = result.hierarchy.telemetry();
  reg.counter("cachesim.replays").add();
  reg.counter("cachesim.runs").add(t.runs);
  reg.counter("cachesim.line_segments").add(t.line_segments);
  reg.counter("cachesim.accesses_coalesced").add(t.coalesced);
  reg.counter("cachesim.accesses_simulated").add(t.accesses);
  reg.counter("cachesim.reps_skipped").add(skipped);
  return result;
}

ReplayResult replay_vector(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt) {
  if (reps < 1) throw std::invalid_argument("replay: reps must be >= 1");
  ReplayResult result{hierarchy_for(m, opt.l2_sharers, opt.l3_sharers), 0,
                      {}};
  const Trace trace = generate_sweep(spec);

  // Warm reps.
  for (int r = 0; r + 1 < reps; ++r) {
    for (const auto& a : trace) {
      result.hierarchy.access(a.addr, a.is_write);
      ++result.accesses;
    }
  }
  // Final rep: measure steady-state per-level miss rates.
  const auto before = level_stats(result.hierarchy);
  for (const auto& a : trace) {
    result.hierarchy.access(a.addr, a.is_write);
    ++result.accesses;
  }
  auto delta = level_stats(result.hierarchy);
  for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= before[i];
  push_steady_rates(result, delta);
  return result;
}

}  // namespace sgp::cachesim
