#include "cachesim/cache.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace sgp::cachesim {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_pow2(std::size_t v) {
  std::uint32_t s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  return s;
}

// Invalid-way sentinel. Real tags are addr / line_bytes / num_sets;
// with line_bytes >= 8 a tag never exceeds 2^61, so all-ones is free.
constexpr Addr kInvalidTag = ~Addr{0};

constexpr std::uint32_t kChunkMax =
    std::numeric_limits<std::uint32_t>::max();
}  // namespace

void CacheConfig::validate() const {
  if (!is_pow2(line_bytes) || line_bytes < 8) {
    throw std::invalid_argument(name + ": line size must be a power of two >= 8");
  }
  if (ways == 0 || size_bytes == 0) {
    throw std::invalid_argument(name + ": zero size or ways");
  }
  if (size_bytes % (line_bytes * ways) != 0) {
    throw std::invalid_argument(name +
                                ": size not divisible by line*ways");
  }
  if (!is_pow2(num_sets())) {
    throw std::invalid_argument(name + ": set count must be a power of two");
  }
}

Cache::Cache(CacheConfig config, ShardView shard)
    : config_(std::move(config)) {
  config_.validate();
  line_shift_ = log2_pow2(config_.line_bytes);
  set_shift_ = log2_pow2(config_.num_sets());
  shard_log2_ = shard.count_log2;
  shard_index_ = shard.index;
  if (shard_log2_ > set_shift_) {
    throw std::invalid_argument(config_.name +
                                ": shard count exceeds set count");
  }
  if (shard_index_ >= (std::uint32_t{1} << shard_log2_)) {
    throw std::invalid_argument(config_.name + ": shard index out of range");
  }
  const std::size_t phys_sets = config_.num_sets() >> shard_log2_;
  phys_set_mask_ = phys_sets - 1;
  ways_ = config_.ways;
  lru_ = config_.policy == ReplacementPolicy::LRU;
  write_allocate_ = config_.write_allocate;
  tags_.assign(phys_sets * ways_, kInvalidTag);
  stamps_.assign(phys_sets * ways_, 0);
  dirty_.assign(phys_sets * ways_, 0);
}

bool Cache::access(Addr addr, bool is_write) {
  return access_rw(addr, is_write ? 0u : 1u, is_write ? 1u : 0u).hit;
}

Cache::LineOutcome Cache::access_line(Addr addr, bool is_write,
                                      std::uint64_t n) {
  // Chunking a huge run is exact: after the first chunk the line is
  // resident (or write-around misses keep missing), so the outcome of
  // the first chunk is the outcome of the whole run.
  std::uint32_t first =
      static_cast<std::uint32_t>(n < kChunkMax ? n : kChunkMax);
  LineOutcome out = access_rw(addr, is_write ? 0u : first,
                              is_write ? first : 0u);
  for (std::uint64_t left = n - first; left > 0;) {
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(left < kChunkMax ? left : kChunkMax);
    access_rw(addr, is_write ? 0u : chunk, is_write ? chunk : 0u);
    left -= chunk;
  }
  return out;
}

Cache::LineOutcome Cache::access_rw(Addr addr, std::uint32_t reads,
                                    std::uint32_t writes) {
  assert(reads + std::uint64_t{writes} >= 1);
  assert(((addr >> line_shift_) & ((std::size_t{1} << shard_log2_) - 1)) ==
         shard_index_);
  const std::uint64_t n = std::uint64_t{reads} + writes;
  // Advancing the clock by n up front is equivalent to n single-access
  // bumps: no other line's stamp changes in between, so victim
  // comparisons see the same relative order.
  clock_ += n;
  const std::size_t base = set_of(addr) * ways_;
  const Addr tag = tag_of(addr);
  Addr* const tags = tags_.data() + base;
  const std::size_t ways = ways_;

  // Linear probe over the contiguous tag row; invalid ways hold a
  // sentinel that can never match.
  std::size_t w = 0;
  while (w < ways && tags[w] != tag) ++w;
  if (w != ways) [[likely]] {
    if (lru_) stamps_[base + w] = clock_;
    stats_.read_hits += reads;
    stats_.write_hits += writes;
    dirty_[base + w] = static_cast<std::uint8_t>(dirty_[base + w] |
                                                 (writes != 0));
    return LineOutcome{true, false, 0};
  }

  if (reads == 0 && !write_allocate_) {
    stats_.write_misses += writes;  // write-around: every access misses
    return LineOutcome{false, false, 0};
  }
  // Allocating miss: the first access misses, the remaining n-1 hit
  // the just-installed line (nothing can evict it in between). Reads
  // always allocate, so a read-modify-write segment's writes all hit.
  if (reads > 0) {
    ++stats_.read_misses;
    stats_.read_hits += reads - 1;
    stats_.write_hits += writes;
  } else {
    ++stats_.write_misses;
    stats_.write_hits += writes - 1;
  }

  // Victim: minimum stamp, earliest way on ties. Invalid ways have
  // stamp 0 and valid ones >= 1 (the clock pre-increments), so this is
  // exactly the legacy "first invalid way, else oldest stamp" walk.
  std::uint64_t* const stamps = stamps_.data() + base;
  std::size_t v = 0;
  for (std::size_t i = 1; i < ways; ++i) {
    if (stamps[i] < stamps[v]) v = i;
  }
  LineOutcome out{false, false, 0};
  if (stamps[v] != 0) {
    ++stats_.evictions;
    if (dirty_[base + v]) {
      ++stats_.writebacks;
      out.writeback = true;
      // Reconstruct the victim's full set index from the physical row
      // plus this view's shard class (a victim shares the set — hence
      // the shard — of the incoming line).
      const Addr full_set =
          ((static_cast<Addr>(base / ways) << shard_log2_) | shard_index_);
      out.victim_addr = ((tags[v] << set_shift_) | full_set) << line_shift_;
    }
  }
  tags[v] = tag;
  dirty_[base + v] = static_cast<std::uint8_t>(writes != 0);
  // LRU: last use (after all n accesses). FIFO: fill time (the first).
  stamps[v] = lru_ ? clock_ : clock_ - n + 1;
  return out;
}

std::uint64_t Cache::access_batch(std::span<const LineSegment> segs) {
  std::uint64_t accesses = 0;
  for (const auto& s : segs) {
    accesses += std::uint64_t{s.reads} + s.writes;
    (void)access_rw(s.addr, s.reads, s.writes);
  }
  return accesses;
}

bool Cache::write_back_line(Addr addr) {
  ++clock_;
  const std::size_t base = set_of(addr) * ways_;
  const Addr tag = tag_of(addr);
  Addr* const tags = tags_.data() + base;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (tags[w] == tag) {
      if (lru_) stamps_[base + w] = clock_;
      dirty_[base + w] = 1;
      ++stats_.wb_hits;
      return true;
    }
  }
  ++stats_.wb_misses;
  return false;
}

bool Cache::probe(Addr addr) const {
  const std::size_t base = set_of(addr) * ways_;
  const Addr tag = tag_of(addr);
  for (std::size_t w = 0; w < ways_; ++w) {
    if (tags_[base + w] == tag) return true;
  }
  return false;
}

void Cache::flush() {
  tags_.assign(tags_.size(), kInvalidTag);
  stamps_.assign(stamps_.size(), 0);
  dirty_.assign(dirty_.size(), 0);
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const Addr t : tags_) {
    if (t != kInvalidTag) ++n;
  }
  return n;
}

Hierarchy::Hierarchy(std::vector<CacheConfig> levels, ShardView shard) {
  if (levels.empty()) {
    throw std::invalid_argument("Hierarchy: needs at least one level");
  }
  if (shard.count_log2 > 0) {
    // Sharding partitions lines by address class; that only partitions
    // every level's sets when line geometry is uniform and each level
    // has at least `shards` sets (see max_shards in replay.hpp).
    for (const auto& cfg : levels) {
      if (cfg.line_bytes != levels.front().line_bytes) {
        throw std::invalid_argument(
            "Hierarchy: shard views need uniform line_bytes");
      }
    }
  }
  caches_.reserve(levels.size());
  for (auto& cfg : levels) caches_.emplace_back(std::move(cfg), shard);
  pending_wb_.reserve(caches_.size());
}

std::size_t Hierarchy::access(Addr addr, bool is_write) {
  return process_segment(addr, is_write ? 0u : 1u, is_write ? 1u : 0u);
}

std::size_t Hierarchy::process_segment(Addr addr, std::uint32_t reads,
                                       std::uint32_t writes) {
  const auto out = caches_[0].access_rw(addr, reads, writes);
  if (out.hit) return 0;
  return miss_walk(addr, reads, writes, out);
}

std::size_t Hierarchy::miss_walk(Addr addr, std::uint32_t reads,
                                 std::uint32_t writes,
                                 const Cache::LineOutcome& l1_out) {
  pending_wb_.clear();
  if (l1_out.writeback && caches_.size() > 1) {
    pending_wb_.emplace_back(1, l1_out.victim_addr);
  }
  // A dirty victim of the last level goes straight to memory; its
  // traffic is already counted in that level's writebacks.
  std::size_t served = caches_.size();
  // What continues below L1: an allocating miss (any segment with
  // reads, or a write-allocate L1) installs the line, so only the
  // first access — a read if the segment had any — goes down. A
  // write-around L1 miss installs nothing, so every write of the
  // segment falls through at full multiplicity.
  bool is_write;
  std::uint64_t n_fwd;
  if (reads > 0 || caches_[0].config().write_allocate) {
    is_write = reads == 0;
    n_fwd = 1;
  } else {
    is_write = true;
    n_fwd = writes;
  }
  for (std::size_t i = 1; i < caches_.size(); ++i) {
    const auto out = caches_[i].access_line(addr, is_write, n_fwd);
    if (out.writeback && i + 1 < caches_.size()) {
      pending_wb_.emplace_back(i + 1, out.victim_addr);
    }
    if (out.hit) {
      served = i;
      break;
    }
    if (!(is_write && !caches_[i].config().write_allocate)) n_fwd = 1;
  }
  for (const auto& [level, victim] : pending_wb_) {
    write_back(level, victim);
  }
  return served;
}

void Hierarchy::write_back(std::size_t level, Addr addr) {
  for (std::size_t i = level; i < caches_.size(); ++i) {
    if (caches_[i].write_back_line(addr)) return;  // absorbed
  }
  // Missed every remaining level: the write miss counted at the last
  // level is the DRAM write traffic (see dram_bytes()).
}

void Hierarchy::access_run(const AccessRun& run) {
  ++telemetry_.runs;
  telemetry_.accesses += run.count;
  const Addr line = caches_.front().config().line_bytes;
  Addr addr = run.base;
  std::uint64_t left = run.count;
  while (left > 0) {
    std::uint64_t n = left;
    if (run.step_bytes != 0) {
      const Addr line_end = addr - addr % line + line;
      const std::uint64_t fit = (line_end - 1 - addr) / run.step_bytes + 1;
      n = std::min(left, fit);
    }
    ++telemetry_.line_segments;
    telemetry_.coalesced += n - 1;
    for (std::uint64_t todo = n; todo > 0;) {
      const auto chunk = static_cast<std::uint32_t>(
          todo < kChunkMax ? todo : kChunkMax);
      process_segment(addr, run.is_write ? 0u : chunk,
                      run.is_write ? chunk : 0u);
      todo -= chunk;
    }
    addr += n * run.step_bytes;
    left -= n;
  }
}

void Hierarchy::access_batch(std::span<const LineSegment> segs,
                             std::uint64_t runs) {
  Cache& l1 = caches_[0];
  std::uint64_t accesses = 0;
  if (caches_.size() == 1) {
    accesses = l1.access_batch(segs);
  } else {
    for (const auto& s : segs) {
      accesses += std::uint64_t{s.reads} + s.writes;
      const auto out = l1.access_rw(s.addr, s.reads, s.writes);
      if (!out.hit) [[unlikely]] {
        miss_walk(s.addr, s.reads, s.writes, out);
      }
    }
  }
  telemetry_.runs += runs;
  telemetry_.line_segments += segs.size();
  telemetry_.accesses += accesses;
  telemetry_.coalesced += accesses - segs.size();
}

std::uint64_t Hierarchy::dram_bytes() const {
  // Last-level demand misses are fills from memory; dirty evictions
  // from the last level and writebacks that pass through it unabsorbed
  // are writes to memory.
  const auto& last = caches_.back();
  return (last.stats().misses() + last.stats().writebacks +
          last.stats().wb_misses) *
         last.config().line_bytes;
}

void Hierarchy::merge_telemetry(const RunTelemetry& t) {
  telemetry_.runs += t.runs;
  telemetry_.line_segments += t.line_segments;
  telemetry_.coalesced += t.coalesced;
  telemetry_.accesses += t.accesses;
}

void Hierarchy::flush() {
  for (auto& c : caches_) c.flush();
}

}  // namespace sgp::cachesim
