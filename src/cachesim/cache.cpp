#include "cachesim/cache.hpp"

#include <stdexcept>

namespace sgp::cachesim {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  if (!is_pow2(line_bytes) || line_bytes < 8) {
    throw std::invalid_argument(name + ": line size must be a power of two >= 8");
  }
  if (ways == 0 || size_bytes == 0) {
    throw std::invalid_argument(name + ": zero size or ways");
  }
  if (size_bytes % (line_bytes * ways) != 0) {
    throw std::invalid_argument(name +
                                ": size not divisible by line*ways");
  }
  if (!is_pow2(num_sets())) {
    throw std::invalid_argument(name + ": set count must be a power of two");
  }
}

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  lines_.resize(config_.num_sets() * config_.ways);
}

std::size_t Cache::set_index(Addr addr) const {
  return static_cast<std::size_t>(addr / config_.line_bytes) &
         (config_.num_sets() - 1);
}

Addr Cache::tag_of(Addr addr) const {
  return addr / config_.line_bytes / config_.num_sets();
}

bool Cache::access(Addr addr, bool is_write) {
  return access_line(addr, is_write, 1).hit;
}

Cache::LineOutcome Cache::access_line(Addr addr, bool is_write,
                                      std::uint64_t n) {
  // Advancing the clock by n up front is equivalent to n single-access
  // bumps: no other line's stamp changes in between, so victim
  // comparisons see the same relative order.
  clock_ += n;
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];

  // Hit?
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      if (config_.policy == ReplacementPolicy::LRU) line.stamp = clock_;
      line.dirty = line.dirty || is_write;
      if (is_write) {
        stats_.write_hits += n;
      } else {
        stats_.read_hits += n;
      }
      return LineOutcome{true, false, 0};
    }
  }

  if (is_write && !config_.write_allocate) {
    stats_.write_misses += n;  // write-around: every access misses
    return LineOutcome{false, false, 0};
  }
  // Allocating miss: the first access misses, the remaining n-1 hit
  // the just-installed line (nothing can evict it in between).
  if (is_write) {
    ++stats_.write_misses;
    stats_.write_hits += n - 1;
  } else {
    ++stats_.read_misses;
    stats_.read_hits += n - 1;
  }

  // Choose a victim: an invalid way, else the oldest stamp.
  Line* victim = &base[0];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.stamp < victim->stamp) victim = &line;
  }
  LineOutcome out{false, false, 0};
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.writebacks;
      out.writeback = true;
      out.victim_addr =
          (victim->tag * config_.num_sets() + set) * config_.line_bytes;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  // LRU: last use (after all n accesses). FIFO: fill time (the first).
  victim->stamp = config_.policy == ReplacementPolicy::FIFO
                      ? clock_ - n + 1
                      : clock_;
  return out;
}

bool Cache::write_back_line(Addr addr) {
  ++clock_;
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      if (config_.policy == ReplacementPolicy::LRU) line.stamp = clock_;
      line.dirty = true;
      ++stats_.wb_hits;
      return true;
    }
  }
  ++stats_.wb_misses;
  return false;
}

bool Cache::probe(Addr addr) const {
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line = Line{};
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const auto& line : lines_) {
    if (line.valid) ++n;
  }
  return n;
}

Hierarchy::Hierarchy(std::vector<CacheConfig> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("Hierarchy: needs at least one level");
  }
  caches_.reserve(levels.size());
  for (auto& cfg : levels) caches_.emplace_back(std::move(cfg));
  pending_wb_.reserve(caches_.size());
}

std::size_t Hierarchy::access(Addr addr, bool is_write) {
  return access_segment(addr, is_write, 1);
}

std::size_t Hierarchy::access_segment(Addr addr, bool is_write,
                                      std::uint64_t n) {
  std::size_t served = caches_.size();
  pending_wb_.clear();
  std::uint64_t n_fwd = n;
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    const auto out = caches_[i].access_line(addr, is_write, n_fwd);
    if (out.writeback && i + 1 < caches_.size()) {
      pending_wb_.emplace_back(i + 1, out.victim_addr);
    }
    // A dirty victim of the last level goes straight to memory; its
    // traffic is already counted in that level's writebacks.
    if (out.hit) {
      served = i;
      break;
    }
    // An allocating miss installs the line, so only the segment's first
    // access continues downward; a write-around miss installs nothing
    // and every access of the segment falls through.
    if (!(is_write && !caches_[i].config().write_allocate)) n_fwd = 1;
  }
  for (const auto& [level, victim] : pending_wb_) {
    write_back(level, victim);
  }
  return served;
}

void Hierarchy::write_back(std::size_t level, Addr addr) {
  for (std::size_t i = level; i < caches_.size(); ++i) {
    if (caches_[i].write_back_line(addr)) return;  // absorbed
  }
  // Missed every remaining level: the write miss counted at the last
  // level is the DRAM write traffic (see dram_bytes()).
}

void Hierarchy::access_run(const AccessRun& run) {
  ++telemetry_.runs;
  telemetry_.accesses += run.count;
  const Addr line = caches_.front().config().line_bytes;
  Addr addr = run.base;
  std::uint64_t left = run.count;
  while (left > 0) {
    std::uint64_t n = left;
    if (run.step_bytes != 0) {
      const Addr line_end = addr - addr % line + line;
      const std::uint64_t fit = (line_end - 1 - addr) / run.step_bytes + 1;
      n = std::min(left, fit);
    }
    ++telemetry_.line_segments;
    telemetry_.coalesced += n - 1;
    access_segment(addr, run.is_write, n);
    addr += n * run.step_bytes;
    left -= n;
  }
}

std::uint64_t Hierarchy::dram_bytes() const {
  // Last-level demand misses are fills from memory; dirty evictions
  // from the last level and writebacks that pass through it unabsorbed
  // are writes to memory.
  const auto& last = caches_.back();
  return (last.stats().misses() + last.stats().writebacks +
          last.stats().wb_misses) *
         last.config().line_bytes;
}

void Hierarchy::flush() {
  for (auto& c : caches_) c.flush();
}

}  // namespace sgp::cachesim
