#include "cachesim/cache.hpp"

#include <stdexcept>

namespace sgp::cachesim {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  if (!is_pow2(line_bytes) || line_bytes < 8) {
    throw std::invalid_argument(name + ": line size must be a power of two >= 8");
  }
  if (ways == 0 || size_bytes == 0) {
    throw std::invalid_argument(name + ": zero size or ways");
  }
  if (size_bytes % (line_bytes * ways) != 0) {
    throw std::invalid_argument(name +
                                ": size not divisible by line*ways");
  }
  if (!is_pow2(num_sets())) {
    throw std::invalid_argument(name + ": set count must be a power of two");
  }
}

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  config_.validate();
  lines_.resize(config_.num_sets() * config_.ways);
}

std::size_t Cache::set_index(Addr addr) const {
  return static_cast<std::size_t>(addr / config_.line_bytes) &
         (config_.num_sets() - 1);
}

Addr Cache::tag_of(Addr addr) const {
  return addr / config_.line_bytes / config_.num_sets();
}

bool Cache::access(Addr addr, bool is_write) {
  ++clock_;
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];

  // Hit?
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      if (config_.policy == ReplacementPolicy::LRU) line.stamp = clock_;
      line.dirty = line.dirty || is_write;
      if (is_write) {
        ++stats_.write_hits;
      } else {
        ++stats_.read_hits;
      }
      return true;
    }
  }

  if (is_write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }

  if (is_write && !config_.write_allocate) {
    return false;  // write-around: no fill
  }

  // Choose a victim: an invalid way, else the oldest stamp.
  Line* victim = &base[0];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.stamp < victim->stamp) victim = &line;
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->stamp = clock_;
  return false;
}

bool Cache::probe(Addr addr) const {
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line = Line{};
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const auto& line : lines_) {
    if (line.valid) ++n;
  }
  return n;
}

Hierarchy::Hierarchy(std::vector<CacheConfig> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("Hierarchy: needs at least one level");
  }
  caches_.reserve(levels.size());
  for (auto& cfg : levels) caches_.emplace_back(std::move(cfg));
}

std::size_t Hierarchy::access(Addr addr, bool is_write) {
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i].access(addr, is_write)) return i;
  }
  return caches_.size();
}

std::uint64_t Hierarchy::dram_bytes() const {
  const auto& last = caches_.back();
  return (last.stats().misses() + last.stats().writebacks) *
         last.config().line_bytes;
}

void Hierarchy::flush() {
  for (auto& c : caches_) c.flush();
}

}  // namespace sgp::cachesim
