// Reusable decode scratch for the replay engine.
//
// Replaying a sweep no longer walks the TraceCursor once per rep:
// decode_sweep flattens the cursor's run stream ONCE into a flat
// std::vector<LineSegment> (same-line accesses fused, reads before
// writes) and every rep replays that buffer through
// Hierarchy::access_batch. The buffers live in a ReplayArena that the
// replay engine reuses across calls, so steady-state replays allocate
// nothing: the arena caches the most recent decodes keyed by
// (SweepSpec, line_bytes) and hands back shard-partitioned views for
// the parallel single-replay path without rebuilding them.
//
// Lifetime rules (docs/CACHESIM.md): a DecodedSweep reference returned
// by ReplayArena::decoded stays valid until the arena evicts it (after
// kSlots further distinct decodes) or the arena is destroyed. The
// replay engine's default arena is thread_local — callers that replay
// from multiple threads concurrently either use the default (each
// thread gets its own) or pass explicit per-thread arenas; one arena
// must never be shared across threads without external locking.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/trace.hpp"

namespace sgp::cachesim {

/// One sweep decoded to the flat segment buffer access_batch consumes.
/// For Gather this is where the randomly gathered index stream gets
/// precomputed: the mt19937 draw happens once at decode time, not once
/// per rep.
struct DecodedSweep {
  std::vector<LineSegment> segments;
  std::uint64_t runs = 0;      ///< access runs the cursor emitted
  std::uint64_t accesses = 0;  ///< logical accesses (== cursor total)

  /// Cache key.
  SweepSpec spec;
  std::size_t line_bytes = 0;
  bool valid = false;

  /// Stamp of last use, for LRU slot reuse.
  std::uint64_t last_used = 0;
};

/// Flattens one full sweep into `out.segments`: every run is split at
/// `line_bytes` boundaries and consecutive same-line pieces are fused
/// into read-then-write segments (reads merge only while the segment
/// has no writes yet — a write-then-read pair is never fused, keeping
/// the access order exact). Reuses out.segments' capacity.
void decode_sweep(const SweepSpec& spec, std::size_t line_bytes,
                  DecodedSweep& out);

class ReplayArena {
 public:
  static constexpr std::size_t kSlots = 8;

  /// The decoded segment buffer for (spec, line_bytes), decoding on
  /// first use and serving repeat requests from the slot cache. The
  /// reference is invalidated by arena destruction or after kSlots
  /// distinct further decodes.
  const DecodedSweep& decoded(const SweepSpec& spec,
                              std::size_t line_bytes);

  /// Partitions `dec.segments` into `shards` buffers by line-address
  /// class ((addr >> log2(line_bytes)) & (shards - 1)), preserving
  /// order within each shard. `shards` must be a power of two. The
  /// returned views are owned by the arena and reused by the next
  /// partition call.
  const std::vector<std::vector<LineSegment>>& partition(
      const DecodedSweep& dec, std::size_t shards);

  /// Drops all cached decodes (keeps capacity).
  void clear();

  /// The engine-wide default arena for this thread.
  static ReplayArena& thread_default();

 private:
  std::vector<DecodedSweep> slots_;
  std::vector<std::vector<LineSegment>> shard_bufs_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace sgp::cachesim
