// Zero-materialization streaming replay engine over the trace-driven
// cache simulator.
//
// The legacy path materialized every access of a sweep into a
// std::vector<AccessRecord> and walked it one address at a time —
// O(elems x arrays x reps) memory traffic just to *build* the input.
// Here a pull-based TraceCursor yields AccessRuns (base, step, count,
// is_write) one at a time, Hierarchy::access_run coalesces each run's
// same-line accesses into single tag checks, and replay_stream stops
// simulating reps once the per-level stats deltas of two consecutive
// reps are identical, extrapolating the remaining reps arithmetically
// (exact for the periodic traces every pattern except Gather produces;
// Gather always replays in full).
//
// generate_sweep (trace.hpp) is reimplemented on top of TraceCursor,
// so the materialized trace and the streamed runs are the same access
// sequence by construction and the two replay paths produce
// bit-identical CacheStats — bench/micro_cachesim asserts exactly
// that, per pattern, while measuring the throughput win.
//
// Obs counters (docs/OBSERVABILITY.md): cachesim.replays,
// cachesim.runs, cachesim.line_segments, cachesim.accesses_coalesced,
// cachesim.accesses_simulated, cachesim.reps_skipped; each
// replay_stream is wrapped in a "cachesim.replay" span.
#pragma once

#include <cstdint>
#include <random>

#include "cachesim/cache.hpp"
#include "cachesim/trace.hpp"

namespace sgp::cachesim {

/// Pull-based generator for the access runs of one full sweep over a
/// SweepSpec. Streaming/Strided sweeps are emitted as per-array runs
/// interleaved at a fixed element-block granularity (kRunBlockElems),
/// so each run covers many consecutive same-array elements; the
/// stencil/gather/recurrence patterns keep their per-element run
/// structure. The cursor defines the canonical trace order —
/// generate_sweep flattens exactly this run stream.
class TraceCursor {
 public:
  /// Element-block granularity for Streaming/Strided run emission:
  /// arrays advance in lockstep block by block, preserving the
  /// interleaved locality structure of the legacy element loop.
  static constexpr std::size_t kRunBlockElems = 256;

  /// Throws std::invalid_argument on an empty spec (no arrays or
  /// elements), like generate_sweep.
  explicit TraceCursor(const SweepSpec& spec);

  /// Yields the next run; false once the sweep is exhausted.
  bool next(AccessRun& out);

  /// Restarts the sweep (Gather re-seeds its RNG, so every rep replays
  /// the identical address sequence).
  void rewind();

  /// Exact number of accesses one full sweep emits — what
  /// generate_sweep reserves (and produces).
  std::uint64_t total_accesses() const noexcept { return total_; }

  const SweepSpec& spec() const noexcept { return spec_; }

 private:
  Addr array_addr(std::size_t array, std::size_t elem) const;

  SweepSpec spec_;
  std::size_t reads_ = 1;       ///< arrays read per position
  bool has_write_ = false;      ///< last array is written
  std::size_t streams_ = 1;     ///< runs emitted per position
  std::size_t stride_ = 1;      ///< Strided only
  std::size_t row_ = 0;         ///< Stencil2D/3D/Blocked neighbour row
  std::uint64_t total_ = 0;

  // Position state (reset by rewind).
  std::size_t i_ = 0;       ///< element or block start index
  std::size_t k_ = 0;       ///< index within the current strided phase
  std::size_t phase_ = 0;   ///< strided phase
  std::size_t stream_ = 0;  ///< substream within the current position
  std::mt19937 rng_;
  std::uniform_int_distribution<std::size_t> dist_;
};

struct ReplayOptions {
  int l2_sharers = 1;
  int l3_sharers = 1;
  /// Extrapolate once two consecutive reps have identical per-level
  /// stats deltas. Never applied to Gather.
  bool early_exit = true;
};

/// Streaming replay: cursor + access_run + steady-state early exit.
/// Bit-identical results to replay_vector on every pattern.
ReplayResult replay_stream(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt = {});

/// The legacy vector-materialized path (generate_sweep once, then one
/// Hierarchy::access per record per rep, all reps simulated). Kept as
/// the A/B reference for bench/micro_cachesim and the agreement
/// fuzzers in src/check.
ReplayResult replay_vector(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt = {});

}  // namespace sgp::cachesim
