// Zero-materialization streaming replay engine over the trace-driven
// cache simulator.
//
// The legacy path materialized every access of a sweep into a
// std::vector<AccessRecord> and walked it one address at a time —
// O(elems x arrays x reps) memory traffic just to *build* the input.
// Here the sweep is decoded ONCE (arena.hpp) into a flat
// LineSegment buffer — same-line accesses fused into read-then-write
// segments, Gather's random index stream precomputed — and every rep
// replays that buffer through Hierarchy::access_batch: one
// structure-of-arrays tag probe per segment, no per-rep RNG, no
// per-rep allocation. replay_stream stops simulating reps once the
// per-level stats deltas of two consecutive reps are identical,
// extrapolating the remaining reps arithmetically (exact whenever two
// equal deltas imply a closed state orbit — which holds for every
// pattern, Gather included, because each rep replays the identical
// decoded buffer).
//
// replay_sharded splits ONE replay across set-shards: lines partition
// by (line_addr mod shards), every level's sets partition the same way
// (uniform line size, shards <= min sets — see max_shards), so the
// shards touch disjoint cache state and replay in parallel on the
// src/threading pool while staying bit-identical to the serial replay
// (docs/CACHESIM.md has the determinism argument; the src/check
// three-way oracle enforces it).
//
// generate_sweep (trace.hpp) is reimplemented on top of TraceCursor,
// so the materialized trace, the decoded segment buffer and the
// streamed runs are the same access sequence by construction and all
// replay paths produce bit-identical CacheStats — bench/micro_cachesim
// asserts exactly that, per pattern, while measuring the throughput
// win.
//
// Obs counters (docs/OBSERVABILITY.md): cachesim.replays,
// cachesim.runs, cachesim.line_segments, cachesim.accesses_coalesced,
// cachesim.accesses_simulated, cachesim.reps_skipped,
// cachesim.sharded_replays; each replay is wrapped in a
// "cachesim.replay" span.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/trace.hpp"

namespace sgp::cachesim {

class ReplayArena;

/// Pull-based generator for the access runs of one full sweep over a
/// SweepSpec. Streaming/Strided sweeps are emitted as per-array runs
/// interleaved at a fixed element-block granularity (kRunBlockElems),
/// so each run covers many consecutive same-array elements; the
/// stencil/gather/recurrence patterns keep their per-element run
/// structure. The cursor defines the canonical trace order —
/// generate_sweep flattens exactly this run stream, and decode_sweep
/// (arena.hpp) fuses it into the batch-replay segment buffer.
class TraceCursor {
 public:
  /// Element-block granularity for Streaming/Strided run emission:
  /// arrays advance in lockstep block by block, preserving the
  /// interleaved locality structure of the legacy element loop.
  static constexpr std::size_t kRunBlockElems = 256;

  /// Throws std::invalid_argument on an empty spec (no arrays or
  /// elements), like generate_sweep.
  explicit TraceCursor(const SweepSpec& spec);

  /// Yields the next run; false once the sweep is exhausted.
  bool next(AccessRun& out);

  /// Restarts the sweep (Gather re-seeds its RNG, so every rep replays
  /// the identical address sequence).
  void rewind();

  /// Exact number of accesses one full sweep emits — what
  /// generate_sweep reserves (and produces).
  std::uint64_t total_accesses() const noexcept { return total_; }

  const SweepSpec& spec() const noexcept { return spec_; }

 private:
  Addr array_addr(std::size_t array, std::size_t elem) const;

  SweepSpec spec_;
  std::size_t reads_ = 1;       ///< arrays read per position
  bool has_write_ = false;      ///< last array is written
  std::size_t streams_ = 1;     ///< runs emitted per position
  std::size_t stride_ = 1;      ///< Strided only
  std::size_t row_ = 0;         ///< Stencil2D/3D/Blocked neighbour row
  std::uint64_t total_ = 0;

  // Position state (reset by rewind).
  std::size_t i_ = 0;       ///< element or block start index
  std::size_t k_ = 0;       ///< index within the current strided phase
  std::size_t phase_ = 0;   ///< strided phase
  std::size_t stream_ = 0;  ///< substream within the current position
  std::mt19937 rng_;
  std::uniform_int_distribution<std::size_t> dist_;
};

struct ReplayOptions {
  int l2_sharers = 1;
  int l3_sharers = 1;
  /// Extrapolate once two consecutive reps have identical per-level
  /// stats deltas. Applies to every pattern (Gather replays the same
  /// decoded buffer each rep, so its state orbit closes like any
  /// other pattern's).
  bool early_exit = true;
  /// Decode scratch to (re)use; nullptr picks this thread's default
  /// arena (ReplayArena::thread_default).
  ReplayArena* arena = nullptr;
};

/// Streaming replay: arena-decoded segment buffer + access_batch +
/// steady-state early exit. Bit-identical results to replay_vector on
/// every pattern.
ReplayResult replay_stream(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt = {});

/// Config-level variant: replays on an explicit hierarchy (the
/// l2_sharers/l3_sharers fields of `opt` are ignored — sharing is
/// already baked into the configs). Lets oracles exercise FIFO /
/// write-around / single-level hierarchies the descriptor path never
/// builds.
ReplayResult replay_stream(const std::vector<CacheConfig>& cfgs,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt = {});

/// The legacy vector-materialized path (generate_sweep once, then one
/// Hierarchy::access per record per rep, all reps simulated). Kept as
/// the A/B reference for bench/micro_cachesim and the agreement
/// fuzzers in src/check.
ReplayResult replay_vector(const machine::MachineDescriptor& m,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt = {});

ReplayResult replay_vector(const std::vector<CacheConfig>& cfgs,
                           const SweepSpec& spec, int reps,
                           const ReplayOptions& opt = {});

/// Largest power-of-two shard count replay_sharded accepts for this
/// hierarchy: sharding by line-address class only partitions every
/// level's sets when line geometry is uniform across levels (else 1)
/// and each level has at least `shards` sets; capped at 64.
std::size_t max_shards(const std::vector<CacheConfig>& cfgs);

/// Parallelises ONE replay across `shards` set-shards on the
/// src/threading pool (`jobs` resolved via recommended_jobs; 1 =
/// serial shard loop on the calling thread). Statistics, steady-state
/// rates, dram_bytes and the access count are bit-identical to
/// replay_stream; the merged hierarchy carries statistics only (its
/// line state is cold — probe/resident_lines reflect no residency)
/// and its telemetry reports segments/accesses, not runs. shards == 1
/// delegates to replay_stream; shards must be a power of two and <=
/// max_shards(cfgs) (throws std::invalid_argument otherwise).
ReplayResult replay_sharded(const machine::MachineDescriptor& m,
                            const SweepSpec& spec, int reps,
                            std::size_t shards, int jobs = 1,
                            const ReplayOptions& opt = {});

ReplayResult replay_sharded(const std::vector<CacheConfig>& cfgs,
                            const SweepSpec& spec, int reps,
                            std::size_t shards, int jobs = 1,
                            const ReplayOptions& opt = {});

}  // namespace sgp::cachesim
