#include "cachesim/arena.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "cachesim/replay.hpp"

namespace sgp::cachesim {

namespace {
constexpr std::uint32_t kCountMax =
    std::numeric_limits<std::uint32_t>::max();

/// Appends n same-line accesses at `addr`, fusing into the previous
/// segment when it covers the same line and the order stays exact:
/// writes always merge; reads merge only while the segment has no
/// writes yet (a read after a write must stay a separate segment so
/// the reads-before-writes layout never reorders accesses).
inline void append_accesses(std::vector<LineSegment>& segs, Addr line_mask,
                            Addr addr, std::uint64_t n, bool is_write) {
  while (n > 0) {
    const auto chunk =
        static_cast<std::uint32_t>(n < kCountMax ? n : kCountMax);
    if (!segs.empty()) {
      LineSegment& p = segs.back();
      if (((p.addr ^ addr) & line_mask) == 0) {
        if (is_write) {
          if (p.writes <= kCountMax - chunk) {
            p.writes += chunk;
            n -= chunk;
            continue;
          }
        } else if (p.writes == 0 && p.reads <= kCountMax - chunk) {
          p.reads += chunk;
          n -= chunk;
          continue;
        }
      }
    }
    segs.push_back(is_write ? LineSegment{addr, 0, chunk}
                            : LineSegment{addr, chunk, 0});
    n -= chunk;
  }
}
}  // namespace

void decode_sweep(const SweepSpec& spec, std::size_t line_bytes,
                  DecodedSweep& out) {
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
    throw std::invalid_argument("decode_sweep: line_bytes not a power of two");
  }
  const Addr line_mask = ~(static_cast<Addr>(line_bytes) - 1);
  TraceCursor cursor(spec);
  out.segments.clear();
  out.runs = 0;
  out.accesses = 0;
  AccessRun run;
  while (cursor.next(run)) {
    ++out.runs;
    out.accesses += run.count;
    Addr addr = run.base;
    std::uint64_t left = run.count;
    while (left > 0) {
      std::uint64_t n = left;
      if (run.step_bytes != 0) {
        const Addr line_end = addr - addr % line_bytes + line_bytes;
        const std::uint64_t fit =
            (line_end - 1 - addr) / run.step_bytes + 1;
        n = std::min(left, fit);
      }
      append_accesses(out.segments, line_mask, addr, n, run.is_write);
      addr += n * run.step_bytes;
      left -= n;
    }
  }
  // The decode must account for every access the cursor promises —
  // this is the batch-path analogue of generate_sweep's exact reserve.
  assert(out.accesses == cursor.total_accesses());
  out.spec = spec;
  out.line_bytes = line_bytes;
  out.valid = true;
}

const DecodedSweep& ReplayArena::decoded(const SweepSpec& spec,
                                         std::size_t line_bytes) {
  // Fixed capacity: growing must never reallocate, or the references
  // handed out for still-cached slots would dangle.
  if (slots_.capacity() < kSlots) slots_.reserve(kSlots);
  ++use_clock_;
  DecodedSweep* lru = nullptr;
  for (auto& slot : slots_) {
    if (slot.valid && slot.line_bytes == line_bytes && slot.spec == spec) {
      slot.last_used = use_clock_;
      return slot;
    }
    if (lru == nullptr || slot.last_used < lru->last_used) lru = &slot;
  }
  if (slots_.size() < kSlots) {
    slots_.emplace_back();
    lru = &slots_.back();
  }
  decode_sweep(spec, line_bytes, *lru);
  lru->last_used = use_clock_;
  return *lru;
}

const std::vector<std::vector<LineSegment>>& ReplayArena::partition(
    const DecodedSweep& dec, std::size_t shards) {
  if (shards == 0 || (shards & (shards - 1)) != 0) {
    throw std::invalid_argument("ReplayArena: shard count not a power of two");
  }
  if (shard_bufs_.size() < shards) shard_bufs_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) shard_bufs_[s].clear();
  std::uint32_t line_shift = 0;
  while ((std::size_t{1} << line_shift) < dec.line_bytes) ++line_shift;
  const Addr mask = shards - 1;
  for (const auto& seg : dec.segments) {
    shard_bufs_[static_cast<std::size_t>((seg.addr >> line_shift) & mask)]
        .push_back(seg);
  }
  return shard_bufs_;
}

void ReplayArena::clear() {
  for (auto& slot : slots_) {
    slot.valid = false;
    slot.segments.clear();
    slot.last_used = 0;
  }
}

ReplayArena& ReplayArena::thread_default() {
  thread_local ReplayArena arena;
  return arena;
}

}  // namespace sgp::cachesim
