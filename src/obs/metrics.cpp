#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace sgp::obs {

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives atexit hooks
  return *r;
}

Registry& registry() { return Registry::instance(); }

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

void Registry::gauge_callback(const std::string& name,
                              std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_callbacks_[name] = std::move(fn);
}

MetricsSnapshot Registry::snapshot() const {
  // Callbacks may themselves touch the registry (register a counter on
  // first use), so collect them under the lock but invoke them outside.
  std::vector<std::pair<std::string, std::function<double()>>> callbacks;
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      out.counters.emplace_back(name, c.value());
    }
    out.gauges.reserve(gauges_.size() + gauge_callbacks_.size());
    for (const auto& [name, g] : gauges_) {
      out.gauges.emplace_back(name, g.value());
    }
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.name = name;
      hs.count = h.count();
      hs.sum = h.sum();
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t n = h.bucket(i);
        if (n > 0) hs.buckets.emplace_back(Histogram::bucket_floor(i), n);
      }
      out.histograms.push_back(std::move(hs));
    }
    callbacks.reserve(gauge_callbacks_.size());
    for (const auto& [name, fn] : gauge_callbacks_) {
      callbacks.emplace_back(name, fn);
    }
  }
  for (const auto& [name, fn] : callbacks) {
    out.gauges.emplace_back(name, fn());
  }
  return out;
}

std::string Registry::to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    out += "    " + json_quote(name) + ": " + json_number(v);
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + json_quote(name) + ": " + json_number(v);
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + json_quote(h.name) + ": {\"count\": " +
           json_number(h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [floor, n] : h.buckets) {
      if (!bfirst) out += ", ";
      out += "[" + json_number(floor) + ", " + json_number(n) + "]";
      bfirst = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += "\n}";
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  gauge_callbacks_.clear();
}

}  // namespace sgp::obs
