// Minimal JSON utilities for the observability exporters: string
// escaping, locale-independent number formatting, and a strict
// well-formedness validator (RFC 8259 grammar, no DOM) so every file
// the obs layer writes can be self-checked before it is handed to
// about:tracing/Perfetto or downstream tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sgp::obs {

/// `s` as a quoted JSON string with control characters, quotes and
/// backslashes escaped.
std::string json_quote(std::string_view s);

/// A double as a JSON number token, locale-independent
/// (std::to_chars). Non-finite values have no JSON representation and
/// are emitted as null.
std::string json_number(double v);
std::string json_number(std::uint64_t v);

/// Validates that `text` is one well-formed JSON value. Returns
/// std::nullopt on success, or a human-readable error with an
/// approximate byte offset. This is a validator, not a parser: it
/// builds no tree and allocates nothing but the error string.
std::optional<std::string> json_error(std::string_view text);

inline bool json_valid(std::string_view text) {
  return !json_error(text).has_value();
}

}  // namespace sgp::obs
