#include "obs/manifest.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace sgp::obs {

RunManifest::RunManifest(std::string tool) : tool_(std::move(tool)) {}

RunManifest::Section& RunManifest::section_of(const std::string& name) {
  for (auto& s : sections_) {
    if (s.name == name) return s;
  }
  sections_.push_back(Section{name, {}});
  return sections_.back();
}

void RunManifest::add(const std::string& section, const std::string& key,
                      const std::string& value) {
  section_of(section).entries.push_back(Entry{key, json_quote(value)});
}

void RunManifest::add(const std::string& section, const std::string& key,
                      const char* value) {
  add(section, key, std::string(value));
}

void RunManifest::add(const std::string& section, const std::string& key,
                      double value) {
  section_of(section).entries.push_back(Entry{key, json_number(value)});
}

void RunManifest::add(const std::string& section, const std::string& key,
                      std::uint64_t value) {
  section_of(section).entries.push_back(Entry{key, json_number(value)});
}

void RunManifest::add(const std::string& section, const std::string& key,
                      std::int64_t value) {
  const bool neg = value < 0;
  // Negate in unsigned space: -INT64_MIN overflows int64_t.
  const auto mag = neg ? ~static_cast<std::uint64_t>(value) + 1
                       : static_cast<std::uint64_t>(value);
  section_of(section).entries.push_back(
      Entry{key, (neg ? "-" : "") + json_number(mag)});
}

void RunManifest::add(const std::string& section, const std::string& key,
                      bool value) {
  section_of(section).entries.push_back(
      Entry{key, value ? "true" : "false"});
}

void RunManifest::add_phase(const std::string& name, double wall_s,
                            std::uint64_t requests) {
  phases_.push_back(ManifestPhase{name, wall_s, requests});
}

std::string RunManifest::to_json(const MetricsSnapshot& metrics) const {
  std::string out = "{\n";
  out += "  \"schema\": \"sgp.run-manifest.v1\",\n";
  out += "  \"tool\": " + json_quote(tool_);
  for (const auto& s : sections_) {
    out += ",\n  " + json_quote(s.name) + ": {";
    bool first = true;
    for (const auto& e : s.entries) {
      out += first ? "\n" : ",\n";
      out += "    " + json_quote(e.key) + ": " + e.json_value;
      first = false;
    }
    out += first ? "}" : "\n  }";
  }
  out += ",\n  \"phases\": [";
  bool first = true;
  for (const auto& p : phases_) {
    out += first ? "\n" : ",\n";
    out += "    {\"name\": " + json_quote(p.name) +
           ", \"wall_s\": " + json_number(p.wall_s) +
           ", \"requests\": " + json_number(p.requests) + "}";
    first = false;
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"metrics\": " + Registry::to_json(metrics);
  out += "\n}\n";
  if (const auto err = json_error(out)) {
    throw std::logic_error("RunManifest produced invalid JSON: " + *err);
  }
  return out;
}

void RunManifest::write(const std::string& path,
                        const MetricsSnapshot& metrics) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("RunManifest: cannot open " + path);
  f << to_json(metrics);
  if (!f) throw std::runtime_error("RunManifest: write failed for " + path);
}

}  // namespace sgp::obs
