// Process-wide metrics registry: the single place every subsystem
// (simulator, sweep engine, memo cache, thread pool, suite runner)
// publishes its counts, so one snapshot describes a whole run.
//
// Design rules:
//   * the hot path is lock-free — Counter::add and Histogram::observe
//     are single relaxed atomic RMWs; registration (name lookup) takes
//     a mutex but happens once per call site, which then holds a
//     stable reference;
//   * metrics are process-wide aggregates. Two SimCaches incrementing
//     "engine.cache.hits" add into the same counter; per-instance
//     accounting (the engine's A/B counters) stays with the instance;
//   * metrics are never destroyed, so cached references stay valid for
//     the life of the process. reset() zeroes values in place.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log2-bucket histogram over non-negative integer samples
/// (typically nanoseconds). Bucket 0 holds the value 0; bucket i >= 1
/// holds [2^(i-1), 2^i); the last bucket absorbs everything above.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index a sample lands in.
  static int bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    const int b = std::bit_width(v);  // 1 for v=1, 2 for v in [2,3], ...
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_floor(int i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One histogram, flattened for export (only non-empty buckets).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// (inclusive bucket floor, sample count) for each non-empty bucket,
  /// in ascending floor order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Point-in-time copy of every registered metric, name-sorted (the
/// registry stores names in a std::map), so two snapshots of the same
/// state render identically.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  std::uint64_t counter_or(std::string_view name,
                           std::uint64_t fallback = 0) const;
};

class Registry {
 public:
  /// The process-wide registry (never destroyed).
  static Registry& instance();

  /// Finds or creates; the returned reference is valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// A pull gauge: `fn` is invoked at snapshot time. Re-registering a
  /// name replaces the callback (the engine's tests re-register on a
  /// fresh engine).
  void gauge_callback(const std::string& name,
                      std::function<double()> fn);

  MetricsSnapshot snapshot() const;

  /// JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} for --metrics files and manifests.
  static std::string to_json(const MetricsSnapshot& snap);

  /// Zeroes every counter/gauge/histogram in place and drops gauge
  /// callbacks. References handed out earlier remain valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // node-based maps: values never move once created.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::function<double()>> gauge_callbacks_;
};

/// Shorthand for Registry::instance().
Registry& registry();

}  // namespace sgp::obs
