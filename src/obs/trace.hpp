// Scoped tracing spans with a Chrome trace_event JSON exporter.
//
// A Span is an RAII scope: it records (name, thread, start, duration,
// parent) into the process-wide Tracer when tracing is enabled, and
// costs one relaxed atomic load when it is not — every instrumented
// hot path (Simulator::run, pool chunks) stays effectively free in
// normal runs. Parentage is a thread-local stack of span ids, so spans
// nest naturally within one thread; a dispatching scope crosses thread
// boundaries explicitly by capturing `current_span()` and adopting it
// on the worker with AdoptParent (the thread pool does this for every
// chunk, which is how a whole parallel batch hangs under the batch
// span in the viewer).
//
// The exported file is the Chrome trace_event "JSON object format"
// with complete ("ph":"X") events; open it in about:tracing or
// https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::obs {

/// One completed span, timestamps in microseconds since enable().
struct SpanEvent {
  std::string name;
  std::uint64_t id = 0;      ///< unique per process, 1-based
  std::uint64_t parent = 0;  ///< enclosing span id, 0 = root
  std::uint32_t tid = 0;     ///< small per-thread index, 0-based
  double start_us = 0.0;
  double dur_us = 0.0;
};

class Tracer {
 public:
  /// The process-wide tracer (never destroyed).
  static Tracer& instance();

  /// Starts recording; the trace clock zeroes here.
  void enable();
  /// Stops recording; already-recorded events are kept.
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Copies out every completed span, in completion order.
  std::vector<SpanEvent> events() const;
  /// Drops all recorded events (the clock keeps running).
  void clear();

  /// The whole trace in Chrome trace_event JSON object format.
  std::string chrome_trace_json() const;

  std::size_t event_count() const;

 private:
  friend class Span;
  Tracer() = default;

  void record(SpanEvent ev);
  double now_us() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint32_t> next_tid_{0};
  std::chrono::steady_clock::time_point epoch_{};

  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

/// Shorthand for Tracer::instance().
Tracer& tracer();

/// Id of the innermost live span on this thread (0 outside any span,
/// or when tracing is disabled).
std::uint64_t current_span() noexcept;

/// RAII scope recording one span. Create and destroy on the same
/// thread, strictly LIFO per thread.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually recording.
  bool active() const noexcept { return id_ != 0; }
  std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_us_ = 0.0;
  std::string name_;
};

/// Installs `parent_id` as this thread's current span for the scope's
/// lifetime: spans opened inside hang under a span that lives on
/// another thread. Used by the thread pool to parent worker chunks
/// under the dispatching scope.
class AdoptParent {
 public:
  explicit AdoptParent(std::uint64_t parent_id) noexcept;
  ~AdoptParent();

  AdoptParent(const AdoptParent&) = delete;
  AdoptParent& operator=(const AdoptParent&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace sgp::obs
