#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace sgp::obs {

namespace {

thread_local std::uint64_t tls_current_span = 0;
// 0 = unassigned; stores tid + 1 so a zero-initialised slot is "none".
thread_local std::uint32_t tls_tid_plus1 = 0;

std::uint32_t thread_index(std::atomic<std::uint32_t>& next) {
  if (tls_tid_plus1 == 0) {
    tls_tid_plus1 = next.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return tls_tid_plus1 - 1;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: outlives atexit hooks
  return *t;
}

Tracer& tracer() { return Tracer::instance(); }

std::uint64_t current_span() noexcept { return tls_current_span; }

void Tracer::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(SpanEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<SpanEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::chrome_trace_json() const {
  const auto evs = events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& ev : evs) {
    out += first ? "\n" : ",\n";
    out += "  {\"name\": " + json_quote(ev.name) +
           ", \"cat\": \"sgp\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           json_number(std::uint64_t{ev.tid}) +
           ", \"ts\": " + json_number(ev.start_us) +
           ", \"dur\": " + json_number(ev.dur_us) +
           ", \"args\": {\"id\": " + json_number(ev.id) +
           ", \"parent\": " + json_number(ev.parent) + "}}";
    first = false;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Span::Span(std::string_view name) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  id_ = t.next_id_.fetch_add(1, std::memory_order_relaxed);
  parent_ = tls_current_span;
  tls_current_span = id_;
  name_ = name;
  start_us_ = t.now_us();
}

Span::~Span() {
  if (id_ == 0) return;
  Tracer& t = tracer();
  tls_current_span = parent_;
  // A span that began before disable() still completes its record, so
  // the exported file has no dangling parents.
  SpanEvent ev;
  ev.name = std::move(name_);
  ev.id = id_;
  ev.parent = parent_;
  ev.tid = thread_index(t.next_tid_);
  ev.start_us = start_us_;
  ev.dur_us = t.now_us() - start_us_;
  t.record(std::move(ev));
}

AdoptParent::AdoptParent(std::uint64_t parent_id) noexcept
    : saved_(tls_current_span) {
  // Adopting parent 0 is a no-op rather than a reset: a worker that is
  // mid-span keeps its own context when the dispatcher traced nothing.
  if (parent_id != 0) tls_current_span = parent_id;
}

AdoptParent::~AdoptParent() { tls_current_span = saved_; }

}  // namespace sgp::obs
