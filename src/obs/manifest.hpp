// Run manifests: one JSON per bench/CLI invocation stamping what ran,
// on what, with what configuration and what it counted — the file a
// later analysis (or a CI diff) joins against the CSV artifacts
// written next to it.
//
// The writer is deliberately generic: sections of typed key/value
// pairs plus per-phase timings plus an embedded metrics snapshot. The
// callers (bench_common, suite_cli) decide the vocabulary — machine
// fingerprints, engine counters, argv — so this layer depends on
// nothing above std.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sgp::obs {

/// Wall time and volume of one named run phase.
struct ManifestPhase {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t requests = 0;
};

class RunManifest {
 public:
  explicit RunManifest(std::string tool);

  /// Adds one key under `section` (sections render as nested JSON
  /// objects, keys in insertion order). Re-adding a key appends — the
  /// writer does not deduplicate.
  void add(const std::string& section, const std::string& key,
           const std::string& value);
  void add(const std::string& section, const std::string& key,
           const char* value);
  void add(const std::string& section, const std::string& key,
           double value);
  void add(const std::string& section, const std::string& key,
           std::uint64_t value);
  void add(const std::string& section, const std::string& key,
           std::int64_t value);
  void add(const std::string& section, const std::string& key,
           bool value);

  void add_phase(const std::string& name, double wall_s,
                 std::uint64_t requests);

  /// The complete manifest as a JSON object, embedding `metrics`.
  /// Guaranteed well-formed: the renderer self-checks with json_error
  /// and throws std::logic_error if it ever produced invalid JSON.
  std::string to_json(const MetricsSnapshot& metrics) const;

  /// Renders and writes; throws std::runtime_error on I/O failure.
  void write(const std::string& path,
             const MetricsSnapshot& metrics) const;

 private:
  struct Entry {
    std::string key;
    std::string json_value;  ///< pre-rendered JSON token
  };
  struct Section {
    std::string name;
    std::vector<Entry> entries;
  };

  Section& section_of(const std::string& name);

  std::string tool_;
  std::vector<Section> sections_;  ///< insertion order
  std::vector<ManifestPhase> phases_;
};

}  // namespace sgp::obs
