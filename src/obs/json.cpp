#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace sgp::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xf];
          out += hex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

namespace {

/// Recursive-descent validator over a string_view cursor.
struct Validator {
  std::string_view text;
  std::size_t pos = 0;
  std::optional<std::string> error;

  bool fail(const std::string& what) {
    if (!error) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("bad literal");
    }
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos;
    while (!eof() && peek() != '"') {
      const unsigned char ch = static_cast<unsigned char>(peek());
      if (ch < 0x20) return fail("unescaped control character");
      if (ch == '\\') {
        ++pos;
        if (eof()) return fail("truncated escape");
        const char esc = peek();
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (eof() || !std::isxdigit(
                             static_cast<unsigned char>(peek()))) {
              return fail("bad \\u escape");
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' &&
                   esc != 'b' && esc != 'f' && esc != 'n' &&
                   esc != 'r' && esc != 't') {
          return fail("bad escape");
        }
      }
      ++pos;
    }
    if (eof()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos;
    }
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos;
    if (eof()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;  // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("expected value");
    const char ch = peek();
    if (ch == '{') return object(depth);
    if (ch == '[') return array(depth);
    if (ch == '"') return string();
    if (ch == 't') return literal("true");
    if (ch == 'f') return literal("false");
    if (ch == 'n') return literal("null");
    if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch))) {
      return number();
    }
    return fail("unexpected character");
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

std::optional<std::string> json_error(std::string_view text) {
  Validator v{text};
  if (!v.value(0)) return v.error;
  v.skip_ws();
  if (!v.eof()) v.fail("trailing garbage");
  return v.error;
}

}  // namespace sgp::obs
