// Native execution backend: really runs kernels (serial or on the
// thread pool), timing them and collecting checksums.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "core/run_params.hpp"
#include "core/types.hpp"

namespace sgp::native {

struct KernelRunRecord {
  std::string name;
  core::Group group = core::Group::Basic;
  core::Precision precision = core::Precision::FP64;
  long double checksum = 0.0L;
  double seconds = 0.0;
  std::size_t reps = 0;
  int threads = 1;

  double seconds_per_rep() const {
    return reps == 0 ? 0.0 : seconds / static_cast<double>(reps);
  }
};

class SuiteRunner {
 public:
  /// The registry must outlive the runner. Spawns rp.num_threads workers.
  SuiteRunner(const core::Registry& registry, core::RunParams rp);
  ~SuiteRunner();

  SuiteRunner(const SuiteRunner&) = delete;
  SuiteRunner& operator=(const SuiteRunner&) = delete;

  /// Runs one kernel; throws std::out_of_range for unknown names.
  KernelRunRecord run_one(std::string_view name, core::Precision p);

  /// Runs the whole suite (registry order).
  std::vector<KernelRunRecord> run_all(core::Precision p);

  /// Runs every kernel of one group.
  std::vector<KernelRunRecord> run_group(core::Group g, core::Precision p);

 private:
  const core::Registry& registry_;
  core::RunParams rp_;
  std::unique_ptr<core::Executor> exec_;
};

}  // namespace sgp::native
