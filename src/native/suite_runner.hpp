// Native execution backend: really runs kernels (serial or on the
// thread pool), timing them and collecting checksums. Execution is
// resilient: every kernel ends in a typed Outcome, with optional
// per-kernel soft deadlines, bounded retries, quarantine lists, fault
// injection, and a keep-going mode in which run_all always returns a
// complete record set instead of dying on the first bad kernel.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "core/run_params.hpp"
#include "core/types.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/outcome.hpp"
#include "resilience/retry.hpp"

namespace sgp::native {

struct KernelRunRecord {
  std::string name;
  core::Group group = core::Group::Basic;
  core::Precision precision = core::Precision::FP64;
  long double checksum = 0.0L;
  double seconds = 0.0;
  std::size_t reps = 0;
  int threads = 1;
  resilience::Outcome outcome = resilience::Outcome::Ok;
  std::string error;  ///< what() of the failure; empty when ok/skipped
  int attempts = 1;   ///< attempts consumed (0 when quarantined)

  bool ok() const { return outcome == resilience::Outcome::Ok; }

  double seconds_per_rep() const {
    return reps == 0 ? 0.0 : seconds / static_cast<double>(reps);
  }
};

/// How the runner reacts to kernels that fail, hang, or corrupt data.
/// The default policy preserves the historical strict behaviour:
/// exceptions propagate to the caller, no deadlines, no retries.
struct RunPolicy {
  /// Record failures and continue instead of rethrowing.
  bool keep_going = false;
  /// Per-kernel soft deadline in seconds; 0 disables the watchdog.
  /// Soft: a chunk that never yields is only detected at its next
  /// executor boundary, but the watchdog timestamps the breach exactly.
  double kernel_timeout_s = 0.0;
  /// Bounded retry with exponential backoff for transient faults.
  resilience::RetryPolicy retry;
  /// Kernels to skip entirely (reported as Outcome::Skipped).
  std::vector<std::string> quarantine;
  /// Optional fault injector (not owned; must outlive the runner).
  resilience::FaultInjector* injector = nullptr;

  /// Throws std::invalid_argument on nonsensical parameters (negative
  /// or NaN kernel_timeout_s, bad retry policy). The SuiteRunner
  /// constructor runs this, and CLIs call it at parse time so bad
  /// flags exit 64 before any kernel work starts.
  void validate() const;
};

class SuiteRunner {
 public:
  /// The registry must outlive the runner. Spawns rp.num_threads workers.
  SuiteRunner(const core::Registry& registry, core::RunParams rp);
  SuiteRunner(const core::Registry& registry, core::RunParams rp,
              RunPolicy policy);
  ~SuiteRunner();

  SuiteRunner(const SuiteRunner&) = delete;
  SuiteRunner& operator=(const SuiteRunner&) = delete;

  const RunPolicy& policy() const noexcept { return policy_; }

  /// Runs one kernel under the policy. Throws std::out_of_range (with a
  /// closest-match suggestion) for unknown names in every mode; in
  /// strict mode (!keep_going) kernel failures rethrow the underlying
  /// exception, in keep-going mode they come back as records.
  KernelRunRecord run_one(std::string_view name, core::Precision p);

  /// Runs the whole suite (registry order). With keep_going, always
  /// returns one record per kernel, whatever happened to each.
  std::vector<KernelRunRecord> run_all(core::Precision p);

  /// Runs every kernel of one group.
  std::vector<KernelRunRecord> run_group(core::Group g, core::Precision p);

 private:
  KernelRunRecord run_attempt(std::string_view name, core::Precision p,
                              std::exception_ptr& error_out);
  bool quarantined(std::string_view name) const;

  const core::Registry& registry_;
  core::RunParams rp_;
  RunPolicy policy_;
  std::unique_ptr<core::Executor> exec_;
};

}  // namespace sgp::native
