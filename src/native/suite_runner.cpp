#include "native/suite_runner.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/guard.hpp"
#include "threading/pool.hpp"

namespace sgp::native {

using resilience::Outcome;

namespace {

/// Process-wide suite metrics, aggregated over every SuiteRunner.
struct SuiteMetrics {
  obs::Counter& kernels = obs::registry().counter("suite.kernels");
  obs::Counter& retries = obs::registry().counter("suite.retries");
  obs::Counter& quarantined =
      obs::registry().counter("suite.quarantined");
  obs::Counter& failures = obs::registry().counter("suite.failures");
  obs::Counter& timeouts = obs::registry().counter("suite.timeouts");

  static SuiteMetrics& get() {
    static SuiteMetrics* m = new SuiteMetrics();
    return *m;
  }
};

void count_outcome(const KernelRunRecord& rec) {
  SuiteMetrics& sm = SuiteMetrics::get();
  switch (rec.outcome) {
    case Outcome::Ok:
      break;
    case Outcome::Skipped:
      sm.quarantined.add();
      break;
    case Outcome::TimedOut:
      sm.timeouts.add();
      break;
    default:
      sm.failures.add();
      break;
  }
}

}  // namespace

void RunPolicy::validate() const {
  retry.validate();
  // !(x >= 0) also rejects NaN, which a < comparison would let through.
  if (!(kernel_timeout_s >= 0.0)) {
    throw std::invalid_argument("RunPolicy: kernel_timeout_s must be >= 0");
  }
}

SuiteRunner::SuiteRunner(const core::Registry& registry, core::RunParams rp)
    : SuiteRunner(registry, rp, RunPolicy{}) {}

SuiteRunner::SuiteRunner(const core::Registry& registry, core::RunParams rp,
                         RunPolicy policy)
    : registry_(registry), rp_(rp), policy_(std::move(policy)) {
  policy_.validate();
  if (rp_.num_threads <= 1) {
    exec_ = std::make_unique<core::SerialExecutor>();
  } else {
    exec_ = std::make_unique<threading::ThreadPool>(rp_.num_threads);
  }
}

SuiteRunner::~SuiteRunner() = default;

bool SuiteRunner::quarantined(std::string_view name) const {
  for (const auto& q : policy_.quarantine) {
    if (q == name) return true;
  }
  return false;
}

KernelRunRecord SuiteRunner::run_attempt(std::string_view name,
                                         core::Precision p,
                                         std::exception_ptr& error_out) {
  KernelRunRecord rec;
  rec.name = name;
  rec.group = registry_.group_of(name);
  rec.precision = p;
  rec.threads = rp_.num_threads;

  const resilience::ArmedFault fault =
      policy_.injector ? policy_.injector->arm(name) : resilience::ArmedFault{};

  resilience::CancelToken cancel;
  std::optional<resilience::Watchdog> watchdog;
  const resilience::CancelToken* token = nullptr;
  if (policy_.kernel_timeout_s > 0.0) {
    watchdog.emplace(std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 policy_.kernel_timeout_s)),
                     cancel);
    token = &cancel;
  }
  resilience::GuardedExecutor guarded(*exec_, token, fault,
                                      std::string(name));

  try {
    // A fresh kernel per attempt: a failed attempt may have left data
    // half-initialised, and construction is cheap by contract.
    auto kernel = registry_.create(name);
    const auto result = kernel->run_native(p, rp_, guarded);
    watchdog.reset();  // disarm before classifying
    rec.seconds = result.seconds;
    rec.reps = result.reps;
    rec.checksum = fault.kind == resilience::FaultKind::CorruptChecksum
                       ? std::numeric_limits<long double>::quiet_NaN()
                       : result.checksum;
    if (!std::isfinite(static_cast<double>(rec.checksum))) {
      rec.outcome = Outcome::CorruptChecksum;
      rec.error = "non-finite checksum";
    }
  } catch (const resilience::DeadlineExceeded& e) {
    rec.outcome = Outcome::TimedOut;
    rec.error = e.what();
    error_out = std::current_exception();
  } catch (const std::exception& e) {
    rec.outcome = Outcome::Failed;
    rec.error = e.what();
    error_out = std::current_exception();
  } catch (...) {
    rec.outcome = Outcome::Failed;
    rec.error = "unknown error";
    error_out = std::current_exception();
  }
  return rec;
}

KernelRunRecord SuiteRunner::run_one(std::string_view name,
                                     core::Precision p) {
  if (!registry_.contains(name)) {
    std::string msg = "unknown kernel '" + std::string(name) + "'";
    const std::string hint = registry_.closest(name);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    throw std::out_of_range(msg);
  }
  SuiteMetrics::get().kernels.add();
  const obs::Span span("kernel:" + std::string(name));
  if (quarantined(name)) {
    KernelRunRecord rec;
    rec.name = name;
    rec.group = registry_.group_of(name);
    rec.precision = p;
    rec.threads = rp_.num_threads;
    rec.outcome = Outcome::Skipped;
    rec.error = "quarantined";
    rec.attempts = 0;
    count_outcome(rec);
    return rec;
  }

  const int max_attempts = std::max(1, policy_.retry.max_attempts);
  KernelRunRecord rec;
  std::exception_ptr error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    error = nullptr;
    if (attempt > 1) SuiteMetrics::get().retries.add();
    rec = run_attempt(name, p, error);
    rec.attempts = attempt;
    if (rec.ok() || !resilience::is_retryable(rec.outcome)) break;
    if (attempt < max_attempts) {
      const double pause_ms = policy_.retry.backoff_ms(attempt);
      if (pause_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(pause_ms));
      }
    }
  }

  count_outcome(rec);
  // Strict mode keeps the historical contract: a kernel failure
  // surfaces as the original exception. CorruptChecksum has no
  // exception to rethrow and is reported through the record instead.
  if (!policy_.keep_going && error != nullptr) {
    std::rethrow_exception(error);
  }
  return rec;
}

std::vector<KernelRunRecord> SuiteRunner::run_all(core::Precision p) {
  std::vector<KernelRunRecord> out;
  for (const auto& name : registry_.names()) {
    out.push_back(run_one(name, p));
  }
  return out;
}

std::vector<KernelRunRecord> SuiteRunner::run_group(core::Group g,
                                                    core::Precision p) {
  std::vector<KernelRunRecord> out;
  for (const auto& name : registry_.names(g)) {
    out.push_back(run_one(name, p));
  }
  return out;
}

}  // namespace sgp::native
