#include "native/suite_runner.hpp"

#include "threading/pool.hpp"

namespace sgp::native {

SuiteRunner::SuiteRunner(const core::Registry& registry, core::RunParams rp)
    : registry_(registry), rp_(rp) {
  if (rp_.num_threads <= 1) {
    exec_ = std::make_unique<core::SerialExecutor>();
  } else {
    exec_ = std::make_unique<threading::ThreadPool>(rp_.num_threads);
  }
}

SuiteRunner::~SuiteRunner() = default;

KernelRunRecord SuiteRunner::run_one(std::string_view name,
                                     core::Precision p) {
  auto kernel = registry_.create(name);
  const auto result = kernel->run_native(p, rp_, *exec_);
  KernelRunRecord rec;
  rec.name = kernel->name();
  rec.group = kernel->group();
  rec.precision = p;
  rec.checksum = result.checksum;
  rec.seconds = result.seconds;
  rec.reps = result.reps;
  rec.threads = rp_.num_threads;
  return rec;
}

std::vector<KernelRunRecord> SuiteRunner::run_all(core::Precision p) {
  std::vector<KernelRunRecord> out;
  for (const auto& name : registry_.names()) {
    out.push_back(run_one(name, p));
  }
  return out;
}

std::vector<KernelRunRecord> SuiteRunner::run_group(core::Group g,
                                                    core::Precision p) {
  std::vector<KernelRunRecord> out;
  for (const auto& name : registry_.names(g)) {
    out.push_back(run_one(name, p));
  }
  return out;
}

}  // namespace sgp::native
