// The sgp-serve wire protocol: line-delimited JSON requests in, one
// JSON response line per request out (docs/SERVICE.md documents the
// schema; tests/serve_test.cpp and check::fuzz_requests enforce it).
//
// Request validation is strict: unknown fields, wrong types, unknown
// machines/kernels/enum spellings, out-of-range numbers and oversized
// grids are all rejected with a structured error *before* any
// simulation work is admitted — these option structs feed the same
// engine the trusted CLIs use, so the untrusted boundary is here.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "machine/placement.hpp"
#include "serve/json.hpp"

namespace sgp::serve {

/// Machine-readable failure classes; the wire form is the kebab-case
/// string from to_string(). Classification is deterministic: the same
/// request line always fails the same way (fuzzed).
enum class ErrorCode {
  ParseError,        ///< line is not valid JSON
  BadRequest,        ///< valid JSON, invalid request
  TooLarge,          ///< line or grid over the configured limits
  DuplicateId,       ///< id collides with an in-flight request
  Overloaded,        ///< queue full; retry later
  DeadlineExceeded,  ///< the request's deadline passed
  ShuttingDown,      ///< server is draining; no new work
  Internal,          ///< unexpected failure while evaluating
};

std::string_view to_string(ErrorCode c) noexcept;

struct ServeError {
  ErrorCode code = ErrorCode::BadRequest;
  std::string message;
};

enum class Op {
  Ping,      ///< liveness check, echoes the id
  Simulate,  ///< one evaluation point, explicit scalar fields
  Sweep,     ///< kernels x precisions x threads grid on one machine
  Metrics,   ///< obs registry snapshot as JSON
  Stats,     ///< server + engine counters as JSON
  Drain,     ///< flush persistent segments; keep serving
  Shutdown,  ///< drain, answer, then stop the server loop
};

std::string_view to_string(Op op) noexcept;

enum class Format { Csv, Json };

/// A validated request. Simulation fields are only meaningful for
/// Op::Simulate / Op::Sweep.
struct Request {
  std::string id;
  Op op = Op::Ping;

  std::string machine;                      ///< canonical machine name
  std::vector<std::string> kernels;         ///< canonical kernel names
  std::vector<core::Precision> precisions;  ///< non-empty for sweeps
  std::vector<int> threads;                 ///< non-empty for sweeps
  core::CompilerId compiler = core::CompilerId::Gcc;
  core::VectorMode vector_mode = core::VectorMode::VLS;
  machine::Placement placement = machine::Placement::Block;
  Format format = Format::Csv;

  /// Deadline in milliseconds from admission; unset = no deadline.
  std::optional<double> deadline_ms;
  /// Absolute deadline, stamped at admission by the server.
  std::chrono::steady_clock::time_point deadline{};

  /// Evaluation points this request expands to (kernels x precisions x
  /// threads); 0 for control ops.
  std::size_t points() const noexcept {
    return kernels.size() * precisions.size() * threads.size();
  }

  /// Content fingerprint over every semantic field except the id —
  /// the request-coalescing key: two requests with equal fingerprints
  /// produce byte-identical payloads, so only one is evaluated.
  std::uint64_t fingerprint() const;
};

struct ProtocolLimits {
  std::size_t max_line_bytes = 1 << 20;   ///< one request line
  std::size_t max_points = 4096;          ///< grid size per request
  std::size_t max_id_bytes = 128;
  double max_deadline_ms = 3600.0 * 1000.0;
  JsonLimits json;
};

/// Parses and validates one request line. The failure side carries the
/// id when one was recoverable from the line (so the error response can
/// still be correlated), as `.first` of the pair.
using ParseOutcome =
    std::variant<Request, std::pair<std::string, ServeError>>;
ParseOutcome parse_request(std::string_view line,
                           const ProtocolLimits& limits);

/// Servable machine names in registration order (sg2042 first):
/// machine::shared_registry()'s current listing — built-ins plus any
/// INI packs registered at startup.
std::vector<std::string> known_machines();

/// Descriptor for a registered machine name; nullptr when unknown. The
/// returned pointer is stable for the life of the process (the server
/// borrows it in engine::SweepPoint); it comes straight from
/// machine::shared_registry().
const machine::MachineDescriptor* machine_by_name(std::string_view name);

// ------------------------------------------------- response lines --

/// {"id":...,"ok":false,"error":{"code":...,"message":...}}; `id`
/// empty renders as null (the line never yielded an id).
std::string render_error(std::string_view id, const ServeError& err);

/// Success envelope with an embedded payload: {"id":...,"ok":true,
/// "op":...,"points":N,"format":...,"payload":"..."} for result ops;
/// `raw_json` fields (metrics/stats) are embedded unquoted.
struct ResponseBody {
  std::size_t points = 0;
  std::optional<Format> format;
  std::optional<std::string> payload;   ///< quoted+escaped on the wire
  std::optional<std::string> raw_json;  ///< pre-rendered JSON object
  std::string raw_key = "stats";        ///< wire key for raw_json
};

std::string render_ok(std::string_view id, Op op, const ResponseBody& body);

}  // namespace sgp::serve
