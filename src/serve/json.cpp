#include "serve/json.hpp"

#include <charconv>
#include <cstddef>

namespace sgp::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (s.empty() || s.size() > 20) return std::nullopt;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  // No leading zeros (except "0" itself): "007" is not a canonical
  // integer and accepting it would make duplicate-request detection
  // depend on formatting.
  if (s.size() > 1 && s[0] == '0') return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

namespace {

/// Recursive-descent parser over a string_view; positions double as
/// error offsets. All failures funnel through fail() so the error
/// message is set exactly once (the first problem wins).
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonParse run() {
    JsonParse out;
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) {
      out.error = error_;
      out.offset = error_pos_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.error = "trailing bytes after JSON value";
      out.offset = pos_;
      return out;
    }
    out.value = std::move(v);
    return out;
  }

 private:
  bool fail(std::string msg) {
    if (error_.empty()) {
      error_ = std::move(msg);
      error_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool count_element() {
    if (++elements_ > limits_.max_elements) {
      return fail("too many elements (limit " +
                  std::to_string(limits_.max_elements) + ")");
    }
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > limits_.max_depth) {
      return fail("nesting too deep (limit " +
                  std::to_string(limits_.max_depth) + ")");
    }
    if (!count_element()) return false;
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n': return parse_literal("null", out, JsonValue::Kind::Null);
      case 't': {
        if (!parse_literal("true", out, JsonValue::Kind::Bool)) return false;
        out.boolean = true;
        return true;
      }
      case 'f': {
        if (!parse_literal("false", out, JsonValue::Kind::Bool)) return false;
        out.boolean = false;
        return true;
      }
      case '"': return parse_string(out.string) &&
                       (out.kind = JsonValue::Kind::String, true);
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default:  return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, JsonValue& out,
                     JsonValue::Kind kind) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("invalid literal");
    }
    pos_ += lit.size();
    out.kind = kind;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') {
      pos_ = start;
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit expected after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit expected in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || ptr != tok.data() + tok.size()) {
      pos_ = start;
      return fail("number out of range");
    }
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    out.raw.assign(tok);
    return true;
  }

  /// Validates one UTF-8 sequence starting at pos_ inside a string and
  /// appends it to `out`. RFC 3629: no overlong forms, no surrogates,
  /// nothing above U+10FFFF.
  bool consume_utf8(std::string& out) {
    const unsigned char b0 = static_cast<unsigned char>(peek());
    int len = 0;
    std::uint32_t cp = 0;
    if (b0 < 0x80) {
      len = 1;
      cp = b0;
    } else if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1Fu;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0Fu;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07u;
    } else {
      return fail("invalid UTF-8 byte in string");
    }
    if (pos_ + static_cast<std::size_t>(len) > text_.size()) {
      return fail("truncated UTF-8 sequence in string");
    }
    for (int i = 1; i < len; ++i) {
      const unsigned char b = static_cast<unsigned char>(text_[pos_ + i]);
      if ((b & 0xC0) != 0x80) return fail("invalid UTF-8 continuation byte");
      cp = (cp << 6) | (b & 0x3Fu);
    }
    static constexpr std::uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800,
                                                    0x10000};
    if (len > 1 && cp < kMinForLen[len]) {
      return fail("overlong UTF-8 encoding");
    }
    if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
      return fail("invalid Unicode code point");
    }
    out.append(text_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      std::uint32_t d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid hex digit in \\u escape");
      }
      out = (out << 4) | d;
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      if (out.size() > limits_.max_string_bytes) {
        return fail("string too long (limit " +
                    std::to_string(limits_.max_string_bytes) + " bytes)");
      }
      const char c = peek();
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        if (!consume_utf8(out)) return false;
        continue;
      }
      ++pos_;  // backslash
      if (at_end()) return fail("truncated escape sequence");
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"':  out.push_back('"');  break;
        case '\\': out.push_back('\\'); break;
        case '/':  out.push_back('/');  break;
        case 'b':  out.push_back('\b'); break;
        case 'f':  out.push_back('\f'); break;
        case 'n':  out.push_back('\n'); break;
        case 'r':  out.push_back('\r'); break;
        case 't':  out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate in \\u escape");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          return fail("invalid escape character");
      }
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("',' or ']' expected in array");
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        return fail("object key must be a string");
      }
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr) {
        return fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      if (at_end() || peek() != ':') return fail("':' expected after key");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("',' or '}' expected in object");
    }
  }

  std::string_view text_;
  const JsonLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t elements_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

JsonParse json_parse(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).run();
}

}  // namespace sgp::serve
