#include "serve/protocol.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "engine/fingerprint.hpp"
#include "kernels/register_all.hpp"
#include "machine/descriptor.hpp"
#include "machine/registry.hpp"
#include "obs/json.hpp"

namespace sgp::serve {

std::string_view to_string(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::ParseError:       return "parse-error";
    case ErrorCode::BadRequest:       return "bad-request";
    case ErrorCode::TooLarge:         return "too-large";
    case ErrorCode::DuplicateId:      return "duplicate-id";
    case ErrorCode::Overloaded:       return "overloaded";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::ShuttingDown:     return "shutting-down";
    case ErrorCode::Internal:         return "internal";
  }
  return "?";
}

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::Ping:     return "ping";
    case Op::Simulate: return "simulate";
    case Op::Sweep:    return "sweep";
    case Op::Metrics:  return "metrics";
    case Op::Stats:    return "stats";
    case Op::Drain:    return "drain";
    case Op::Shutdown: return "shutdown";
  }
  return "?";
}

std::vector<std::string> known_machines() {
  return machine::shared_registry().names();
}

namespace {

/// Registry-backed kernel name validation with did-you-mean.
const core::Registry& kernel_registry() {
  static const core::Registry reg = kernels::make_registry();
  return reg;
}

struct FieldError {
  ServeError err;
};

[[noreturn]] void bad(std::string message) {
  throw FieldError{{ErrorCode::BadRequest, std::move(message)}};
}

[[noreturn]] void too_large(std::string message) {
  throw FieldError{{ErrorCode::TooLarge, std::move(message)}};
}

std::string field_str(const JsonValue& v, std::string_view name,
                      std::size_t max_bytes) {
  if (!v.is_string()) {
    bad("field '" + std::string(name) + "' must be a string");
  }
  if (v.string.empty()) {
    bad("field '" + std::string(name) + "' must not be empty");
  }
  if (v.string.size() > max_bytes) {
    too_large("field '" + std::string(name) + "' exceeds " +
              std::to_string(max_bytes) + " bytes");
  }
  return v.string;
}

/// Strict unsigned-integer field: a JSON number whose *raw token*
/// round-trips through the shared parse_u64 parser — "-1", "4.0" and
/// "1e3" are all rejected, and values above 2^53 keep full precision
/// (the same parser suite_cli's --inject-seed now uses).
std::uint64_t field_u64(const JsonValue& v, std::string_view name,
                        std::uint64_t max_value) {
  std::optional<std::uint64_t> parsed;
  if (v.is_number()) {
    parsed = parse_u64(v.raw);
  } else if (v.is_string()) {
    parsed = parse_u64(v.string);
  }
  if (!parsed) {
    bad("field '" + std::string(name) +
        "' must be a non-negative integer");
  }
  if (*parsed > max_value) {
    bad("field '" + std::string(name) + "' must be <= " +
        std::to_string(max_value));
  }
  return *parsed;
}

double field_pos_double(const JsonValue& v, std::string_view name,
                        double max_value) {
  if (!v.is_number() || !(v.number > 0.0)) {
    bad("field '" + std::string(name) + "' must be a positive number");
  }
  if (v.number > max_value) {
    bad("field '" + std::string(name) + "' must be <= " +
        obs::json_number(max_value));
  }
  return v.number;
}

Op parse_op(const std::string& s) {
  for (const Op op : {Op::Ping, Op::Simulate, Op::Sweep, Op::Metrics,
                      Op::Stats, Op::Drain, Op::Shutdown}) {
    if (s == to_string(op)) return op;
  }
  bad("unknown op '" + s + "'");
}

std::vector<core::Precision> parse_precision(const std::string& s) {
  if (s == "fp32") return {core::Precision::FP32};
  if (s == "fp64") return {core::Precision::FP64};
  if (s == "both") {
    return {core::Precision::FP32, core::Precision::FP64};
  }
  bad("unknown precision '" + s + "' (fp32 | fp64 | both)");
}

core::CompilerId parse_compiler(const std::string& s) {
  if (s == "gcc") return core::CompilerId::Gcc;
  if (s == "clang") return core::CompilerId::Clang;
  bad("unknown compiler '" + s + "' (gcc | clang)");
}

core::VectorMode parse_vector_mode(const std::string& s) {
  if (s == "scalar") return core::VectorMode::Scalar;
  if (s == "vls") return core::VectorMode::VLS;
  if (s == "vla") return core::VectorMode::VLA;
  bad("unknown vector mode '" + s + "' (scalar | vls | vla)");
}

machine::Placement parse_placement(const std::string& s) {
  for (const auto p : machine::all_placements) {
    if (s == machine::to_string(p)) return p;
  }
  bad("unknown placement '" + s + "' (block | cyclic | cluster)");
}

Format parse_format(const std::string& s) {
  if (s == "csv") return Format::Csv;
  if (s == "json") return Format::Json;
  bad("unknown format '" + s + "' (csv | json)");
}

/// Fields every op accepts; simulation ops accept the rest too.
bool is_simulation_field(std::string_view k) {
  return k == "machine" || k == "kernel" || k == "kernels" ||
         k == "precision" || k == "threads" || k == "compiler" ||
         k == "vector" || k == "placement" || k == "format";
}

Request build_request(const JsonValue& root, const ProtocolLimits& limits) {
  Request req;
  const JsonValue* id = root.find("id");
  if (id == nullptr) bad("missing field 'id'");
  req.id = field_str(*id, "id", limits.max_id_bytes);
  const JsonValue* op = root.find("op");
  if (op == nullptr) bad("missing field 'op'");
  req.op = parse_op(field_str(*op, "op", 32));

  const bool sim_op = req.op == Op::Simulate || req.op == Op::Sweep;
  for (const auto& [key, value] : root.object) {
    (void)value;
    if (key == "id" || key == "op" || key == "deadline_ms") continue;
    if (sim_op && is_simulation_field(key)) continue;
    bad("unknown field '" + key + "' for op '" +
        std::string(to_string(req.op)) + "'");
  }

  if (const JsonValue* dl = root.find("deadline_ms")) {
    req.deadline_ms = field_pos_double(*dl, "deadline_ms",
                                       limits.max_deadline_ms);
  }
  if (!sim_op) return req;

  // ------------------------------------------ simulation fields --
  const JsonValue* mach = root.find("machine");
  if (mach == nullptr) bad("missing field 'machine'");
  req.machine = field_str(*mach, "machine", 64);
  const auto& registry = machine::shared_registry();
  if (!registry.contains(req.machine)) {
    std::string known;
    for (const auto& name : registry.names()) {
      known += known.empty() ? name : " | " + name;
    }
    std::string msg = "unknown machine '" + req.machine + "' (" + known + ")";
    const std::string hint = registry.closest(req.machine);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    bad(msg);
  }
  const int num_cores = registry.descriptor(req.machine).num_cores;

  if (root.find("kernel") != nullptr && root.find("kernels") != nullptr) {
    bad("fields 'kernel' and 'kernels' are mutually exclusive");
  }
  if (const JsonValue* k = root.find("kernel")) {
    req.kernels.push_back(field_str(*k, "kernel", 64));
  } else if (const JsonValue* ks = root.find("kernels")) {
    if (!ks->is_array() || ks->array.empty()) {
      bad("field 'kernels' must be a non-empty array of kernel names");
    }
    for (const auto& k : ks->array) {
      req.kernels.push_back(field_str(k, "kernels[]", 64));
    }
  } else {
    req.kernels = kernel_registry().names();  // default: the full suite
  }
  std::set<std::string> seen;
  for (const auto& k : req.kernels) {
    if (!kernel_registry().contains(k)) {
      const std::string close = kernel_registry().closest(k);
      bad("unknown kernel '" + k + "'" +
          (close.empty() ? "" : " (did you mean '" + close + "'?)"));
    }
    if (!seen.insert(k).second) bad("duplicate kernel '" + k + "'");
  }

  req.precisions = {core::Precision::FP32, core::Precision::FP64};
  if (const JsonValue* p = root.find("precision")) {
    req.precisions = parse_precision(field_str(*p, "precision", 16));
  }
  req.threads = {1};
  if (const JsonValue* t = root.find("threads")) {
    req.threads.clear();
    if (t->is_array()) {
      if (t->array.empty()) {
        bad("field 'threads' must not be an empty array");
      }
      for (const auto& e : t->array) {
        req.threads.push_back(static_cast<int>(
            field_u64(e, "threads[]", static_cast<std::uint64_t>(
                                          num_cores))));
      }
    } else {
      req.threads.push_back(static_cast<int>(field_u64(
          *t, "threads", static_cast<std::uint64_t>(num_cores))));
    }
    std::set<int> tseen;
    for (const int n : req.threads) {
      if (n < 1) bad("field 'threads' entries must be >= 1");
      if (!tseen.insert(n).second) {
        bad("duplicate thread count " + std::to_string(n));
      }
    }
  }
  if (const JsonValue* c = root.find("compiler")) {
    req.compiler = parse_compiler(field_str(*c, "compiler", 16));
  }
  if (const JsonValue* v = root.find("vector")) {
    req.vector_mode = parse_vector_mode(field_str(*v, "vector", 16));
  }
  if (const JsonValue* p = root.find("placement")) {
    req.placement = parse_placement(field_str(*p, "placement", 16));
  }
  if (const JsonValue* f = root.find("format")) {
    req.format = parse_format(field_str(*f, "format", 16));
  }
  if (req.op == Op::Simulate && req.points() != 1) {
    bad("op 'simulate' takes exactly one kernel, precision and thread "
        "count (" + std::to_string(req.points()) +
        " points requested; use op 'sweep')");
  }
  if (req.points() > limits.max_points) {
    too_large("request expands to " + std::to_string(req.points()) +
              " evaluation points (limit " +
              std::to_string(limits.max_points) + ")");
  }
  return req;
}

}  // namespace

const machine::MachineDescriptor* machine_by_name(std::string_view name) {
  const auto& registry = machine::shared_registry();
  if (!registry.contains(name)) return nullptr;
  return &registry.descriptor(name);
}

std::uint64_t Request::fingerprint() const {
  engine::Fnv1a fp;
  fp.str(to_string(op));
  fp.str(machine);
  fp.u64(kernels.size());
  for (const auto& k : kernels) fp.str(k);
  fp.u64(precisions.size());
  for (const auto p : precisions) fp.str(core::to_string(p));
  fp.u64(threads.size());
  for (const int t : threads) fp.i32(t);
  fp.str(core::to_string(compiler));
  fp.str(core::to_string(vector_mode));
  fp.str(machine::to_string(placement));
  fp.str(format == Format::Csv ? "csv" : "json");
  return fp.digest();
}

ParseOutcome parse_request(std::string_view line,
                           const ProtocolLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    return std::make_pair(
        std::string(),
        ServeError{ErrorCode::TooLarge,
                   "request line exceeds " +
                       std::to_string(limits.max_line_bytes) + " bytes"});
  }
  const JsonParse parsed = json_parse(line, limits.json);
  if (!parsed.ok()) {
    return std::make_pair(
        std::string(),
        ServeError{ErrorCode::ParseError,
                   parsed.error + " (near byte " +
                       std::to_string(parsed.offset) + ")"});
  }
  if (!parsed.value->is_object()) {
    return std::make_pair(
        std::string(),
        ServeError{ErrorCode::BadRequest, "request must be a JSON object"});
  }
  // Recover the id for error correlation even when validation fails.
  std::string id;
  if (const JsonValue* v = parsed.value->find("id");
      v != nullptr && v->is_string() &&
      v->string.size() <= limits.max_id_bytes) {
    id = v->string;
  }
  try {
    return build_request(*parsed.value, limits);
  } catch (const FieldError& e) {
    return std::make_pair(id, e.err);
  }
}

std::string render_error(std::string_view id, const ServeError& err) {
  std::string out = "{\"id\":";
  out += id.empty() ? "null" : obs::json_quote(id);
  out += ",\"ok\":false,\"error\":{\"code\":";
  out += obs::json_quote(to_string(err.code));
  out += ",\"message\":";
  out += obs::json_quote(err.message);
  out += "}}";
  return out;
}

std::string render_ok(std::string_view id, Op op,
                      const ResponseBody& body) {
  std::string out = "{\"id\":";
  out += obs::json_quote(id);
  out += ",\"ok\":true,\"op\":";
  out += obs::json_quote(to_string(op));
  if (body.points > 0) {
    out += ",\"points\":";
    out += obs::json_number(static_cast<std::uint64_t>(body.points));
  }
  if (body.format) {
    out += ",\"format\":";
    out += obs::json_quote(*body.format == Format::Csv ? "csv" : "json");
  }
  if (body.raw_json) {
    out += ",\"" + body.raw_key + "\":";
    out += *body.raw_json;
  }
  if (body.payload) {
    out += ",\"payload\":";
    out += obs::json_quote(*body.payload);
  }
  out += "}";
  return out;
}

}  // namespace sgp::serve
