#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <iostream>
#include <map>
#include <span>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "kernels/register_all.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/csv.hpp"
#include "resilience/guard.hpp"
#include "threading/pool.hpp"

namespace sgp::serve {

namespace {

/// Points evaluated per engine batch between deadline checks: small
/// enough that a fired watchdog stops burning simulator time quickly,
/// large enough that the engine's thread pool stays busy.
constexpr std::size_t kChunkPoints = 32;

/// Evaluation abandoned because the group's watchdog fired.
struct EvaluationCancelled {};

struct ServeMetrics {
  obs::Counter& lines = obs::registry().counter("serve.lines");
  obs::Counter& accepted = obs::registry().counter("serve.accepted");
  obs::Counter& responses = obs::registry().counter("serve.responses");
  obs::Counter& errors = obs::registry().counter("serve.errors");
  obs::Counter& parse_errors =
      obs::registry().counter("serve.parse_errors");
  obs::Counter& rejected_overload =
      obs::registry().counter("serve.rejected_overload");
  obs::Counter& rejected_shutdown =
      obs::registry().counter("serve.rejected_shutdown");
  obs::Counter& duplicate_ids =
      obs::registry().counter("serve.duplicate_ids");
  obs::Counter& deadline_exceeded =
      obs::registry().counter("serve.deadline_exceeded");
  obs::Counter& coalesced = obs::registry().counter("serve.coalesced");
  obs::Counter& batches = obs::registry().counter("serve.batches");
  obs::Counter& points = obs::registry().counter("serve.points");
  obs::Histogram& request_ns =
      obs::registry().histogram("serve.request_ns");
  obs::Histogram& batch_requests =
      obs::registry().histogram("serve.batch_requests");

  static ServeMetrics& get() {
    static ServeMetrics* m = new ServeMetrics();
    return *m;
  }
};

/// Kernel name -> signature, built once (signatures are borrowed by
/// engine::SweepPoint, so storage must be stable).
const std::map<std::string, core::KernelSignature>& signature_map() {
  static const std::map<std::string, core::KernelSignature> sigs = [] {
    std::map<std::string, core::KernelSignature> out;
    for (auto& sig : kernels::all_signatures()) {
      out.emplace(sig.name, std::move(sig));
    }
    return out;
  }();
  return sigs;
}

std::string bool_str(bool b) { return b ? "true" : "false"; }

}  // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
  engine::EngineOptions eopt;
  eopt.jobs = opt_.jobs;
  if (opt_.persist_dir) {
    engine::EnginePersistence p;
    p.store.dir = *opt_.persist_dir;
    p.store.warn = opt_.warn;
    // Flush at the end of every batch: the daemon's durability story is
    // "whatever was answered is on disk once the batch retires".
    p.flush_min_entries = 1;
    p.note = "sgp-serve";
    eopt.persist = std::move(p);
  }
  engine_ = std::make_unique<engine::SweepEngine>(std::move(eopt));
  worker_ = std::thread([this] { worker_loop(); });
}

Server::~Server() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_worker_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

bool Server::stopped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stopped_;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Server::submit_line(std::string line, Respond respond) {
  auto& metrics = ServeMetrics::get();
  metrics.lines.add();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.lines;
  }
  auto reject = [&](const std::string& id, const ServeError& err) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.responses;
      ++stats_.errors;
      switch (err.code) {
        case ErrorCode::ParseError: ++stats_.parse_errors; break;
        case ErrorCode::Overloaded: ++stats_.rejected_overload; break;
        case ErrorCode::ShuttingDown: ++stats_.rejected_shutdown; break;
        case ErrorCode::DuplicateId: ++stats_.duplicate_ids; break;
        default: break;
      }
    }
    metrics.responses.add();
    metrics.errors.add();
    if (err.code == ErrorCode::ParseError) metrics.parse_errors.add();
    if (err.code == ErrorCode::Overloaded) {
      metrics.rejected_overload.add();
    }
    if (err.code == ErrorCode::ShuttingDown) {
      metrics.rejected_shutdown.add();
    }
    if (err.code == ErrorCode::DuplicateId) metrics.duplicate_ids.add();
    respond(render_error(id, err));
  };

  ParseOutcome outcome = parse_request(line, opt_.limits);
  if (auto* failed =
          std::get_if<std::pair<std::string, ServeError>>(&outcome)) {
    reject(failed->first, failed->second);
    return;
  }
  Request req = std::move(std::get<Request>(outcome));

  Pending p;
  p.admitted = std::chrono::steady_clock::now();
  if (req.deadline_ms) {
    req.deadline =
        p.admitted + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             *req.deadline_ms));
  }
  std::optional<ServeError> rejection;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) {
      rejection = ServeError{
          ErrorCode::ShuttingDown,
          "server is shutting down; request rejected"};
    } else if (queue_.size() >= opt_.max_queue) {
      rejection = ServeError{
          ErrorCode::Overloaded,
          "queue full (" + std::to_string(opt_.max_queue) +
              " requests); retry later"};
    } else if (!inflight_ids_.insert(req.id).second) {
      rejection = ServeError{
          ErrorCode::DuplicateId,
          "request id '" + req.id + "' is already in flight"};
    } else {
      ++stats_.accepted;
      if (req.op == Op::Shutdown) draining_ = true;
      p.req = std::move(req);
      p.respond = std::move(respond);
      queue_.push_back(std::move(p));
      metrics.accepted.add();
    }
  }
  if (rejection) {
    reject(req.id, *rejection);
    return;
  }
  cv_.notify_one();
}

void Server::drain() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    paused_ = false;
    cv_.notify_all();
    cv_drained_.wait(lk, [&] {
      return queue_.empty() && !worker_busy_;
    });
  }
  if (engine_->persistent()) engine_->flush_persistent();
}

void Server::pause() {
  std::unique_lock<std::mutex> lk(mu_);
  paused_ = true;
  cv_drained_.wait(lk, [&] { return !worker_busy_; });
}

void Server::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] {
        return stop_worker_ || (!queue_.empty() && !paused_);
      });
      if (stop_worker_ && queue_.empty()) return;
      worker_busy_ = true;
      while (!queue_.empty() && batch.size() < opt_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
    }
    ServeMetrics::get().batches.add();
    ServeMetrics::get().batch_requests.observe(batch.size());
    process_batch(std::move(batch));
    {
      std::lock_guard<std::mutex> lk(mu_);
      worker_busy_ = false;
      cv_drained_.notify_all();
    }
  }
}

void Server::process_batch(std::vector<Pending> batch) {
  const obs::Span span("serve.batch");
  // Coalesce simulation requests by content fingerprint, preserving
  // first-seen order; control ops keep their arrival slots so a
  // "sweep then shutdown" batch answers the sweep first.
  std::vector<std::vector<Pending*>> groups;
  std::map<std::uint64_t, std::size_t> group_of;
  std::vector<Pending*> control;
  for (auto& p : batch) {
    if (p.req.op == Op::Simulate || p.req.op == Op::Sweep) {
      const std::uint64_t fp = p.req.fingerprint();
      const auto [it, fresh] = group_of.emplace(fp, groups.size());
      if (fresh) groups.emplace_back();
      groups[it->second].push_back(&p);
    } else {
      control.push_back(&p);
    }
  }
  for (auto& members : groups) process_group(members);
  for (Pending* p : control) {
    const Request& req = p->req;
    try {
      ResponseBody body;
      switch (req.op) {
        case Op::Ping:
          break;
        case Op::Metrics:
          body.raw_json = obs::Registry::to_json(
              obs::registry().snapshot());
          body.raw_key = "metrics";
          break;
        case Op::Stats:
          body.raw_json = render_stats_json();
          body.raw_key = "stats";
          break;
        case Op::Drain:
        case Op::Shutdown: {
          bool flushed = true;
          if (engine_->persistent()) {
            flushed = engine_->flush_persistent();
          }
          const auto counters = engine_->counters();
          std::string info = "{\"flushed\":";
          info += bool_str(flushed);
          info += ",\"pending_entries\":";
          info += obs::json_number(counters.persist.pending_entries);
          info += ",\"persistent\":";
          info += bool_str(engine_->persistent());
          info += "}";
          body.raw_json = std::move(info);
          body.raw_key = req.op == Op::Drain ? "drain" : "shutdown";
          break;
        }
        default:
          break;
      }
      answer(*p, render_ok(req.id, req.op, body), /*is_error=*/false);
      if (req.op == Op::Shutdown) {
        std::lock_guard<std::mutex> lk(mu_);
        stopped_ = true;
      }
    } catch (const std::exception& e) {
      answer(*p,
             render_error(req.id, {ErrorCode::Internal, e.what()}),
             /*is_error=*/true);
    }
  }
}

void Server::process_group(std::vector<Pending*>& members) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<Pending*> alive;
  for (Pending* p : members) {
    if (p->req.deadline_ms && now >= p->req.deadline) {
      ServeMetrics::get().deadline_exceeded.add();
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.deadline_exceeded;
      }
      answer(*p,
             render_error(p->req.id,
                          {ErrorCode::DeadlineExceeded,
                           "deadline of " +
                               obs::json_number(*p->req.deadline_ms) +
                               " ms passed before evaluation started"}),
             /*is_error=*/true);
    } else {
      alive.push_back(p);
    }
  }
  if (alive.empty()) return;

  // Arm a watchdog only when every surviving member carries a deadline:
  // it fires at the latest one, at which point *all* of them (deadline
  // <= max) have expired, so abandoning the evaluation strands nobody.
  const bool all_deadlined = std::all_of(
      alive.begin(), alive.end(),
      [](const Pending* p) { return p->req.deadline_ms.has_value(); });
  std::optional<resilience::CancelToken> token;
  std::optional<resilience::Watchdog> watchdog;
  if (all_deadlined) {
    auto latest = alive.front()->req.deadline;
    for (const Pending* p : alive) {
      latest = std::max(latest, p->req.deadline);
    }
    token.emplace();
    watchdog.emplace(latest, *token);
  }

  const Request& leader = alive.front()->req;
  try {
    std::size_t points = 0;
    const std::string payload =
        evaluate(leader, token ? &*token : nullptr, points);
    {
      std::lock_guard<std::mutex> lk(mu_);
      stats_.points += points;
      stats_.coalesced += alive.size() - 1;
    }
    ServeMetrics::get().points.add(points);
    ServeMetrics::get().coalesced.add(
        static_cast<std::uint64_t>(alive.size() - 1));
    for (Pending* p : alive) {
      ResponseBody body;
      body.points = points;
      body.format = p->req.format;
      body.payload = payload;  // byte-identical across the group
      answer(*p, render_ok(p->req.id, p->req.op, body),
             /*is_error=*/false);
    }
  } catch (const EvaluationCancelled&) {
    for (Pending* p : alive) {
      ServeMetrics::get().deadline_exceeded.add();
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.deadline_exceeded;
      }
      answer(*p,
             render_error(p->req.id,
                          {ErrorCode::DeadlineExceeded,
                           "deadline passed while evaluating"}),
             /*is_error=*/true);
    }
  } catch (const std::exception& e) {
    for (Pending* p : alive) {
      answer(*p, render_error(p->req.id, {ErrorCode::Internal, e.what()}),
             /*is_error=*/true);
    }
  }
}

std::string Server::evaluate(const Request& req,
                             const resilience::CancelToken* cancel,
                             std::size_t& points_out) {
  const obs::Span span("serve.evaluate");
  const machine::MachineDescriptor* m = machine_by_name(req.machine);
  if (m == nullptr) {
    throw std::logic_error("validated machine vanished: " + req.machine);
  }
  const auto& sigs = signature_map();

  std::vector<engine::SweepPoint> pts;
  pts.reserve(req.points());
  for (const auto& kernel : req.kernels) {
    const auto sit = sigs.find(kernel);
    if (sit == sigs.end()) {
      throw std::logic_error("validated kernel vanished: " + kernel);
    }
    for (const auto prec : req.precisions) {
      for (const int n : req.threads) {
        sim::SimConfig cfg;
        cfg.precision = prec;
        cfg.compiler = req.compiler;
        cfg.vector_mode = req.vector_mode;
        cfg.nthreads = n;
        cfg.placement = req.placement;
        pts.push_back(engine::SweepPoint{m, &sit->second, cfg});
      }
    }
  }
  points_out = pts.size();

  std::vector<sim::TimeBreakdown> results;
  results.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); i += kChunkPoints) {
    if (cancel != nullptr && cancel->cancelled()) {
      throw EvaluationCancelled{};
    }
    const std::size_t len = std::min(kChunkPoints, pts.size() - i);
    auto chunk = engine_->run_batch(
        std::span<const engine::SweepPoint>(pts.data() + i, len));
    results.insert(results.end(), chunk.begin(), chunk.end());
  }

  // Render. Row order is the point order (kernels x precisions x
  // threads), so payloads are deterministic for a given request.
  if (req.format == Format::Csv) {
    report::CsvWriter csv({"kernel", "machine", "precision", "threads",
                           "compute_s", "memory_s", "sync_s", "atomic_s",
                           "total_s", "serving", "vector_path", "note"});
    std::size_t i = 0;
    for (const auto& kernel : req.kernels) {
      for (const auto prec : req.precisions) {
        for (const int n : req.threads) {
          const auto& tb = results[i++];
          csv.add_row({kernel, req.machine,
                       std::string(core::to_string(prec)),
                       std::to_string(n), obs::json_number(tb.compute_s),
                       obs::json_number(tb.memory_s),
                       obs::json_number(tb.sync_s),
                       obs::json_number(tb.atomic_s),
                       obs::json_number(tb.total_s),
                       std::string(sim::to_string(tb.serving)),
                       tb.vector_path ? "1" : "0",
                       tb.note_string(m->name)});
        }
      }
    }
    return csv.text();
  }
  std::string out = "[";
  std::size_t i = 0;
  for (const auto& kernel : req.kernels) {
    for (const auto prec : req.precisions) {
      for (const int n : req.threads) {
        const auto& tb = results[i++];
        if (out.size() > 1) out += ",";
        out += "{\"kernel\":" + obs::json_quote(kernel);
        out += ",\"machine\":" + obs::json_quote(req.machine);
        out += ",\"precision\":" +
               obs::json_quote(core::to_string(prec));
        out += ",\"threads\":" +
               obs::json_number(static_cast<std::uint64_t>(n));
        out += ",\"compute_s\":" + obs::json_number(tb.compute_s);
        out += ",\"memory_s\":" + obs::json_number(tb.memory_s);
        out += ",\"sync_s\":" + obs::json_number(tb.sync_s);
        out += ",\"atomic_s\":" + obs::json_number(tb.atomic_s);
        out += ",\"total_s\":" + obs::json_number(tb.total_s);
        out += ",\"serving\":" +
               obs::json_quote(sim::to_string(tb.serving));
        out += ",\"vector_path\":" + bool_str(tb.vector_path);
        out += ",\"note\":" + obs::json_quote(tb.note_string(m->name));
        out += "}";
      }
    }
  }
  out += "]";
  return out;
}

void Server::answer(Pending& p, std::string line, bool is_error) {
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - p.admitted)
          .count());
  auto& metrics = ServeMetrics::get();
  metrics.request_ns.observe(ns);
  metrics.responses.add();
  if (is_error) metrics.errors.add();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.responses;
    if (is_error) ++stats_.errors;
    inflight_ids_.erase(p.req.id);
  }
  p.respond(std::move(line));
}

std::string Server::render_stats_json() const {
  const ServerStats s = stats();
  const auto c = engine_->counters();
  auto u = [](std::uint64_t v) { return obs::json_number(v); };
  std::string out = "{";
  out += "\"lines\":" + u(s.lines);
  out += ",\"accepted\":" + u(s.accepted);
  out += ",\"responses\":" + u(s.responses);
  out += ",\"errors\":" + u(s.errors);
  out += ",\"parse_errors\":" + u(s.parse_errors);
  out += ",\"rejected_overload\":" + u(s.rejected_overload);
  out += ",\"rejected_shutdown\":" + u(s.rejected_shutdown);
  out += ",\"duplicate_ids\":" + u(s.duplicate_ids);
  out += ",\"deadline_exceeded\":" + u(s.deadline_exceeded);
  out += ",\"coalesced\":" + u(s.coalesced);
  out += ",\"batches\":" + u(s.batches);
  out += ",\"points\":" + u(s.points);
  out += ",\"engine\":{";
  out += "\"requests\":" + u(c.requests);
  out += ",\"cache_hits\":" + u(c.cache_hits);
  out += ",\"cache_misses\":" + u(c.cache_misses);
  out += ",\"simulations\":" + u(c.simulations);
  out += ",\"simulators_built\":" + u(c.simulators_built);
  out += ",\"cache_entries\":" + u(c.cache_entries);
  out += ",\"persistent\":";
  out += bool_str(c.persist.enabled);
  if (c.persist.enabled) {
    out += ",\"persist\":{";
    out += "\"segments_loaded\":" + u(c.persist.store.segments_loaded);
    out += ",\"entries_loaded\":" + u(c.persist.store.entries_loaded);
    out += ",\"quarantined_segments\":" +
           u(c.persist.store.quarantined_segments);
    out += ",\"flushes\":" + u(c.persist.store.flushes);
    out += ",\"entries_flushed\":" + u(c.persist.store.entries_flushed);
    out += ",\"hits\":" + u(c.persist.cache.hits);
    out += ",\"resumed_points\":" + u(c.persist.cache.resumed_points);
    out += ",\"pending_entries\":" + u(c.persist.pending_entries);
    out += "}";
  }
  out += "}}";
  return out;
}

// ----------------------------------------------------- transports --

int Server::run_pipe(std::istream& in, std::ostream& out) {
  auto write_mu = std::make_shared<std::mutex>();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alives
    submit_line(std::move(line), [&out, write_mu](std::string resp) {
      std::lock_guard<std::mutex> lk(*write_mu);
      out << resp << "\n";
      out.flush();
    });
    line.clear();
    // Admission closes synchronously when a shutdown request is
    // accepted, so breaking here is deterministic: any further input
    // could only be rejected. drain() below still waits for the
    // shutdown response to be written.
    bool closed;
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed = draining_;
    }
    if (closed) break;
  }
  drain();
  return 0;
}

namespace {

/// One connected client: buffers reads, splits lines, serializes
/// response writes. Shared-ptr owned by the response lambdas, so a
/// response arriving after the client disconnected writes to a closed
/// fd (harmlessly) instead of freed memory.
struct Connection {
  int fd = -1;
  std::mutex write_mu;

  explicit Connection(int f) : fd(f) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lk(write_mu);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // client went away; drop the response
      off += static_cast<std::size_t>(n);
    }
  }
};

}  // namespace

int Server::run_unix_socket(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::cerr << "serve: socket path too long: " << path << "\n";
    return 2;
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "serve: socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    std::cerr << "serve: bind/listen " << path << ": "
              << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 2;
  }

  std::vector<std::thread> handlers;
  while (!stopped()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    handlers.emplace_back([this, conn_fd] {
      auto conn = std::make_shared<Connection>(conn_fd);
      std::string buf;
      char chunk[4096];
      while (!stopped()) {
        pollfd cpfd{conn->fd, POLLIN, 0};
        const int prc = ::poll(&cpfd, 1, /*timeout_ms=*/100);
        if (prc < 0 && errno != EINTR) break;
        if (prc <= 0 || (cpfd.revents & (POLLIN | POLLHUP)) == 0) {
          continue;
        }
        const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;  // EOF or error: client closed
        buf.append(chunk, static_cast<std::size_t>(n));
        // A client streaming an unterminated line past the limit is
        // answered once and disconnected (it cannot be framed again).
        if (buf.find('\n') == std::string::npos &&
            buf.size() > opt_.limits.max_line_bytes) {
          conn->write_line(render_error(
              "", {ErrorCode::TooLarge,
                   "request line exceeds " +
                       std::to_string(opt_.limits.max_line_bytes) +
                       " bytes"}));
          break;
        }
        std::size_t start = 0;
        for (std::size_t nl = buf.find('\n', start);
             nl != std::string::npos; nl = buf.find('\n', start)) {
          std::string line = buf.substr(start, nl - start);
          start = nl + 1;
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty()) continue;
          submit_line(std::move(line), [conn](std::string resp) {
            conn->write_line(resp);
          });
        }
        buf.erase(0, start);
      }
    });
  }
  ::close(listen_fd);
  for (auto& h : handlers) h.join();
  drain();
  ::unlink(path.c_str());
  return 0;
}

}  // namespace sgp::serve
