// Strict JSON parsing for the sgp-serve request path.
//
// The obs layer already ships a JSON *validator* (obs/json.hpp); the
// daemon needs a *reader*: requests arrive as line-delimited JSON from
// untrusted clients, so the parser here builds a small DOM under hard
// limits (depth, element counts) and never throws on malformed input —
// every failure is a structured error with an approximate byte offset,
// classified deterministically so the fuzz driver can replay it.
//
// Grammar is RFC 8259 with the strictness the fuzz tests demand:
//   * exactly one top-level value, no trailing bytes;
//   * strings must be valid UTF-8 (overlong encodings, lone surrogates
//     in \u escapes and stray continuation bytes are rejected);
//   * numbers must round-trip through from_chars;
//   * duplicate object keys are rejected (a request with two "id"
//     fields is ambiguous, and ambiguity on untrusted input is a bug).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::serve {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Ordered map: error messages ("unknown field ...") are deterministic.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// One parsed JSON value. Numbers keep their raw token so integer
/// fields can be re-parsed at full 64-bit range (a double loses
/// precision above 2^53 — exactly the --inject-seed bug this PR fixes).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw;     ///< exact number token (Kind::Number only)
  std::string string;  ///< decoded text (Kind::String only)
  JsonArray array;
  JsonObject object;

  bool is_null() const noexcept { return kind == Kind::Null; }
  bool is_bool() const noexcept { return kind == Kind::Bool; }
  bool is_number() const noexcept { return kind == Kind::Number; }
  bool is_string() const noexcept { return kind == Kind::String; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_object() const noexcept { return kind == Kind::Object; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
};

/// Outcome of one parse: either `value` is set, or `error` holds a
/// human-readable message with `offset` pointing near the problem.
struct JsonParse {
  std::optional<JsonValue> value;
  std::string error;
  std::size_t offset = 0;

  bool ok() const noexcept { return value.has_value(); }
};

struct JsonLimits {
  std::size_t max_depth = 32;        ///< nesting of arrays/objects
  std::size_t max_elements = 4096;   ///< total values in the document
  std::size_t max_string_bytes = 64 * 1024;  ///< one decoded string
};

/// Parses exactly one JSON document from `text`. Never throws on
/// malformed input; limits violations are ordinary parse errors.
JsonParse json_parse(std::string_view text, const JsonLimits& limits = {});

/// Full-string, range-checked unsigned 64-bit parser: accepts only an
/// optional-free decimal integer ("0".."18446744073709551615"), rejects
/// signs, leading '+', whitespace, hex, empty strings and overflow.
/// This is the seed parser the CLIs and the daemon share — the old
/// stoi-then-cast path silently wrapped negatives and could not
/// represent seeds above INT_MAX.
std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

}  // namespace sgp::serve
