// Simulation-as-a-service: a long-running request/response server over
// the shared memoized SweepEngine.
//
// Lifecycle of one request line:
//   1. parse + validate (serve/protocol.hpp) — malformed input gets a
//      structured error and never touches the engine;
//   2. admission control — a full queue rejects with "overloaded", a
//      draining server with "shutting-down", an in-flight id collision
//      with "duplicate-id". Admission stamps the absolute deadline;
//   3. the worker thread drains whatever is queued as ONE batch,
//      coalesces requests with equal content fingerprints (two
//      identical concurrent sweeps cost one Simulator::run burst and
//      answer byte-identically), and evaluates each unique request
//      through the engine in small chunks, checking a
//      resilience::Watchdog-driven cancel token between chunks so a
//      past-deadline request stops consuming simulator time;
//   4. responses are rendered as single JSON lines and handed to the
//      per-request callback (the pipe/socket transports serialize
//      writes; tests capture them directly).
//
// Warm restarts: with ServerOptions::persist_dir set the engine loads
// every verified segment at construction and flushes fresh results at
// batch end / drain / shutdown — a restarted server answers repeated
// requests from disk with >= 3x fewer Simulator::run calls and
// byte-identical payloads (tests/serve_test.cpp pins this).
//
// Everything observable lands in the obs registry under "serve.*".
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "serve/protocol.hpp"

namespace sgp::resilience {
class CancelToken;
}

namespace sgp::serve {

struct ServerOptions {
  /// Engine worker threads (0 = one per hardware thread, clamped and
  /// clamp-logged by threading::recommended_jobs).
  int jobs = 0;
  /// Queue slots; admission rejects with "overloaded" beyond this.
  std::size_t max_queue = 256;
  /// Largest number of queued requests one batch drains.
  std::size_t max_batch = 64;
  /// Durable memo-cache directory; unset = in-memory only.
  std::optional<std::string> persist_dir;
  ProtocolLimits limits;
  /// Print skip-and-warn diagnostics (persist quarantines etc).
  bool warn = true;
};

/// Server-side counters, independent of the engine's (stats op reports
/// both). Snapshot under the queue lock; monotonic.
struct ServerStats {
  std::uint64_t lines = 0;      ///< request lines received
  std::uint64_t accepted = 0;   ///< admitted to the queue
  std::uint64_t responses = 0;  ///< response lines emitted (ok + error)
  std::uint64_t errors = 0;     ///< error responses
  std::uint64_t parse_errors = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t duplicate_ids = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t coalesced = 0;  ///< requests served by another's burst
  std::uint64_t batches = 0;
  std::uint64_t points = 0;     ///< evaluation points computed or cached
};

class Server {
 public:
  using Respond = std::function<void(std::string line)>;

  explicit Server(ServerOptions opt = {});
  /// Drains the queue, flushes persistent segments, joins the worker.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parses, admits and eventually answers one request line.
  /// `respond` is invoked exactly once — synchronously for rejects,
  /// from the worker thread for admitted requests. It must be
  /// thread-safe against other responses.
  void submit_line(std::string line, Respond respond);

  /// Stops admitting, waits until every queued request is answered and
  /// flushes the persistent store. Idempotent; resumes a paused worker
  /// first (a paused drain would never finish).
  void drain();

  /// Holds the worker after its current batch: admitted requests queue
  /// up without being evaluated until resume(). Lets tests (and
  /// coordinated maintenance) build a batch deterministically — e.g.
  /// two identical requests admitted while paused are guaranteed to
  /// coalesce into one evaluation.
  void pause();
  void resume();

  /// True once a shutdown request was processed (transports exit their
  /// read loop).
  bool stopped() const;

  ServerStats stats() const;
  engine::EngineCounters engine_counters() const {
    return engine_->counters();
  }
  const engine::SweepEngine& engine() const { return *engine_; }

  // ------------------------------------------------- transports --

  /// Reads newline-delimited requests from `in` until EOF or shutdown;
  /// writes one response line each to `out`. Returns 0 on a clean
  /// exit. This is the mode tests and piped clients use.
  int run_pipe(std::istream& in, std::ostream& out);

  /// Listens on an AF_UNIX stream socket at `path` (unlinking a stale
  /// socket first), serving concurrent connections until a shutdown
  /// request arrives. Returns 0 on clean exit, 2 on socket errors.
  int run_unix_socket(const std::string& path);

 private:
  struct Pending {
    Request req;
    Respond respond;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();
  void process_batch(std::vector<Pending> batch);
  /// Evaluates one coalesced group; returns the rendered payload or a
  /// ServeError. Members list is non-empty and shares one fingerprint.
  void process_group(std::vector<Pending*>& members);
  void answer(Pending& p, std::string line, bool is_error);
  std::string evaluate(const Request& req,
                       const resilience::CancelToken* cancel,
                       std::size_t& points_out);
  std::string render_stats_json() const;

  ServerOptions opt_;
  std::unique_ptr<engine::SweepEngine> engine_;

  mutable std::mutex mu_;
  std::condition_variable cv_;          ///< queue not empty / stopping
  std::condition_variable cv_drained_;  ///< queue empty + idle
  std::deque<Pending> queue_;
  std::set<std::string> inflight_ids_;
  bool draining_ = false;  ///< no new admissions
  bool paused_ = false;    ///< worker holds between batches
  bool stop_worker_ = false;
  bool worker_busy_ = false;
  bool stopped_ = false;  ///< shutdown op processed
  ServerStats stats_;

  std::thread worker_;
};

}  // namespace sgp::serve
