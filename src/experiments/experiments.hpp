// The paper's experiments as reusable pipelines. Each bench binary is a
// thin printer over these functions, and the integration tests assert
// the paper's qualitative findings on the same structured outputs.
//
// Every pipeline runs on the sweep engine (src/engine): evaluation
// points are memoized in a content-addressed cache and fanned out over
// a thread pool, so pipelines sharing points (the x86 baselines, the
// scaling tables, repeated invocations from tests and bench binaries in
// one process) stop re-simulating them. The parameterless overloads use
// the process-wide engine::shared_engine(); results are bit-identical
// to the historical serial code by construction (the engine only
// schedules and caches — the models are untouched).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "machine/descriptor.hpp"
#include "machine/placement.hpp"
#include "report/stats.hpp"
#include "sim/config.hpp"

namespace sgp::engine {
class SweepEngine;
}

namespace sgp::experiments {

// --------------------------------------------------- pipeline machine --
/// The machine the SG2042-centric pipelines (figure1's SG series,
/// figure2/3, scaling tables, the x86 comparison baseline and the
/// best-threads memo) run on: machine::shared_registry()'s "sg2042"
/// by default. Returns a registry-stable reference.
const machine::MachineDescriptor& pipeline_machine();

/// Re-points those pipelines at any registered machine — built-in or
/// INI-loaded — and returns the previous name. Throws
/// std::out_of_range (with a did-you-mean hint) on an unknown name.
/// Clears the best-threads memo, which belongs to the previous
/// machine. Not synchronised against concurrently *running* pipelines:
/// re-point between runs, not during them.
std::string set_pipeline_machine(const std::string& name);

/// Per-kernel simulated times (seconds over all reps) for one machine
/// under one configuration, keyed by kernel name.
std::map<std::string, double> kernel_times(
    const machine::MachineDescriptor& m, const sim::SimConfig& cfg);
std::map<std::string, double> kernel_times(
    const machine::MachineDescriptor& m, const sim::SimConfig& cfg,
    engine::SweepEngine& eng);

/// A per-class summary of encoded ratios (the paper's bar + whiskers):
/// mean/min/max are in the paper's "times faster/slower" encoding.
struct GroupRatios {
  core::Group group = core::Group::Basic;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t kernels = 0;
};

/// One figure series (one machine/precision bar set).
struct RatioSeries {
  std::string label;
  std::vector<GroupRatios> groups;  // in all_groups order
  /// Raw per-kernel time ratios baseline/subject (>1 = subject faster).
  std::map<std::string, double> per_kernel_ratio;
};

// ---------------------------------------------------------- Figure 1 --
/// Single-core RISC-V comparison, baseline VisionFive V2 at FP64.
/// Series order: V1 FP64, V1 FP32, V2 FP32, SG2042 FP64, SG2042 FP32.
std::vector<RatioSeries> figure1();
std::vector<RatioSeries> figure1(engine::SweepEngine& eng);

// -------------------------------------------------------- Tables 1-3 --
struct ScalingCell {
  double speedup = 0.0;
  double parallel_efficiency = 0.0;
};

struct ScalingTable {
  machine::Placement placement = machine::Placement::Block;
  std::vector<int> thread_counts;                    // {2,4,8,16,32,64}
  std::map<core::Group, std::vector<ScalingCell>> cells;  // per group
};

/// SG2042 thread-scaling at FP32 under a placement policy (the paper's
/// Tables 1, 2 and 3 for block/cyclic/cluster respectively).
ScalingTable scaling_table(machine::Placement placement);
ScalingTable scaling_table(machine::Placement placement,
                           engine::SweepEngine& eng);

// ---------------------------------------------------------- Figure 2 --
/// Single-core vectorisation on/off on the SG2042, per precision.
/// Series order: FP32, FP64. Ratios are t_scalar / t_vector.
std::vector<RatioSeries> figure2();
std::vector<RatioSeries> figure2(engine::SweepEngine& eng);

// ---------------------------------------------------------- Figure 3 --
struct Fig3Row {
  std::string kernel;
  double clang_vla = 0.0;  ///< encoded ratio vs GCC baseline
  double clang_vls = 0.0;
  bool gcc_vectorizes = false;
  bool gcc_runtime_scalar = false;  ///< GCC vectorised but scalar path runs
  bool clang_vectorizes = false;
  bool paper_named = false;  ///< kernel appears in the paper's Figure 3
};

/// Clang VLA/VLS vs GCC, Polybench kernels, FP32, single C920 core.
std::vector<Fig3Row> figure3();
std::vector<Fig3Row> figure3(engine::SweepEngine& eng);

// ------------------------------------------------------- Figures 4-7 --
/// x86 CPUs vs the SG2042 baseline. `multithreaded` = false gives
/// Figures 4 (FP64) and 5 (FP32); true gives Figures 6 and 7. Series
/// order matches Table 4: Rome, Broadwell, Icelake, Sandybridge.
std::vector<RatioSeries> x86_comparison(core::Precision prec,
                                        bool multithreaded);
std::vector<RatioSeries> x86_comparison(core::Precision prec,
                                        bool multithreaded,
                                        engine::SweepEngine& eng);

/// The most performant SG2042 thread count for a class (the paper found
/// 32 beats 64 for some classes); candidates {32, 64}, cluster placement.
/// Memoized per (group, precision) process-wide, so the x86 baselines
/// ask once per class instead of once per kernel.
int best_sg2042_threads(core::Group g, core::Precision prec);
int best_sg2042_threads(core::Group g, core::Precision prec,
                        engine::SweepEngine& eng);

/// Drops the best_sg2042_threads memo (tests and the sweep-engine
/// microbenchmark use this to measure request counts from a clean slate).
void reset_best_threads_memo();

// ------------------------------------------------------------ Legacy --
/// Faithful replicas of the pre-engine call graphs, kept so
/// bench/micro_sweep_engine can measure the historical Simulator::run
/// volume empirically (run them against an engine with use_cache =
/// false) and assert the engine's outputs are identical. Not for new
/// callers.
namespace legacy {

/// Pre-engine x86_comparison: when multithreaded, recomputes the best
/// thread count *per kernel*, each time re-simulating the kernel's
/// whole class at both candidate counts (no memo, no cache reuse).
std::vector<RatioSeries> x86_comparison(core::Precision prec,
                                        bool multithreaded,
                                        engine::SweepEngine& eng);

/// Pre-engine best_sg2042_threads: unmemoized, 2 x |class| simulations
/// per call.
int best_sg2042_threads(core::Group g, core::Precision prec,
                        engine::SweepEngine& eng);

}  // namespace legacy

// ------------------------------------------------------------ Helpers --
/// Mean/min/max of encoded ratios per group, given per-kernel ratios and
/// a name->group mapping.
std::vector<GroupRatios> summarize_by_group(
    const std::map<std::string, double>& ratios,
    const std::map<std::string, core::Group>& groups);

/// Name -> group for the whole suite.
std::map<std::string, core::Group> suite_groups();

}  // namespace sgp::experiments
