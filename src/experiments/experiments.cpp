#include "experiments/experiments.hpp"

#include <algorithm>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "kernels/register_all.hpp"
#include "machine/registry.hpp"
#include "report/ratio.hpp"
#include "sim/simulator.hpp"

namespace sgp::experiments {

using core::CompilerId;
using core::Group;
using core::Precision;
using core::VectorMode;
using engine::SweepEngine;
using machine::Placement;
using sim::SimConfig;

namespace {

const std::vector<core::KernelSignature>& signatures() {
  static const std::vector<core::KernelSignature> sigs =
      kernels::all_signatures();
  return sigs;
}

/// Per-kernel ratios baseline/subject.
std::map<std::string, double> time_ratios(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& subject) {
  std::map<std::string, double> out;
  for (const auto& [name, tb] : baseline) {
    const auto it = subject.find(name);
    if (it == subject.end()) {
      throw std::logic_error("time_ratios: missing kernel " + name);
    }
    out[name] = tb / it->second;
  }
  return out;
}

RatioSeries make_series(std::string label,
                        const std::map<std::string, double>& baseline,
                        const std::map<std::string, double>& subject) {
  RatioSeries s;
  s.label = std::move(label);
  s.per_kernel_ratio = time_ratios(baseline, subject);
  s.groups = summarize_by_group(s.per_kernel_ratio, suite_groups());
  return s;
}

/// SimConfig for best_sg2042_threads candidates (cluster placement).
SimConfig best_threads_cfg(Precision prec, int n) {
  SimConfig c;
  c.precision = prec;
  c.compiler = CompilerId::Gcc;
  c.vector_mode = VectorMode::VLS;
  c.nthreads = n;
  c.placement = Placement::ClusterCyclic;
  return c;
}

/// Unmemoized kernel of best_sg2042_threads: sums the class's times at
/// each candidate thread count in suite order, exactly as the historic
/// serial loop did, so the winner (including tie-breaks) is unchanged.
int best_threads_uncached(Group g, Precision prec, SweepEngine& eng) {
  const auto& sg = pipeline_machine();
  std::vector<core::KernelSignature> group_sigs;
  for (const auto& sig : signatures()) {
    if (sig.group == g) group_sigs.push_back(sig);
  }
  const SimConfig cfgs[] = {best_threads_cfg(prec, 32),
                            best_threads_cfg(prec, 64)};
  const auto times = eng.run_grid(sg, group_sigs, cfgs);
  double best_time = 0.0;
  int best_n = 32;
  const int candidates[] = {32, 64};
  for (std::size_t c = 0; c < 2; ++c) {
    double total = 0.0;
    for (std::size_t s = 0; s < group_sigs.size(); ++s) {
      total += times[c * group_sigs.size() + s].total_s;
    }
    if (best_time == 0.0 || total < best_time) {
      best_time = total;
      best_n = candidates[c];
    }
  }
  return best_n;
}

std::mutex best_threads_mu;
std::map<std::pair<Group, Precision>, int> best_threads_memo;

/// Shared body of the ported and legacy x86 comparisons: the baseline
/// thread count per kernel is the only thing that differs.
std::vector<RatioSeries> x86_comparison_impl(
    Precision prec, bool multithreaded, SweepEngine& eng,
    const std::function<int(Group)>& best_threads) {
  const auto& sg = pipeline_machine();

  // SG2042 baseline: single core, or the most performant thread count
  // per class with cluster placement (Section 3.2's best practice).
  std::map<std::string, double> baseline;
  {
    SimConfig c;
    c.precision = prec;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.placement = Placement::ClusterCyclic;
    std::vector<engine::SweepPoint> points;
    points.reserve(signatures().size());
    for (const auto& sig : signatures()) {
      c.nthreads = multithreaded ? best_threads(sig.group) : 1;
      points.push_back(engine::SweepPoint{&sg, &sig, c});
    }
    const auto times = eng.run_batch(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
      baseline[points[i].signature->name] = times[i].total_s;
    }
  }

  std::vector<RatioSeries> out;
  for (const auto& x86 : machine::x86_machines()) {
    SimConfig c;
    c.precision = prec;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.placement = Placement::Block;
    c.nthreads = multithreaded ? x86.num_cores : 1;
    // Ratio is t_SG2042 / t_x86: positive encoded = x86 faster, matching
    // the paper's Figures 4-7 axes.
    out.push_back(
        make_series(x86.name, baseline, kernel_times(x86, c, eng)));
  }
  return out;
}

std::mutex pipeline_machine_mu;
std::string pipeline_machine_name = "sg2042";

}  // namespace

const machine::MachineDescriptor& pipeline_machine() {
  std::lock_guard<std::mutex> lock(pipeline_machine_mu);
  return machine::shared_registry().descriptor(pipeline_machine_name);
}

std::string set_pipeline_machine(const std::string& name) {
  // Resolve first so an unknown name throws (with its did-you-mean
  // hint) before any state changes.
  (void)machine::shared_registry().descriptor(name);
  std::string prev;
  {
    std::lock_guard<std::mutex> lock(pipeline_machine_mu);
    prev = pipeline_machine_name;
    pipeline_machine_name = name;
  }
  // The best-threads winners belong to the previous machine.
  if (prev != name) reset_best_threads_memo();
  return prev;
}

std::map<std::string, core::Group> suite_groups() {
  std::map<std::string, core::Group> out;
  for (const auto& sig : signatures()) out[sig.name] = sig.group;
  return out;
}

std::map<std::string, double> kernel_times(
    const machine::MachineDescriptor& m, const SimConfig& cfg,
    SweepEngine& eng) {
  const SimConfig cfgs[] = {cfg};
  const auto times = eng.run_grid(m, signatures(), cfgs);
  std::map<std::string, double> out;
  for (std::size_t i = 0; i < signatures().size(); ++i) {
    out[signatures()[i].name] = times[i].total_s;
  }
  return out;
}

std::map<std::string, double> kernel_times(
    const machine::MachineDescriptor& m, const SimConfig& cfg) {
  return kernel_times(m, cfg, engine::shared_engine());
}

std::vector<GroupRatios> summarize_by_group(
    const std::map<std::string, double>& ratios,
    const std::map<std::string, core::Group>& groups) {
  std::vector<GroupRatios> out;
  for (const Group g : core::all_groups) {
    std::vector<double> encoded;
    for (const auto& [name, r] : ratios) {
      const auto it = groups.find(name);
      if (it != groups.end() && it->second == g) {
        encoded.push_back(report::encode_ratio(r));
      }
    }
    GroupRatios gr;
    gr.group = g;
    if (!encoded.empty()) {
      // Encoded ratios can legitimately be negative ("times slower"),
      // so only mean/min/max apply here — no geometric mean.
      gr.mean = report::arithmetic_mean(
          std::span<const double>(encoded.data(), encoded.size()));
      gr.min = *std::min_element(encoded.begin(), encoded.end());
      gr.max = *std::max_element(encoded.begin(), encoded.end());
      gr.kernels = encoded.size();
    }
    out.push_back(gr);
  }
  return out;
}

std::vector<RatioSeries> figure1(SweepEngine& eng) {
  const auto scope = eng.phase("figure1");
  // Single core, GCC, vectorisation enabled where the hardware has it
  // ("best possible configuration", per the paper).
  auto cfg = [](Precision p) {
    SimConfig c;
    c.precision = p;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.nthreads = 1;
    c.placement = Placement::Block;
    return c;
  };

  const auto& registry = machine::shared_registry();
  const auto& v1 = registry.descriptor("visionfive-v1");
  const auto& v2 = registry.descriptor("visionfive-v2");
  const auto& sg = pipeline_machine();

  const auto baseline = kernel_times(v2, cfg(Precision::FP64), eng);

  std::vector<RatioSeries> out;
  out.push_back(make_series("VisionFive V1 FP64", baseline,
                            kernel_times(v1, cfg(Precision::FP64), eng)));
  out.push_back(make_series("VisionFive V1 FP32", baseline,
                            kernel_times(v1, cfg(Precision::FP32), eng)));
  out.push_back(make_series("VisionFive V2 FP32", baseline,
                            kernel_times(v2, cfg(Precision::FP32), eng)));
  out.push_back(make_series("SG2042 FP64", baseline,
                            kernel_times(sg, cfg(Precision::FP64), eng)));
  out.push_back(make_series("SG2042 FP32", baseline,
                            kernel_times(sg, cfg(Precision::FP32), eng)));
  return out;
}

std::vector<RatioSeries> figure1() {
  return figure1(engine::shared_engine());
}

ScalingTable scaling_table(Placement placement, SweepEngine& eng) {
  const auto scope = eng.phase(
      std::string("scaling_table(") +
      std::string(machine::to_string(placement)) + ")");
  const auto& sg = pipeline_machine();

  auto cfg = [&](int threads) {
    SimConfig c;
    c.precision = Precision::FP32;  // the paper scales at FP32
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.nthreads = threads;
    c.placement = placement;
    return c;
  };

  ScalingTable table;
  table.placement = placement;
  table.thread_counts = {2, 4, 8, 16, 32, 64};

  // One grid: the serial baseline plus every scaled thread count.
  std::vector<SimConfig> cfgs;
  cfgs.push_back(cfg(1));
  for (const int n : table.thread_counts) cfgs.push_back(cfg(n));
  const auto times = eng.run_grid(sg, signatures(), cfgs);
  const std::size_t nsigs = signatures().size();

  // Serial baseline per kernel (grid row 0).
  std::map<std::string, double> t1;
  for (std::size_t s = 0; s < nsigs; ++s) {
    t1[signatures()[s].name] = times[s].total_s;
  }

  for (const Group g : core::all_groups) {
    table.cells[g] = {};
  }
  for (std::size_t row = 0; row < table.thread_counts.size(); ++row) {
    const int n = table.thread_counts[row];
    // Class speedup = arithmetic mean of per-kernel speedups.
    std::map<Group, std::vector<double>> per_group;
    for (std::size_t s = 0; s < nsigs; ++s) {
      const auto& sig = signatures()[s];
      const double tn = times[(row + 1) * nsigs + s].total_s;
      per_group[sig.group].push_back(t1[sig.name] / tn);
    }
    for (const Group g : core::all_groups) {
      const auto& v = per_group[g];
      ScalingCell cell;
      cell.speedup = report::arithmetic_mean(
          std::span<const double>(v.data(), v.size()));
      cell.parallel_efficiency =
          report::parallel_efficiency(cell.speedup, n);
      table.cells[g].push_back(cell);
    }
  }
  return table;
}

ScalingTable scaling_table(Placement placement) {
  return scaling_table(placement, engine::shared_engine());
}

std::vector<RatioSeries> figure2(SweepEngine& eng) {
  const auto scope = eng.phase("figure2");
  const auto& sg = pipeline_machine();

  auto cfg = [](Precision p, VectorMode m) {
    SimConfig c;
    c.precision = p;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = m;
    c.nthreads = 1;
    return c;
  };

  std::vector<RatioSeries> out;
  for (const Precision p : {Precision::FP32, Precision::FP64}) {
    const auto scalar = kernel_times(sg, cfg(p, VectorMode::Scalar), eng);
    const auto vector = kernel_times(sg, cfg(p, VectorMode::VLS), eng);
    out.push_back(make_series(
        std::string("vectorised ") + std::string(core::to_string(p)) +
            " vs scalar",
        scalar, vector));
  }
  return out;
}

std::vector<RatioSeries> figure2() {
  return figure2(engine::shared_engine());
}

std::vector<Fig3Row> figure3(SweepEngine& eng) {
  const auto scope = eng.phase("figure3");
  const auto& sg = pipeline_machine();

  auto cfg = [](CompilerId comp, VectorMode mode) {
    SimConfig c;
    c.precision = Precision::FP32;  // the paper's Figure 3 runs FP32
    c.compiler = comp;
    c.vector_mode = mode;
    c.nthreads = 1;
    return c;
  };

  const std::vector<std::string> paper_named = {
      "2MM",    "3MM",       "GEMM",      "FLOYD_WARSHALL",
      "HEAT_3D", "JACOBI_1D", "JACOBI_2D"};

  std::vector<core::KernelSignature> poly;
  for (const auto& sig : signatures()) {
    if (sig.group == Group::Polybench) poly.push_back(sig);
  }
  const SimConfig cfgs[] = {cfg(CompilerId::Gcc, VectorMode::VLS),
                            cfg(CompilerId::Clang, VectorMode::VLA),
                            cfg(CompilerId::Clang, VectorMode::VLS)};
  const auto times = eng.run_grid(sg, poly, cfgs);

  std::vector<Fig3Row> out;
  for (std::size_t s = 0; s < poly.size(); ++s) {
    const auto& sig = poly[s];
    const double t_gcc = times[0 * poly.size() + s].total_s;
    const double t_vla = times[1 * poly.size() + s].total_s;
    const double t_vls = times[2 * poly.size() + s].total_s;
    Fig3Row row;
    row.kernel = sig.name;
    row.clang_vla = report::encode_ratio(t_gcc / t_vla);
    row.clang_vls = report::encode_ratio(t_gcc / t_vls);
    row.gcc_vectorizes = sig.gcc.vectorizes;
    row.gcc_runtime_scalar =
        sig.gcc.vectorizes && !sig.gcc.runtime_vector_path;
    row.clang_vectorizes = sig.clang.vectorizes;
    row.paper_named =
        std::find(paper_named.begin(), paper_named.end(), sig.name) !=
        paper_named.end();
    out.push_back(row);
  }
  return out;
}

std::vector<Fig3Row> figure3() {
  return figure3(engine::shared_engine());
}

int best_sg2042_threads(Group g, Precision prec, SweepEngine& eng) {
  {
    std::lock_guard<std::mutex> lock(best_threads_mu);
    const auto it = best_threads_memo.find({g, prec});
    if (it != best_threads_memo.end()) return it->second;
  }
  const int best = best_threads_uncached(g, prec, eng);
  std::lock_guard<std::mutex> lock(best_threads_mu);
  best_threads_memo.emplace(std::make_pair(g, prec), best);
  return best;
}

int best_sg2042_threads(Group g, Precision prec) {
  return best_sg2042_threads(g, prec, engine::shared_engine());
}

void reset_best_threads_memo() {
  std::lock_guard<std::mutex> lock(best_threads_mu);
  best_threads_memo.clear();
}

std::vector<RatioSeries> x86_comparison(Precision prec, bool multithreaded,
                                        SweepEngine& eng) {
  const auto scope = eng.phase(
      std::string("x86_comparison(") +
      std::string(core::to_string(prec)) +
      (multithreaded ? ",multi)" : ",single)"));
  return x86_comparison_impl(prec, multithreaded, eng, [&](Group g) {
    return best_sg2042_threads(g, prec, eng);
  });
}

std::vector<RatioSeries> x86_comparison(Precision prec,
                                        bool multithreaded) {
  return x86_comparison(prec, multithreaded, engine::shared_engine());
}

namespace legacy {

int best_sg2042_threads(Group g, Precision prec, SweepEngine& eng) {
  return best_threads_uncached(g, prec, eng);
}

std::vector<RatioSeries> x86_comparison(Precision prec, bool multithreaded,
                                        SweepEngine& eng) {
  const auto scope = eng.phase(
      std::string("legacy::x86_comparison(") +
      std::string(core::to_string(prec)) +
      (multithreaded ? ",multi)" : ",single)"));
  // The pre-engine hot spot, reproduced: one best-threads recomputation
  // per *kernel*, each re-simulating the kernel's whole class twice.
  return x86_comparison_impl(prec, multithreaded, eng, [&](Group g) {
    return best_threads_uncached(g, prec, eng);
  });
}

}  // namespace legacy

}  // namespace sgp::experiments
