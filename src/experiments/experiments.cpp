#include "experiments/experiments.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernels/register_all.hpp"
#include "report/ratio.hpp"
#include "sim/simulator.hpp"

namespace sgp::experiments {

using core::CompilerId;
using core::Group;
using core::Precision;
using core::VectorMode;
using machine::Placement;
using sim::SimConfig;

namespace {

const std::vector<core::KernelSignature>& signatures() {
  static const std::vector<core::KernelSignature> sigs =
      kernels::all_signatures();
  return sigs;
}

/// Per-kernel ratios baseline/subject.
std::map<std::string, double> time_ratios(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& subject) {
  std::map<std::string, double> out;
  for (const auto& [name, tb] : baseline) {
    const auto it = subject.find(name);
    if (it == subject.end()) {
      throw std::logic_error("time_ratios: missing kernel " + name);
    }
    out[name] = tb / it->second;
  }
  return out;
}

RatioSeries make_series(std::string label,
                        const std::map<std::string, double>& baseline,
                        const std::map<std::string, double>& subject) {
  RatioSeries s;
  s.label = std::move(label);
  s.per_kernel_ratio = time_ratios(baseline, subject);
  s.groups = summarize_by_group(s.per_kernel_ratio, suite_groups());
  return s;
}

}  // namespace

std::map<std::string, core::Group> suite_groups() {
  std::map<std::string, core::Group> out;
  for (const auto& sig : signatures()) out[sig.name] = sig.group;
  return out;
}

std::map<std::string, double> kernel_times(
    const machine::MachineDescriptor& m, const SimConfig& cfg) {
  const sim::Simulator simulator(m);
  std::map<std::string, double> out;
  for (const auto& sig : signatures()) {
    out[sig.name] = simulator.seconds(sig, cfg);
  }
  return out;
}

std::vector<GroupRatios> summarize_by_group(
    const std::map<std::string, double>& ratios,
    const std::map<std::string, core::Group>& groups) {
  std::vector<GroupRatios> out;
  for (const Group g : core::all_groups) {
    std::vector<double> encoded;
    for (const auto& [name, r] : ratios) {
      const auto it = groups.find(name);
      if (it != groups.end() && it->second == g) {
        encoded.push_back(report::encode_ratio(r));
      }
    }
    GroupRatios gr;
    gr.group = g;
    if (!encoded.empty()) {
      // Encoded ratios can legitimately be negative ("times slower"),
      // so only mean/min/max apply here — no geometric mean.
      gr.mean = report::arithmetic_mean(
          std::span<const double>(encoded.data(), encoded.size()));
      gr.min = *std::min_element(encoded.begin(), encoded.end());
      gr.max = *std::max_element(encoded.begin(), encoded.end());
      gr.kernels = encoded.size();
    }
    out.push_back(gr);
  }
  return out;
}

std::vector<RatioSeries> figure1() {
  // Single core, GCC, vectorisation enabled where the hardware has it
  // ("best possible configuration", per the paper).
  auto cfg = [](Precision p) {
    SimConfig c;
    c.precision = p;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.nthreads = 1;
    c.placement = Placement::Block;
    return c;
  };

  const auto v1 = machine::visionfive_v1();
  const auto v2 = machine::visionfive_v2();
  const auto sg = machine::sg2042();

  const auto baseline = kernel_times(v2, cfg(Precision::FP64));

  std::vector<RatioSeries> out;
  out.push_back(make_series("VisionFive V1 FP64", baseline,
                            kernel_times(v1, cfg(Precision::FP64))));
  out.push_back(make_series("VisionFive V1 FP32", baseline,
                            kernel_times(v1, cfg(Precision::FP32))));
  out.push_back(make_series("VisionFive V2 FP32", baseline,
                            kernel_times(v2, cfg(Precision::FP32))));
  out.push_back(make_series("SG2042 FP64", baseline,
                            kernel_times(sg, cfg(Precision::FP64))));
  out.push_back(make_series("SG2042 FP32", baseline,
                            kernel_times(sg, cfg(Precision::FP32))));
  return out;
}

ScalingTable scaling_table(Placement placement) {
  const auto sg = machine::sg2042();
  const sim::Simulator simulator(sg);

  auto cfg = [&](int threads) {
    SimConfig c;
    c.precision = Precision::FP32;  // the paper scales at FP32
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.nthreads = threads;
    c.placement = placement;
    return c;
  };

  ScalingTable table;
  table.placement = placement;
  table.thread_counts = {2, 4, 8, 16, 32, 64};

  // Serial baseline per kernel.
  std::map<std::string, double> t1;
  for (const auto& sig : signatures()) {
    t1[sig.name] = simulator.seconds(sig, cfg(1));
  }

  for (const Group g : core::all_groups) {
    table.cells[g] = {};
  }
  for (const int n : table.thread_counts) {
    // Class speedup = arithmetic mean of per-kernel speedups.
    std::map<Group, std::vector<double>> per_group;
    for (const auto& sig : signatures()) {
      const double tn = simulator.seconds(sig, cfg(n));
      per_group[sig.group].push_back(t1[sig.name] / tn);
    }
    for (const Group g : core::all_groups) {
      const auto& v = per_group[g];
      ScalingCell cell;
      cell.speedup = report::arithmetic_mean(
          std::span<const double>(v.data(), v.size()));
      cell.parallel_efficiency =
          report::parallel_efficiency(cell.speedup, n);
      table.cells[g].push_back(cell);
    }
  }
  return table;
}

std::vector<RatioSeries> figure2() {
  const auto sg = machine::sg2042();

  auto cfg = [](Precision p, VectorMode m) {
    SimConfig c;
    c.precision = p;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = m;
    c.nthreads = 1;
    return c;
  };

  std::vector<RatioSeries> out;
  for (const Precision p : {Precision::FP32, Precision::FP64}) {
    const auto scalar = kernel_times(sg, cfg(p, VectorMode::Scalar));
    const auto vector = kernel_times(sg, cfg(p, VectorMode::VLS));
    out.push_back(make_series(
        std::string("vectorised ") + std::string(core::to_string(p)) +
            " vs scalar",
        scalar, vector));
  }
  return out;
}

std::vector<Fig3Row> figure3() {
  const auto sg = machine::sg2042();
  const sim::Simulator simulator(sg);

  auto cfg = [](CompilerId comp, VectorMode mode) {
    SimConfig c;
    c.precision = Precision::FP32;  // the paper's Figure 3 runs FP32
    c.compiler = comp;
    c.vector_mode = mode;
    c.nthreads = 1;
    return c;
  };

  const std::vector<std::string> paper_named = {
      "2MM",    "3MM",       "GEMM",      "FLOYD_WARSHALL",
      "HEAT_3D", "JACOBI_1D", "JACOBI_2D"};

  std::vector<Fig3Row> out;
  for (const auto& sig : signatures()) {
    if (sig.group != Group::Polybench) continue;
    const double t_gcc =
        simulator.seconds(sig, cfg(CompilerId::Gcc, VectorMode::VLS));
    const double t_vla =
        simulator.seconds(sig, cfg(CompilerId::Clang, VectorMode::VLA));
    const double t_vls =
        simulator.seconds(sig, cfg(CompilerId::Clang, VectorMode::VLS));
    Fig3Row row;
    row.kernel = sig.name;
    row.clang_vla = report::encode_ratio(t_gcc / t_vla);
    row.clang_vls = report::encode_ratio(t_gcc / t_vls);
    row.gcc_vectorizes = sig.gcc.vectorizes;
    row.gcc_runtime_scalar =
        sig.gcc.vectorizes && !sig.gcc.runtime_vector_path;
    row.clang_vectorizes = sig.clang.vectorizes;
    row.paper_named =
        std::find(paper_named.begin(), paper_named.end(), sig.name) !=
        paper_named.end();
    out.push_back(row);
  }
  return out;
}

int best_sg2042_threads(Group g, Precision prec) {
  const auto sg = machine::sg2042();
  const sim::Simulator simulator(sg);
  auto cfg = [&](int n) {
    SimConfig c;
    c.precision = prec;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.nthreads = n;
    c.placement = Placement::ClusterCyclic;
    return c;
  };
  double best_time = 0.0;
  int best_n = 32;
  for (const int n : {32, 64}) {
    double total = 0.0;
    for (const auto& sig : signatures()) {
      if (sig.group != g) continue;
      total += simulator.seconds(sig, cfg(n));
    }
    if (best_time == 0.0 || total < best_time) {
      best_time = total;
      best_n = n;
    }
  }
  return best_n;
}

std::vector<RatioSeries> x86_comparison(Precision prec, bool multithreaded) {
  const auto sg = machine::sg2042();
  const sim::Simulator sg_sim(sg);

  // SG2042 baseline: single core, or the most performant thread count
  // per class with cluster placement (Section 3.2's best practice).
  std::map<std::string, double> baseline;
  {
    SimConfig c;
    c.precision = prec;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.placement = Placement::ClusterCyclic;
    for (const auto& sig : signatures()) {
      c.nthreads =
          multithreaded ? best_sg2042_threads(sig.group, prec) : 1;
      baseline[sig.name] = sg_sim.seconds(sig, c);
    }
  }

  std::vector<RatioSeries> out;
  for (const auto& x86 : machine::x86_machines()) {
    SimConfig c;
    c.precision = prec;
    c.compiler = CompilerId::Gcc;
    c.vector_mode = VectorMode::VLS;
    c.placement = Placement::Block;
    c.nthreads = multithreaded ? x86.num_cores : 1;
    // Ratio is t_SG2042 / t_x86: positive encoded = x86 faster, matching
    // the paper's Figures 4-7 axes.
    out.push_back(
        make_series(x86.name, baseline, kernel_times(x86, c)));
  }
  return out;
}

}  // namespace sgp::experiments
