// Central per-kernel auto-vectorisation capability table (one auditable
// place), encoding the paper's counts: GCC 8.4 vectorises 30 of the 64
// kernels with 7 taking the scalar path at runtime; Clang vectorises 59
// with 3 taking the scalar path.
#pragma once

#include <string_view>

#include "core/signature.hpp"

namespace sgp::kernels {

/// Fills sig.gcc and sig.clang from the table. Throws std::out_of_range
/// for a kernel name not in the table (catches typos at registration).
void apply_vectorization_facts(core::KernelSignature& sig);

/// True when the table has an entry for `name` (for tests).
bool has_vectorization_facts(std::string_view name);

}  // namespace sgp::kernels
