#include "kernels/lcals/lcals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::lcals {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

constexpr std::size_t kN = 500'000;

// ------------------------------------------------------- DIFF_PREDICT --
// Order-10 difference predictor chain (Livermore loop 12 family).
class DiffPredict final : public detail::DualPrecisionKernel<DiffPredict> {
 public:
  static constexpr std::size_t kOrder = 10;

  DiffPredict()
      : DualPrecisionKernel(
            SignatureBuilder("DIFF_PREDICT", Group::Lcals)
                .iters(kN)
                .reps(100)
                .mix(OpMix{.fadd = 9, .loads = 11, .stores = 10})
                .streamed(11, 10)
                .working_set(21.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> px;  // kOrder+3 planes of n
    std::vector<Real> cx;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kN);
    s.px = detail::wavy<Real>((kOrder + 3) * s.n, 0.5, 0.0008, 0.2);
    s.cx = detail::wavy<Real>(s.n, 1.0, 0.0013, 0.4);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* px = s.px.data();
    const Real* cx = s.cx.data();
    const std::size_t n = s.n;
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real ar = cx[i];
        Real br = Real(0), cr = Real(0);
        for (std::size_t k = 0; k < kOrder; ++k) {
          br = ar - px[k * n + i];
          px[k * n + i] = ar;
          cr = br - px[(k + 1) * n + i];
          px[(k + 1) * n + i] = br;
          ar = cr - px[(k + 2) * n + i];
          px[(k + 2) * n + i] = cr;
          ++k;  // the classic loop advances by 2 planes per stage
        }
        px[(kOrder + 2) * n + i] = ar;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().px));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------------- EOS --
class Eos final : public detail::DualPrecisionKernel<Eos> {
 public:
  Eos()
      : DualPrecisionKernel(
            SignatureBuilder("EOS", Group::Lcals)
                .iters(kN)
                .reps(120)
                .mix(OpMix{.fmul = 1, .ffma = 4, .loads = 3, .stores = 1})
                .streamed(3, 1)
                .working_set(4.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y, z, u;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.y = detail::wavy<Real>(n, 0.4, 0.0009, 0.6);
    s.z = detail::wavy<Real>(n, 0.3, 0.0017, 0.5);
    s.u = detail::ramp<Real>(n, 0.2, 3e-6);
    s.x.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real q = Real(0.5), r = Real(0.3), t = Real(0.2);
    const Real* y = s.y.data();
    const Real* z = s.z.data();
    const Real* u = s.u.data();
    Real* x = s.x.data();
    exec.parallel_for(s.x.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        x[i] = u[i] + r * (z[i] + r * y[i]) +
               t * (u[i] + r * (u[i] + r * u[i]) + q * y[i]);
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------- FIRST_DIFF --
class FirstDiff final : public detail::DualPrecisionKernel<FirstDiff> {
 public:
  FirstDiff()
      : DualPrecisionKernel(
            SignatureBuilder("FIRST_DIFF", Group::Lcals)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fadd = 1, .loads = 2, .stores = 1})
                .streamed(1, 1)  // y[i+1] reuses the previous line
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Stencil1D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.y = detail::wavy<Real>(n + 1, 1.0, 0.0027);
    s.x.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* y = s.y.data();
    Real* x = s.x.data();
    exec.parallel_for(s.x.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) x[i] = y[i + 1] - y[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- FIRST_MIN --
// Minimum value and its first location (min-loc reduction).
class FirstMin final : public detail::DualPrecisionKernel<FirstMin> {
 public:
  FirstMin()
      : DualPrecisionKernel(
            SignatureBuilder("FIRST_MIN", Group::Lcals)
                .iters(kN)
                .reps(120)
                .mix(OpMix{.fcmp = 1, .iops = 1, .loads = 1, .branches = 1})
                .streamed(1, 0)
                .working_set(kN)
                .pattern(AccessPattern::Reduction)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
    Real minval = Real(0);
    std::size_t minloc = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 1.0, 0.00037, 0.5);
    s.x[n / 3] = Real(-10);  // a unique minimum
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    const int chunks = exec.max_chunks();
    std::vector<Real> pmin(static_cast<std::size_t>(chunks),
                           std::numeric_limits<Real>::max());
    std::vector<std::size_t> ploc(static_cast<std::size_t>(chunks), 0);
    Real* pm = pmin.data();
    std::size_t* pl = ploc.data();
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        Real mn = std::numeric_limits<Real>::max();
                        std::size_t loc = lo;
                        for (std::size_t i = lo; i < hi; ++i) {
                          if (x[i] < mn) {
                            mn = x[i];
                            loc = i;
                          }
                        }
                        pm[chunk] = mn;
                        pl[chunk] = loc;
                      });
    s.minval = std::numeric_limits<Real>::max();
    s.minloc = 0;
    for (int c = 0; c < chunks; ++c) {
      if (pmin[static_cast<std::size_t>(c)] < s.minval) {
        s.minval = pmin[static_cast<std::size_t>(c)];
        s.minloc = ploc[static_cast<std::size_t>(c)];
      }
    }
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return static_cast<long double>(s.minval) +
           static_cast<long double>(s.minloc);
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- FIRST_SUM --
class FirstSum final : public detail::DualPrecisionKernel<FirstSum> {
 public:
  FirstSum()
      : DualPrecisionKernel(
            SignatureBuilder("FIRST_SUM", Group::Lcals)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fadd = 1, .loads = 2, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Stencil1D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.y = detail::wavy<Real>(n, 1.0, 0.0021, 0.1);
    s.x.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* y = s.y.data();
    Real* x = s.x.data();
    x[0] = y[0] + y[0];
    exec.parallel_for(s.x.size() - 1,
                      [=](std::size_t lo, std::size_t hi, int) {
                        for (std::size_t j = lo; j < hi; ++j) {
                          const std::size_t i = j + 1;
                          x[i] = y[i - 1] + y[i];
                        }
                      });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------ GEN_LIN_RECUR --
// General linear recurrence (Livermore loop 6 family): two sweeps with a
// short dependence chain inside each iteration.
class GenLinRecur final : public detail::DualPrecisionKernel<GenLinRecur> {
 public:
  GenLinRecur()
      : DualPrecisionKernel(
            SignatureBuilder("GEN_LIN_RECUR", Group::Lcals)
                .iters(kN)
                .reps(80)
                .regions(2)
                .mix(OpMix{.ffma = 2, .loads = 4, .stores = 1})
                .streamed(4, 1)
                .working_set(4.0 * kN)
                .pattern(AccessPattern::Sequential)
                .recurrence()
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> b5, sa, sb, stb5;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kN);
    s.b5 = detail::wavy<Real>(s.n, 0.1, 0.0033, 0.05);
    s.sa = detail::wavy<Real>(s.n, 0.2, 0.0013, 0.3);
    s.sb = detail::wavy<Real>(s.n, 0.2, 0.0029, 0.3);
    s.stb5 = detail::constant<Real>(s.n, 0.01);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* b5 = s.b5.data();
    const Real* sa = s.sa.data();
    const Real* sb = s.sb.data();
    Real* stb5 = s.stb5.data();
    const std::size_t n = s.n;
    // Sweep 1 (forward): stb5 chain is chunk-local (RAJAPerf's OpenMP
    // version privatises it the same way).
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      Real t = stb5[lo];
      for (std::size_t k = lo; k < hi; ++k) {
        b5[k] = sa[k] + t * sb[k];
        t = b5[k] - t;
        stb5[k] = t;
      }
    });
    // Sweep 2 (backward).
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      Real t = stb5[hi - 1];
      for (std::size_t k = hi; k-- > lo;) {
        b5[k] = sa[k] + t * sb[k];
        t = b5[k] - t;
        stb5[k] = t;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().b5));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------------- HYDRO_1D --
class Hydro1d final : public detail::DualPrecisionKernel<Hydro1d> {
 public:
  Hydro1d()
      : DualPrecisionKernel(
            SignatureBuilder("HYDRO_1D", Group::Lcals)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fmul = 1, .ffma = 2, .loads = 3, .stores = 1})
                .streamed(2, 1)
                .working_set(3.0 * kN)
                .pattern(AccessPattern::Stencil1D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y, z;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.y = detail::wavy<Real>(n, 0.5, 0.0019, 0.2);
    s.z = detail::wavy<Real>(n + 12, 0.4, 0.0007, 0.3);
    s.x.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real q = Real(0.5), r = Real(0.3), t = Real(0.2);
    const Real* y = s.y.data();
    const Real* z = s.z.data();
    Real* x = s.x.data();
    exec.parallel_for(s.x.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        x[i] = q + y[i] * (r * z[i + 10] + t * z[i + 11]);
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------------- HYDRO_2D --
// Three coupled 2D sweeps (Livermore loop 18).
class Hydro2d final : public detail::DualPrecisionKernel<Hydro2d> {
 public:
  static constexpr std::size_t kJn = 1000;
  static constexpr std::size_t kKn = 1000;

  Hydro2d()
      : DualPrecisionKernel(
            SignatureBuilder("HYDRO_2D", Group::Lcals)
                .iters(static_cast<double>(kJn) * kKn)
                .reps(30)
                .regions(3)
                .mix(OpMix{.fadd = 8, .fmul = 6, .fdiv = 0.3, .loads = 10,
                           .stores = 2})
                .streamed(6, 2)
                .working_set(8.0 * kJn * kKn)
                .pattern(AccessPattern::Stencil2D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> za, zb, zm, zp, zq, zr, zu, zv, zz;
    std::size_t jn = 0, kn = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.jn = rp.scaled(kJn, 8);
    s.kn = rp.scaled(kKn, 8);
    const std::size_t nn = s.jn * s.kn;
    s.zp = detail::wavy<Real>(nn, 0.3, 0.0011, 0.5);
    s.zq = detail::wavy<Real>(nn, 0.3, 0.0007, 0.4);
    s.zr = detail::wavy<Real>(nn, 0.3, 0.0023, 0.6);
    s.zm = detail::wavy<Real>(nn, 0.3, 0.0005, 0.7);
    s.zz = detail::wavy<Real>(nn, 0.2, 0.0013, 0.3);
    s.za.assign(nn, Real(0));
    s.zb.assign(nn, Real(0));
    s.zu.assign(nn, Real(0));
    s.zv.assign(nn, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t jn = s.jn, kn = s.kn;
    Real* za = s.za.data();
    Real* zb = s.zb.data();
    const Real* zm = s.zm.data();
    const Real* zp = s.zp.data();
    const Real* zq = s.zq.data();
    const Real* zr = s.zr.data();
    Real* zu = s.zu.data();
    Real* zv = s.zv.data();
    const Real* zz = s.zz.data();
    const Real t = Real(0.0037), sc = Real(0.0041);
    auto at = [jn](std::size_t k, std::size_t j) { return k * jn + j; };

    exec.parallel_for(kn - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t kk = lo; kk < hi; ++kk) {
        const std::size_t k = kk + 1;
        for (std::size_t j = 1; j < jn - 1; ++j) {
          za[at(k, j)] =
              (zp[at(k + 1, j - 1)] + zq[at(k + 1, j - 1)] -
               zp[at(k, j - 1)] - zq[at(k, j - 1)]) *
              (zr[at(k, j)] + zr[at(k, j - 1)]) /
              (zm[at(k, j - 1)] + zm[at(k + 1, j - 1)] + Real(1e-6));
          zb[at(k, j)] =
              (zp[at(k, j - 1)] + zq[at(k, j - 1)] - zp[at(k, j)] -
               zq[at(k, j)]) *
              (zr[at(k, j)] + zr[at(k - 1, j)]) /
              (zm[at(k, j)] + zm[at(k, j - 1)] + Real(1e-6));
        }
      }
    });
    exec.parallel_for(kn - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t kk = lo; kk < hi; ++kk) {
        const std::size_t k = kk + 1;
        for (std::size_t j = 1; j < jn - 1; ++j) {
          zu[at(k, j)] += sc * (za[at(k, j)] * (zz[at(k, j)] -
                                                zz[at(k, j + 1)]) -
                                za[at(k, j - 1)] * (zz[at(k, j)] -
                                                    zz[at(k, j - 1)]) -
                                zb[at(k, j)] * (zz[at(k, j)] -
                                                zz[at(k - 1, j)]) +
                                zb[at(k + 1, j)] * (zz[at(k, j)] -
                                                    zz[at(k + 1, j)]));
          zv[at(k, j)] += sc * (za[at(k, j)] * (zr[at(k, j)] -
                                                zr[at(k, j + 1)]) -
                                za[at(k, j - 1)] * (zr[at(k, j)] -
                                                    zr[at(k, j - 1)]) -
                                zb[at(k, j)] * (zr[at(k, j)] -
                                                zr[at(k - 1, j)]) +
                                zb[at(k + 1, j)] * (zr[at(k, j)] -
                                                    zr[at(k + 1, j)]));
        }
      }
    });
    exec.parallel_for(kn - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t kk = lo; kk < hi; ++kk) {
        const std::size_t k = kk + 1;
        for (std::size_t j = 1; j < jn - 1; ++j) {
          zu[at(k, j)] = zu[at(k, j)] + t * za[at(k, j)];
          zv[at(k, j)] = zv[at(k, j)] + t * zb[at(k, j)];
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.zu)) +
           core::checksum(std::span<const Real>(s.zv));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// -------------------------------------------------------- INT_PREDICT --
class IntPredict final : public detail::DualPrecisionKernel<IntPredict> {
 public:
  IntPredict()
      : DualPrecisionKernel(
            SignatureBuilder("INT_PREDICT", Group::Lcals)
                .iters(kN)
                .reps(120)
                .mix(OpMix{.fadd = 1, .ffma = 6, .loads = 7, .stores = 1})
                .streamed(7, 1)
                .working_set(13.0 * kN)
                .pattern(AccessPattern::Strided)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> px;  // 13 planes
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kN);
    s.px = detail::wavy<Real>(13 * s.n, 0.3, 0.0017, 0.4);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* px = s.px.data();
    const std::size_t n = s.n;
    const Real dm22 = Real(0.1), dm23 = Real(0.2), dm24 = Real(0.3),
               dm25 = Real(0.15), dm26 = Real(0.25), dm27 = Real(0.12),
               dm28 = Real(0.22), c0 = Real(1.1);
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        px[i] = dm28 * px[12 * n + i] + dm27 * px[11 * n + i] +
                dm26 * px[10 * n + i] + dm25 * px[9 * n + i] +
                dm24 * px[8 * n + i] + dm23 * px[7 * n + i] +
                dm22 * px[6 * n + i] +
                c0 * (px[4 * n + i] + px[5 * n + i]) + px[2 * n + i];
      }
    });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(
        std::span<const Real>(s.px.data(), s.n));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- PLANCKIAN --
class Planckian final : public detail::DualPrecisionKernel<Planckian> {
 public:
  Planckian()
      : DualPrecisionKernel(
            SignatureBuilder("PLANCKIAN", Group::Lcals)
                .iters(kN)
                .reps(60)
                .mix(OpMix{.fadd = 1, .fdiv = 2, .fspecial = 1, .loads = 4,
                           .stores = 2})
                .streamed(4, 2)
                .working_set(6.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y, u, v, w;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.u = detail::uniform<Real>(n, rp.seed + 21, 0.2, 2.0);
    s.v = detail::uniform<Real>(n, rp.seed + 22, 0.5, 3.0);
    s.x = detail::uniform<Real>(n, rp.seed + 23, 0.1, 1.0);
    s.y.assign(n, Real(0));
    s.w.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* u = s.u.data();
    const Real* v = s.v.data();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    Real* w = s.w.data();
    exec.parallel_for(s.y.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        y[i] = u[i] / v[i];
        w[i] = x[i] / (std::exp(y[i]) - Real(1));
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().w));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------- TRIDIAG_ELIM --
// RAJAPerf's parallel form: xout[i] = z[i] * (y[i] - xin[i-1]).
class TridiagElim final : public detail::DualPrecisionKernel<TridiagElim> {
 public:
  TridiagElim()
      : DualPrecisionKernel(
            SignatureBuilder("TRIDIAG_ELIM", Group::Lcals)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fadd = 1, .fmul = 1, .loads = 3, .stores = 1})
                .streamed(3, 1)
                .working_set(4.0 * kN)
                .pattern(AccessPattern::Stencil1D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> xout, xin, y, z;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.xin = detail::wavy<Real>(n, 0.4, 0.0013, 0.3);
    s.y = detail::wavy<Real>(n, 0.5, 0.0009, 0.6);
    s.z = detail::wavy<Real>(n, 0.3, 0.0031, 0.5);
    s.xout.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* xin = s.xin.data();
    const Real* y = s.y.data();
    const Real* z = s.z.data();
    Real* xout = s.xout.data();
    exec.parallel_for(s.xout.size() - 1,
                      [=](std::size_t lo, std::size_t hi, int) {
                        for (std::size_t j = lo; j < hi; ++j) {
                          const std::size_t i = j + 1;
                          xout[i] = z[i] * (y[i] - xin[i - 1]);
                        }
                      });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().xout));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_diff_predict() {
  return std::make_unique<DiffPredict>();
}
std::unique_ptr<core::KernelBase> make_eos() {
  return std::make_unique<Eos>();
}
std::unique_ptr<core::KernelBase> make_first_diff() {
  return std::make_unique<FirstDiff>();
}
std::unique_ptr<core::KernelBase> make_first_min() {
  return std::make_unique<FirstMin>();
}
std::unique_ptr<core::KernelBase> make_first_sum() {
  return std::make_unique<FirstSum>();
}
std::unique_ptr<core::KernelBase> make_gen_lin_recur() {
  return std::make_unique<GenLinRecur>();
}
std::unique_ptr<core::KernelBase> make_hydro_1d() {
  return std::make_unique<Hydro1d>();
}
std::unique_ptr<core::KernelBase> make_hydro_2d() {
  return std::make_unique<Hydro2d>();
}
std::unique_ptr<core::KernelBase> make_int_predict() {
  return std::make_unique<IntPredict>();
}
std::unique_ptr<core::KernelBase> make_planckian() {
  return std::make_unique<Planckian>();
}
std::unique_ptr<core::KernelBase> make_tridiag_elim() {
  return std::make_unique<TridiagElim>();
}

}  // namespace sgp::kernels::lcals
