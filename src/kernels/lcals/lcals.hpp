// Lcals-class kernels: the Livermore Compiler Analysis Loop Suite
// fragments used by RAJAPerf.
#pragma once

#include <memory>

#include "core/kernel_base.hpp"

namespace sgp::kernels::lcals {

std::unique_ptr<core::KernelBase> make_diff_predict();
std::unique_ptr<core::KernelBase> make_eos();
std::unique_ptr<core::KernelBase> make_first_diff();
std::unique_ptr<core::KernelBase> make_first_min();
std::unique_ptr<core::KernelBase> make_first_sum();
std::unique_ptr<core::KernelBase> make_gen_lin_recur();
std::unique_ptr<core::KernelBase> make_hydro_1d();
std::unique_ptr<core::KernelBase> make_hydro_2d();
std::unique_ptr<core::KernelBase> make_int_predict();
std::unique_ptr<core::KernelBase> make_planckian();
std::unique_ptr<core::KernelBase> make_tridiag_elim();

}  // namespace sgp::kernels::lcals
