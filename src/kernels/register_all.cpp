#include "kernels/register_all.hpp"

#include "core/types.hpp"
#include "kernels/algorithm/algorithm.hpp"
#include "kernels/apps/apps.hpp"
#include "kernels/basic/basic.hpp"
#include "kernels/lcals/lcals.hpp"
#include "kernels/polybench/polybench.hpp"
#include "kernels/stream/stream.hpp"

namespace sgp::kernels {

void register_all(core::Registry& reg) {
  using core::Group;

  // Algorithm (6)
  reg.add("MEMCPY", Group::Algorithm, algorithm::make_memcpy);
  reg.add("MEMSET", Group::Algorithm, algorithm::make_memset);
  reg.add("REDUCE_SUM", Group::Algorithm, algorithm::make_reduce_sum);
  reg.add("SCAN", Group::Algorithm, algorithm::make_scan);
  reg.add("SORT", Group::Algorithm, algorithm::make_sort);
  reg.add("SORTPAIRS", Group::Algorithm, algorithm::make_sortpairs);

  // Apps (13)
  reg.add("CONVECTION3DPA", Group::Apps, apps::make_convection3dpa);
  reg.add("DEL_DOT_VEC_2D", Group::Apps, apps::make_del_dot_vec_2d);
  reg.add("DIFFUSION3DPA", Group::Apps, apps::make_diffusion3dpa);
  reg.add("ENERGY", Group::Apps, apps::make_energy);
  reg.add("FIR", Group::Apps, apps::make_fir);
  reg.add("HALO_PACKING", Group::Apps, apps::make_halo_packing);
  reg.add("HALO_UNPACKING", Group::Apps, apps::make_halo_unpacking);
  reg.add("LTIMES", Group::Apps, apps::make_ltimes);
  reg.add("LTIMES_NOVIEW", Group::Apps, apps::make_ltimes_noview);
  reg.add("MASS3DPA", Group::Apps, apps::make_mass3dpa);
  reg.add("NODAL_ACCUMULATION_3D", Group::Apps,
          apps::make_nodal_accumulation_3d);
  reg.add("PRESSURE", Group::Apps, apps::make_pressure);
  reg.add("VOL3D", Group::Apps, apps::make_vol3d);

  // Basic (16)
  reg.add("DAXPY", Group::Basic, basic::make_daxpy);
  reg.add("DAXPY_ATOMIC", Group::Basic, basic::make_daxpy_atomic);
  reg.add("IF_QUAD", Group::Basic, basic::make_if_quad);
  reg.add("INDEXLIST", Group::Basic, basic::make_indexlist);
  reg.add("INDEXLIST_3LOOP", Group::Basic, basic::make_indexlist_3loop);
  reg.add("INIT3", Group::Basic, basic::make_init3);
  reg.add("INIT_VIEW1D", Group::Basic, basic::make_init_view1d);
  reg.add("INIT_VIEW1D_OFFSET", Group::Basic,
          basic::make_init_view1d_offset);
  reg.add("MAT_MAT_SHARED", Group::Basic, basic::make_mat_mat_shared);
  reg.add("MULADDSUB", Group::Basic, basic::make_muladdsub);
  reg.add("NESTED_INIT", Group::Basic, basic::make_nested_init);
  reg.add("PI_ATOMIC", Group::Basic, basic::make_pi_atomic);
  reg.add("PI_REDUCE", Group::Basic, basic::make_pi_reduce);
  reg.add("REDUCE3_INT", Group::Basic, basic::make_reduce3_int);
  reg.add("REDUCE_STRUCT", Group::Basic, basic::make_reduce_struct);
  reg.add("TRAP_INT", Group::Basic, basic::make_trap_int);

  // Lcals (11)
  reg.add("DIFF_PREDICT", Group::Lcals, lcals::make_diff_predict);
  reg.add("EOS", Group::Lcals, lcals::make_eos);
  reg.add("FIRST_DIFF", Group::Lcals, lcals::make_first_diff);
  reg.add("FIRST_MIN", Group::Lcals, lcals::make_first_min);
  reg.add("FIRST_SUM", Group::Lcals, lcals::make_first_sum);
  reg.add("GEN_LIN_RECUR", Group::Lcals, lcals::make_gen_lin_recur);
  reg.add("HYDRO_1D", Group::Lcals, lcals::make_hydro_1d);
  reg.add("HYDRO_2D", Group::Lcals, lcals::make_hydro_2d);
  reg.add("INT_PREDICT", Group::Lcals, lcals::make_int_predict);
  reg.add("PLANCKIAN", Group::Lcals, lcals::make_planckian);
  reg.add("TRIDIAG_ELIM", Group::Lcals, lcals::make_tridiag_elim);

  // Polybench (13)
  reg.add("2MM", Group::Polybench, polybench::make_2mm);
  reg.add("3MM", Group::Polybench, polybench::make_3mm);
  reg.add("ADI", Group::Polybench, polybench::make_adi);
  reg.add("ATAX", Group::Polybench, polybench::make_atax);
  reg.add("FDTD_2D", Group::Polybench, polybench::make_fdtd_2d);
  reg.add("FLOYD_WARSHALL", Group::Polybench,
          polybench::make_floyd_warshall);
  reg.add("GEMM", Group::Polybench, polybench::make_gemm);
  reg.add("GEMVER", Group::Polybench, polybench::make_gemver);
  reg.add("GESUMMV", Group::Polybench, polybench::make_gesummv);
  reg.add("HEAT_3D", Group::Polybench, polybench::make_heat_3d);
  reg.add("JACOBI_1D", Group::Polybench, polybench::make_jacobi_1d);
  reg.add("JACOBI_2D", Group::Polybench, polybench::make_jacobi_2d);
  reg.add("MVT", Group::Polybench, polybench::make_mvt);

  // Stream (5)
  reg.add("ADD", Group::Stream, stream::make_add);
  reg.add("COPY", Group::Stream, stream::make_copy);
  reg.add("DOT", Group::Stream, stream::make_dot);
  reg.add("MUL", Group::Stream, stream::make_mul);
  reg.add("TRIAD", Group::Stream, stream::make_triad);
}

core::Registry make_registry() {
  core::Registry reg;
  register_all(reg);
  return reg;
}

std::vector<core::KernelSignature> all_signatures() {
  const core::Registry reg = make_registry();
  std::vector<core::KernelSignature> sigs;
  for (const auto& name : reg.names()) {
    sigs.push_back(reg.create(name)->signature());
  }
  return sigs;
}

}  // namespace sgp::kernels
