// Deterministic data initialisation shared by kernels (RAJAPerf-style
// reproducible fills).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

namespace sgp::kernels::detail {

/// v[i] = base + i * step (a ramp; detects permutation bugs well).
template <class Real>
std::vector<Real> ramp(std::size_t n, double base = 0.0,
                       double step = 1e-4) {
  std::vector<Real> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<Real>(base + step * static_cast<double>(i));
  }
  return v;
}

/// v[i] = amplitude * sin(i * freq) + offset (bounded, sign-varying).
template <class Real>
std::vector<Real> wavy(std::size_t n, double amplitude = 1.0,
                       double freq = 0.001, double offset = 0.0) {
  std::vector<Real> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<Real>(
        amplitude * std::sin(freq * static_cast<double>(i)) + offset);
  }
  return v;
}

template <class Real>
std::vector<Real> constant(std::size_t n, double value) {
  return std::vector<Real>(n, static_cast<Real>(value));
}

/// Uniform values in [lo, hi), deterministic for a fixed seed.
template <class Real>
std::vector<Real> uniform(std::size_t n, unsigned seed, double lo = 0.0,
                          double hi = 1.0) {
  std::vector<Real> v(n);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (auto& x : v) x = static_cast<Real>(dist(rng));
  return v;
}

/// A random permutation of 0..n-1, deterministic for a fixed seed.
inline std::vector<std::size_t> permutation(std::size_t n, unsigned seed) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::mt19937 rng(seed);
  std::shuffle(idx.begin(), idx.end(), rng);
  return idx;
}

}  // namespace sgp::kernels::detail
