// CRTP helper removing the FP32/FP64 dispatch boilerplate from kernels.
// A derived kernel provides:
//   template <class Real> void init(const core::RunParams&);
//   template <class Real> void run(core::Executor&);
//   template <class Real> long double cksum() const;
//   void reset();
#pragma once

#include "core/kernel_base.hpp"

namespace sgp::kernels::detail {

template <class Derived>
class DualPrecisionKernel : public core::KernelBase {
 public:
  explicit DualPrecisionKernel(core::KernelSignature sig)
      : core::KernelBase(std::move(sig)) {}

  void set_up(core::Precision p, const core::RunParams& rp) final {
    if (p == core::Precision::FP32) {
      d().template init<float>(rp);
    } else {
      d().template init<double>(rp);
    }
  }

  void run_rep(core::Precision p, core::Executor& exec) final {
    if (p == core::Precision::FP32) {
      d().template run<float>(exec);
    } else {
      d().template run<double>(exec);
    }
  }

  long double compute_checksum(core::Precision p) const final {
    return p == core::Precision::FP32 ? dc().template cksum<float>()
                                      : dc().template cksum<double>();
  }

  void tear_down() final { d().reset(); }

 private:
  Derived& d() { return static_cast<Derived&>(*this); }
  const Derived& dc() const { return static_cast<const Derived&>(*this); }
};

/// Holds the per-precision state of a kernel; Real is float or double.
/// Select with state<Real>() inside the kernel.
template <template <class> class StateT>
struct StatePair {
  StateT<float> f32;
  StateT<double> f64;

  template <class Real>
  StateT<Real>& get() {
    if constexpr (std::is_same_v<Real, float>) {
      return f32;
    } else {
      return f64;
    }
  }
  template <class Real>
  const StateT<Real>& get() const {
    if constexpr (std::is_same_v<Real, float>) {
      return f32;
    } else {
      return f64;
    }
  }
  void reset() {
    f32 = StateT<float>{};
    f64 = StateT<double>{};
  }
};

}  // namespace sgp::kernels::detail
