#include "kernels/detail/signature_builder.hpp"

#include <stdexcept>

#include "kernels/vector_facts.hpp"

namespace sgp::kernels::detail {

core::KernelSignature SignatureBuilder::build() const {
  core::KernelSignature sig = sig_;
  if (sig.iters_per_rep <= 0.0) {
    throw std::invalid_argument("SignatureBuilder: " + sig.name +
                                " has no iteration count");
  }
  if (sig.working_set_elems <= 0.0) {
    throw std::invalid_argument("SignatureBuilder: " + sig.name +
                                " has no working set");
  }
  apply_vectorization_facts(sig);
  return sig;
}

}  // namespace sgp::kernels::detail
