// Fluent builder keeping per-kernel signature definitions compact and
// readable.
#pragma once

#include <string>

#include "core/signature.hpp"

namespace sgp::kernels::detail {

class SignatureBuilder {
 public:
  SignatureBuilder(std::string name, core::Group group) {
    sig_.name = std::move(name);
    sig_.group = group;
  }

  SignatureBuilder& iters(double v) { sig_.iters_per_rep = v; return *this; }
  SignatureBuilder& reps(double v) { sig_.reps = v; return *this; }
  SignatureBuilder& regions(double v) {
    sig_.parallel_regions_per_rep = v;
    return *this;
  }
  SignatureBuilder& seq(double v) { sig_.seq_fraction = v; return *this; }
  SignatureBuilder& mix(core::OpMix m) { sig_.mix = m; return *this; }
  SignatureBuilder& streamed(double reads, double writes) {
    sig_.streamed_reads_per_iter = reads;
    sig_.streamed_writes_per_iter = writes;
    return *this;
  }
  SignatureBuilder& working_set(double elems) {
    sig_.working_set_elems = elems;
    return *this;
  }
  SignatureBuilder& pattern(core::AccessPattern p) {
    sig_.pattern = p;
    return *this;
  }
  SignatureBuilder& integer() { sig_.integer_dominated = true; return *this; }
  SignatureBuilder& atomic() { sig_.atomic = true; return *this; }
  SignatureBuilder& recurrence() { sig_.recurrence = true; return *this; }

  /// Finalises; vectorisation facts are applied from the central table
  /// (kernels/vector_facts.cpp).
  core::KernelSignature build() const;

 private:
  core::KernelSignature sig_;
};

}  // namespace sgp::kernels::detail
