#include "kernels/stream/stream.hpp"

#include <vector>

#include "core/checksum.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::stream {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

constexpr std::size_t kN = 4'000'000;
constexpr double kReps = 100;

// ---------------------------------------------------------------- ADD --
class Add final : public detail::DualPrecisionKernel<Add> {
 public:
  Add()
      : DualPrecisionKernel(
            SignatureBuilder("ADD", Group::Stream)
                .iters(kN)
                .reps(kReps)
                .mix(OpMix{.fadd = 1, .loads = 2, .stores = 1})
                .streamed(2, 1)
                .working_set(3.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.a = detail::ramp<Real>(n, 0.1);
    s.b = detail::ramp<Real>(n, 0.2);
    s.c.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    Real* c = s.c.data();
    exec.parallel_for(s.c.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) c[i] = a[i] + b[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().c));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------------- COPY --
class Copy final : public detail::DualPrecisionKernel<Copy> {
 public:
  Copy()
      : DualPrecisionKernel(
            SignatureBuilder("COPY", Group::Stream)
                .iters(kN)
                .reps(kReps)
                .mix(OpMix{.loads = 1, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, c;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.a = detail::wavy<Real>(n, 2.0);
    s.c.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* a = s.a.data();
    Real* c = s.c.data();
    exec.parallel_for(s.c.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) c[i] = a[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().c));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------------- DOT --
class Dot final : public detail::DualPrecisionKernel<Dot> {
 public:
  Dot()
      : DualPrecisionKernel(
            SignatureBuilder("DOT", Group::Stream)
                .iters(kN)
                .reps(kReps)
                .mix(OpMix{.ffma = 1, .loads = 2})
                .streamed(2, 0)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Reduction)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b;
    Real dot = Real(0);
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.a = detail::wavy<Real>(n, 1.0, 0.002, 0.5);
    s.b = detail::wavy<Real>(n, 1.0, 0.003, 0.25);
    s.dot = Real(0);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    std::vector<double> partial(
        static_cast<std::size_t>(exec.max_chunks()), 0.0);
    double* part = partial.data();
    exec.parallel_for(s.a.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        double sum = 0.0;
                        for (std::size_t i = lo; i < hi; ++i) {
                          sum += static_cast<double>(a[i]) * b[i];
                        }
                        part[chunk] = sum;
                      });
    double total = 0.0;
    for (double v : partial) total += v;
    s.dot = static_cast<Real>(total);
  }

  template <class Real>
  long double cksum() const {
    return static_cast<long double>(st_.get<Real>().dot);
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------------- MUL --
class Mul final : public detail::DualPrecisionKernel<Mul> {
 public:
  Mul()
      : DualPrecisionKernel(
            SignatureBuilder("MUL", Group::Stream)
                .iters(kN)
                .reps(kReps)
                .mix(OpMix{.fmul = 1, .loads = 1, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> b, c;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.c = detail::wavy<Real>(n, 1.5, 0.004, 1.0);
    s.b.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real alpha = Real(0.5);
    const Real* c = s.c.data();
    Real* b = s.b.data();
    exec.parallel_for(s.b.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) b[i] = alpha * c[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().b));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// -------------------------------------------------------------- TRIAD --
class Triad final : public detail::DualPrecisionKernel<Triad> {
 public:
  Triad()
      : DualPrecisionKernel(
            SignatureBuilder("TRIAD", Group::Stream)
                .iters(kN)
                .reps(kReps)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 1})
                .streamed(2, 1)
                .working_set(3.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.b = detail::ramp<Real>(n, 0.5, 2e-4);
    s.c = detail::wavy<Real>(n, 1.0, 0.001, 0.5);
    s.a.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real alpha = Real(0.25);
    const Real* b = s.b.data();
    const Real* c = s.c.data();
    Real* a = s.a.data();
    exec.parallel_for(s.a.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + alpha * c[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().a));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_add() {
  return std::make_unique<Add>();
}
std::unique_ptr<core::KernelBase> make_copy() {
  return std::make_unique<Copy>();
}
std::unique_ptr<core::KernelBase> make_dot() {
  return std::make_unique<Dot>();
}
std::unique_ptr<core::KernelBase> make_mul() {
  return std::make_unique<Mul>();
}
std::unique_ptr<core::KernelBase> make_triad() {
  return std::make_unique<Triad>();
}

}  // namespace sgp::kernels::stream
