// The five STREAM-class kernels (memory-bandwidth focused, simple
// vectorisable loops).
#pragma once

#include <memory>

#include "core/kernel_base.hpp"

namespace sgp::kernels::stream {

std::unique_ptr<core::KernelBase> make_add();
std::unique_ptr<core::KernelBase> make_copy();
std::unique_ptr<core::KernelBase> make_dot();
std::unique_ptr<core::KernelBase> make_mul();
std::unique_ptr<core::KernelBase> make_triad();

}  // namespace sgp::kernels::stream
