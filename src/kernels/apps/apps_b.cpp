// Apps kernels, part 2: transport sweeps (LTIMES variants), nodal
// accumulation, PRESSURE and VOL3D.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/apps/apps.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::apps {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

// LTIMES dimensions (RAJAPerf shapes, scaled to suite-friendly sizes):
// phi[z][g][m] += ell[m][d] * psi[z][g][d]
constexpr std::size_t kNumZ = 500, kNumG = 8, kNumM = 8, kNumD = 8;

template <class Real>
struct LtimesState {
  std::vector<Real> phi, ell, psi;
  std::size_t nz = 0;
};

template <class Real>
void init_ltimes(LtimesState<Real>& s, const core::RunParams& rp,
                 unsigned seed_offset) {
  s.nz = rp.scaled(kNumZ, 4);
  s.ell = detail::uniform<Real>(kNumM * kNumD, rp.seed + seed_offset, 0.0,
                                1.0);
  s.psi = detail::uniform<Real>(s.nz * kNumG * kNumD,
                                rp.seed + seed_offset + 1, 0.0, 1.0);
  s.phi.assign(s.nz * kNumG * kNumM, Real(0));
}

template <class Real>
void run_ltimes(LtimesState<Real>& s, core::Executor& exec) {
  const Real* ell = s.ell.data();
  const Real* psi = s.psi.data();
  Real* phi = s.phi.data();
  exec.parallel_for(s.nz, [=](std::size_t lo, std::size_t hi, int) {
    for (std::size_t z = lo; z < hi; ++z) {
      for (std::size_t g = 0; g < kNumG; ++g) {
        const Real* psi_zg = psi + (z * kNumG + g) * kNumD;
        Real* phi_zg = phi + (z * kNumG + g) * kNumM;
        for (std::size_t m = 0; m < kNumM; ++m) {
          Real acc = Real(0);
          for (std::size_t d = 0; d < kNumD; ++d) {
            acc += ell[m * kNumD + d] * psi_zg[d];
          }
          phi_zg[m] += acc;
        }
      }
    }
  });
}

core::KernelSignature ltimes_signature(const char* name) {
  return SignatureBuilder(name, Group::Apps)
      .iters(static_cast<double>(kNumZ) * kNumG * kNumM * kNumD)
      .reps(60)
      .mix(OpMix{.ffma = 1, .loads = 2, .stores = 0.125})
      .streamed(0.2, 0.125)
      .working_set(static_cast<double>(kNumZ) * kNumG * (kNumM + kNumD))
      .pattern(AccessPattern::BlockedMatrix)
      .build();
}

// ------------------------------------------------------------- LTIMES --
class Ltimes final : public detail::DualPrecisionKernel<Ltimes> {
 public:
  Ltimes() : DualPrecisionKernel(ltimes_signature("LTIMES")) {}

  template <class Real>
  using State = LtimesState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    init_ltimes(st_.get<Real>(), rp, 61);
  }
  template <class Real>
  void run(core::Executor& exec) {
    run_ltimes(st_.get<Real>(), exec);
  }
  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().phi));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------ LTIMES_NOVIEW --
// Identical math, flat indexing (RAJAPerf uses it to measure the view
// abstraction's overhead; natively the two coincide, and the model
// prices them identically, which reproduces the paper's near-equal
// results for this pair).
class LtimesNoview final : public detail::DualPrecisionKernel<LtimesNoview> {
 public:
  LtimesNoview() : DualPrecisionKernel(ltimes_signature("LTIMES_NOVIEW")) {}

  template <class Real>
  using State = LtimesState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    init_ltimes(st_.get<Real>(), rp, 63);
  }
  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* ell = s.ell.data();
    const Real* psi = s.psi.data();
    Real* phi = s.phi.data();
    const std::size_t nz = s.nz;
    exec.parallel_for(nz * kNumG, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t zg = lo; zg < hi; ++zg) {
        for (std::size_t m = 0; m < kNumM; ++m) {
          Real acc = Real(0);
          for (std::size_t d = 0; d < kNumD; ++d) {
            acc += ell[m * kNumD + d] * psi[zg * kNumD + d];
          }
          phi[zg * kNumM + m] += acc;
        }
      }
    });
  }
  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().phi));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------- NODAL_ACCUMULATION_3D --
// Scatters an eighth of each zone value onto its 8 corner nodes
// (atomic adds, distinct-but-colliding locations).
class NodalAccumulation3d final
    : public detail::DualPrecisionKernel<NodalAccumulation3d> {
 public:
  static constexpr std::size_t kDim = 60;

  NodalAccumulation3d()
      : DualPrecisionKernel(
            SignatureBuilder("NODAL_ACCUMULATION_3D", Group::Apps)
                .iters(static_cast<double>(kDim) * kDim * kDim)
                .reps(60)
                .mix(OpMix{.fadd = 8, .fmul = 1, .iops = 8, .loads = 9,
                           .stores = 8})
                .streamed(2, 2)
                .working_set(2.0 * kDim * kDim * kDim)
                .pattern(AccessPattern::Gather)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> vol, x;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 4);
    s.vol = detail::uniform<Real>(s.n * s.n * s.n, rp.seed + 71, 0.5, 1.5);
    s.x.assign((s.n + 1) * (s.n + 1) * (s.n + 1), Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const std::size_t np = n + 1;
    const Real* vol = s.vol.data();
    Real* x = s.x.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t k = 0; k < n; ++k) {
            const Real v = Real(0.125) * vol[(i * n + j) * n + k];
            const std::size_t base = (i * np + j) * np + k;
            const std::size_t corners[8] = {
                base,
                base + 1,
                base + np,
                base + np + 1,
                base + np * np,
                base + np * np + 1,
                base + np * np + np,
                base + np * np + np + 1};
            for (const std::size_t c : corners) {
              std::atomic_ref<Real> ref(x[c]);
              ref.fetch_add(v, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------------- PRESSURE --
// Two dependent sweeps: compression -> equation of state.
class Pressure final : public detail::DualPrecisionKernel<Pressure> {
 public:
  static constexpr std::size_t kN = 700'000;

  Pressure()
      : DualPrecisionKernel(
            SignatureBuilder("PRESSURE", Group::Apps)
                .iters(kN)
                .reps(70)
                .regions(2)
                .mix(OpMix{.fadd = 1, .fmul = 3, .fcmp = 2, .loads = 3,
                           .stores = 2, .branches = 2})
                .streamed(3, 2)
                .working_set(4.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> compression, bvc, p_new, e_old, vnewc;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.compression = detail::uniform<Real>(n, rp.seed + 81, -0.2, 0.8);
    s.e_old = detail::uniform<Real>(n, rp.seed + 82, 0.1, 1.2);
    s.vnewc = detail::uniform<Real>(n, rp.seed + 83, 0.7, 1.3);
    s.bvc.assign(n, Real(0));
    s.p_new.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.bvc.size();
    const Real* compression = s.compression.data();
    Real* bvc = s.bvc.data();
    Real* p_new = s.p_new.data();
    const Real* e_old = s.e_old.data();
    const Real* vnewc = s.vnewc.data();
    const Real cls = Real(2.0 / 3.0), p_cut = Real(1e-7),
               pmin = Real(0), eosvmax = Real(1.2);
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        bvc[i] = cls * (compression[i] + Real(1));
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        p_new[i] = bvc[i] * e_old[i];
        if (std::abs(p_new[i]) < p_cut) p_new[i] = Real(0);
        if (vnewc[i] >= eosvmax) p_new[i] = Real(0);
        if (p_new[i] < pmin) p_new[i] = pmin;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().p_new));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// -------------------------------------------------------------- VOL3D --
// Hexahedral zone volumes from corner coordinates (heavy flop stencil).
class Vol3d final : public detail::DualPrecisionKernel<Vol3d> {
 public:
  static constexpr std::size_t kDim = 80;

  Vol3d()
      : DualPrecisionKernel(
            SignatureBuilder("VOL3D", Group::Apps)
                .iters(static_cast<double>(kDim) * kDim * kDim)
                .reps(50)
                .mix(OpMix{.fadd = 24, .fmul = 9, .ffma = 18, .loads = 24,
                           .stores = 1})
                .streamed(4, 1)
                .working_set(4.0 * kDim * kDim * kDim)
                .pattern(AccessPattern::Stencil3D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y, z, vol;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 4);
    const std::size_t np = s.n + 1;
    const std::size_t nn = np * np * np;
    s.x.resize(nn);
    s.y.resize(nn);
    s.z.resize(nn);
    for (std::size_t i = 0; i < np; ++i) {
      for (std::size_t j = 0; j < np; ++j) {
        for (std::size_t k = 0; k < np; ++k) {
          const std::size_t idx = (i * np + j) * np + k;
          // A gently perturbed structured mesh.
          s.x[idx] = static_cast<Real>(i + 0.05 * std::sin(0.4 * (j + k)));
          s.y[idx] = static_cast<Real>(j + 0.05 * std::sin(0.4 * (i + k)));
          s.z[idx] = static_cast<Real>(k + 0.05 * std::sin(0.4 * (i + j)));
        }
      }
    }
    s.vol.assign(s.n * s.n * s.n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const std::size_t np = n + 1;
    const Real* x = s.x.data();
    const Real* y = s.y.data();
    const Real* z = s.z.data();
    Real* vol = s.vol.data();
    const Real vnormq = Real(0.083333333333333333);
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      auto at = [np](std::size_t i, std::size_t j, std::size_t k) {
        return (i * np + j) * np + k;
      };
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t k = 0; k < n; ++k) {
            const std::size_t c0 = at(i, j, k);
            const std::size_t c1 = at(i + 1, j, k);
            const std::size_t c2 = at(i, j + 1, k);
            const std::size_t c3 = at(i + 1, j + 1, k);
            const std::size_t c4 = at(i, j, k + 1);
            const std::size_t c5 = at(i + 1, j, k + 1);
            const std::size_t c6 = at(i, j + 1, k + 1);
            const std::size_t c7 = at(i + 1, j + 1, k + 1);

            const Real x71 = x[c7] - x[c1], x72 = x[c7] - x[c2],
                       x74 = x[c7] - x[c4], x30 = x[c3] - x[c0],
                       x50 = x[c5] - x[c0], x60 = x[c6] - x[c0];
            const Real y71 = y[c7] - y[c1], y72 = y[c7] - y[c2],
                       y74 = y[c7] - y[c4], y30 = y[c3] - y[c0],
                       y50 = y[c5] - y[c0], y60 = y[c6] - y[c0];
            const Real z71 = z[c7] - z[c1], z72 = z[c7] - z[c2],
                       z74 = z[c7] - z[c4], z30 = z[c3] - z[c0],
                       z50 = z[c5] - z[c0], z60 = z[c6] - z[c0];

            const Real xps1 = x71 + x60, yps1 = y71 + y60, zps1 = z71 + z60;
            const Real xps2 = x72 + x50, yps2 = y72 + y50, zps2 = z72 + z50;
            const Real xps3 = x74 + x30, yps3 = y74 + y30, zps3 = z74 + z30;

            const Real det1 = xps1 * (y72 * z30 - y30 * z72) +
                              yps1 * (x30 * z72 - x72 * z30) +
                              zps1 * (x72 * y30 - x30 * y72);
            const Real det2 = xps2 * (y74 * z60 - y60 * z74) +
                              yps2 * (x60 * z74 - x74 * z60) +
                              zps2 * (x74 * y60 - x60 * y74);
            const Real det3 = xps3 * (y71 * z50 - y50 * z71) +
                              yps3 * (x50 * z71 - x71 * z50) +
                              zps3 * (x71 * y50 - x50 * y71);

            vol[(i * n + j) * n + k] = vnormq * (det1 + det2 + det3);
          }
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().vol));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_ltimes() {
  return std::make_unique<Ltimes>();
}
std::unique_ptr<core::KernelBase> make_ltimes_noview() {
  return std::make_unique<LtimesNoview>();
}
std::unique_ptr<core::KernelBase> make_nodal_accumulation_3d() {
  return std::make_unique<NodalAccumulation3d>();
}
std::unique_ptr<core::KernelBase> make_pressure() {
  return std::make_unique<Pressure>();
}
std::unique_ptr<core::KernelBase> make_vol3d() {
  return std::make_unique<Vol3d>();
}

}  // namespace sgp::kernels::apps
