// Shared machinery for the 3D partial-assembly FEM kernels
// (MASS3DPA, DIFFUSION3DPA, CONVECTION3DPA): sum-factorised tensor
// contractions of element DOFs to quadrature points and back.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace sgp::kernels::apps::pa {

constexpr std::size_t kD = 4;  ///< dofs per dimension (Q3 elements)
constexpr std::size_t kQ = 5;  ///< quadrature points per dimension

constexpr std::size_t dofs_per_elem() { return kD * kD * kD; }
constexpr std::size_t quads_per_elem() { return kQ * kQ * kQ; }

/// Interpolation matrix B[q][d] (deterministic, well-conditioned).
template <class Real>
std::array<Real, kQ * kD> basis(double scale) {
  std::array<Real, kQ * kD> b{};
  for (std::size_t q = 0; q < kQ; ++q) {
    for (std::size_t d = 0; d < kD; ++d) {
      const double x =
          0.1 + scale * static_cast<double>(q + 1) /
                    static_cast<double>((d + 2) * (kQ + kD));
      b[q * kD + d] = static_cast<Real>(x);
    }
  }
  return b;
}

/// Sum-factorised contraction: X[kD]^3 dofs -> U[kQ]^3 values using
/// B (and then the reverse with Bt). Writing it out keeps the flop
/// pattern of the real MFEM kernels without their full index zoo.
template <class Real>
void interp_to_quads(const Real* x, const Real* b, Real* u) {
  // Stage 1: contract the innermost dof dimension.
  Real t1[kQ][kD][kD] = {};
  for (std::size_t dz = 0; dz < kD; ++dz) {
    for (std::size_t dy = 0; dy < kD; ++dy) {
      for (std::size_t qx = 0; qx < kQ; ++qx) {
        Real acc = Real(0);
        for (std::size_t dx = 0; dx < kD; ++dx) {
          acc += b[qx * kD + dx] * x[(dz * kD + dy) * kD + dx];
        }
        t1[qx][dy][dz] = acc;
      }
    }
  }
  // Stage 2: middle dimension.
  Real t2[kQ][kQ][kD] = {};
  for (std::size_t dz = 0; dz < kD; ++dz) {
    for (std::size_t qy = 0; qy < kQ; ++qy) {
      for (std::size_t qx = 0; qx < kQ; ++qx) {
        Real acc = Real(0);
        for (std::size_t dy = 0; dy < kD; ++dy) {
          acc += b[qy * kD + dy] * t1[qx][dy][dz];
        }
        t2[qx][qy][dz] = acc;
      }
    }
  }
  // Stage 3: outer dimension.
  for (std::size_t qz = 0; qz < kQ; ++qz) {
    for (std::size_t qy = 0; qy < kQ; ++qy) {
      for (std::size_t qx = 0; qx < kQ; ++qx) {
        Real acc = Real(0);
        for (std::size_t dz = 0; dz < kD; ++dz) {
          acc += b[qz * kD + dz] * t2[qx][qy][dz];
        }
        u[(qz * kQ + qy) * kQ + qx] = acc;
      }
    }
  }
}

/// Transpose contraction: quadrature values back to dofs (B^T action).
template <class Real>
void quads_to_dofs(const Real* u, const Real* b, Real* y) {
  Real t1[kD][kQ][kQ] = {};
  for (std::size_t qz = 0; qz < kQ; ++qz) {
    for (std::size_t qy = 0; qy < kQ; ++qy) {
      for (std::size_t dx = 0; dx < kD; ++dx) {
        Real acc = Real(0);
        for (std::size_t qx = 0; qx < kQ; ++qx) {
          acc += b[qx * kD + dx] * u[(qz * kQ + qy) * kQ + qx];
        }
        t1[dx][qy][qz] = acc;
      }
    }
  }
  Real t2[kD][kD][kQ] = {};
  for (std::size_t qz = 0; qz < kQ; ++qz) {
    for (std::size_t dy = 0; dy < kD; ++dy) {
      for (std::size_t dx = 0; dx < kD; ++dx) {
        Real acc = Real(0);
        for (std::size_t qy = 0; qy < kQ; ++qy) {
          acc += b[qy * kD + dy] * t1[dx][qy][qz];
        }
        t2[dx][dy][qz] = acc;
      }
    }
  }
  for (std::size_t dz = 0; dz < kD; ++dz) {
    for (std::size_t dy = 0; dy < kD; ++dy) {
      for (std::size_t dx = 0; dx < kD; ++dx) {
        Real acc = Real(0);
        for (std::size_t qz = 0; qz < kQ; ++qz) {
          acc += b[qz * kD + dz] * t2[dx][dy][qz];
        }
        y[(dz * kD + dy) * kD + dx] += acc;
      }
    }
  }
}

}  // namespace sgp::kernels::apps::pa
