// Apps-class kernels: fragments of real HPC applications (FEM partial
// assembly, halo exchange packing, hydro fragments, transport sweeps).
#pragma once

#include <memory>

#include "core/kernel_base.hpp"

namespace sgp::kernels::apps {

std::unique_ptr<core::KernelBase> make_convection3dpa();
std::unique_ptr<core::KernelBase> make_del_dot_vec_2d();
std::unique_ptr<core::KernelBase> make_diffusion3dpa();
std::unique_ptr<core::KernelBase> make_energy();
std::unique_ptr<core::KernelBase> make_fir();
std::unique_ptr<core::KernelBase> make_halo_packing();
std::unique_ptr<core::KernelBase> make_halo_unpacking();
std::unique_ptr<core::KernelBase> make_ltimes();
std::unique_ptr<core::KernelBase> make_ltimes_noview();
std::unique_ptr<core::KernelBase> make_mass3dpa();
std::unique_ptr<core::KernelBase> make_nodal_accumulation_3d();
std::unique_ptr<core::KernelBase> make_pressure();
std::unique_ptr<core::KernelBase> make_vol3d();

}  // namespace sgp::kernels::apps
