// Apps kernels, part 1: the three partial-assembly FEM operators, the
// 2D divergence fragment, ENERGY, FIR and halo packing/unpacking.
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/apps/apps.hpp"
#include "kernels/apps/pa_common.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::apps {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

constexpr std::size_t kNE = 4000;  // elements for the PA kernels

core::KernelSignature pa_signature(const char* name, double flops_scale) {
  return SignatureBuilder(name, Group::Apps)
      .iters(static_cast<double>(kNE) * pa::quads_per_elem())
      .reps(30)
      .mix(OpMix{.ffma = 10 * flops_scale, .loads = 6, .stores = 1})
      // Each quadrature point streams its qdata entries (6 symmetric
      // operator values) besides the element dofs.
      .streamed(4.0, 1.2)
      .working_set(kNE * (2.0 * pa::dofs_per_elem() +
                          6.0 * pa::quads_per_elem()))
      .pattern(AccessPattern::BlockedMatrix)
      .build();
}

/// Common state/driver for the three PA operators; the derived kernels
/// differ in the quadrature-point multiplier they apply.
template <class Real>
struct PaState {
  std::vector<Real> x, y, qdata;
  std::array<Real, pa::kQ * pa::kD> b{};
  std::size_t ne = 0;
};

template <class Real, class QFunc>
void run_pa(PaState<Real>& s, core::Executor& exec, const QFunc& qfunc) {
  const Real* x = s.x.data();
  Real* y = s.y.data();
  const Real* qd = s.qdata.data();
  const Real* b = s.b.data();
  exec.parallel_for(s.ne, [=](std::size_t lo, std::size_t hi, int) {
    Real u[pa::quads_per_elem()];
    for (std::size_t e = lo; e < hi; ++e) {
      const Real* xe = x + e * pa::dofs_per_elem();
      Real* ye = y + e * pa::dofs_per_elem();
      const Real* qe = qd + e * pa::quads_per_elem();
      pa::interp_to_quads(xe, b, u);
      for (std::size_t q = 0; q < pa::quads_per_elem(); ++q) {
        u[q] = qfunc(u[q], qe[q], q);
      }
      pa::quads_to_dofs(u, b, ye);
    }
  });
}

template <class Real>
void init_pa(PaState<Real>& s, const core::RunParams& rp, double scale,
             unsigned seed_offset) {
  s.ne = rp.scaled(kNE, 4);
  s.x = detail::wavy<Real>(s.ne * pa::dofs_per_elem(), 0.5, 0.0021, 0.4);
  s.qdata =
      detail::uniform<Real>(s.ne * pa::quads_per_elem(),
                            rp.seed + seed_offset, 0.5, 1.5);
  s.y.assign(s.ne * pa::dofs_per_elem(), Real(0));
  s.b = pa::basis<Real>(scale);
}

// ----------------------------------------------------------- MASS3DPA --
class Mass3dpa final : public detail::DualPrecisionKernel<Mass3dpa> {
 public:
  Mass3dpa() : DualPrecisionKernel(pa_signature("MASS3DPA", 1.0)) {}

  template <class Real>
  using State = PaState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    init_pa(st_.get<Real>(), rp, 1.0, 41);
  }
  template <class Real>
  void run(core::Executor& exec) {
    run_pa(st_.get<Real>(), exec,
           [](Real u, Real q, std::size_t) { return u * q; });
  }
  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------ DIFFUSION3DPA --
class Diffusion3dpa final : public detail::DualPrecisionKernel<Diffusion3dpa> {
 public:
  Diffusion3dpa() : DualPrecisionKernel(pa_signature("DIFFUSION3DPA", 1.4)) {}

  template <class Real>
  using State = PaState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    init_pa(st_.get<Real>(), rp, 1.2, 42);
  }
  template <class Real>
  void run(core::Executor& exec) {
    // Diffusion weights the value by the symmetric operator entry and a
    // gradient-magnitude proxy.
    run_pa(st_.get<Real>(), exec, [](Real u, Real q, std::size_t idx) {
      const Real g = Real(0.5) + Real(idx % pa::kQ) * Real(0.1);
      return u * q * g + u * Real(0.05);
    });
  }
  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------- CONVECTION3DPA --
class Convection3dpa final
    : public detail::DualPrecisionKernel<Convection3dpa> {
 public:
  Convection3dpa()
      : DualPrecisionKernel(pa_signature("CONVECTION3DPA", 1.2)) {}

  template <class Real>
  using State = PaState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    init_pa(st_.get<Real>(), rp, 0.9, 43);
  }
  template <class Real>
  void run(core::Executor& exec) {
    // Convection applies a directional (skew) velocity weighting.
    run_pa(st_.get<Real>(), exec, [](Real u, Real q, std::size_t idx) {
      const Real vx = Real(0.3), vy = Real(0.5), vz = Real(0.2);
      const std::size_t qx = idx % pa::kQ;
      const std::size_t qy = (idx / pa::kQ) % pa::kQ;
      const std::size_t qz = idx / (pa::kQ * pa::kQ);
      const Real dir = vx * Real(qx) + vy * Real(qy) + vz * Real(qz);
      return u * q * (Real(1) + Real(0.01) * dir);
    });
  }
  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------- DEL_DOT_VEC_2D --
// Divergence of a vector field on a 2D staggered mesh.
class DelDotVec2d final : public detail::DualPrecisionKernel<DelDotVec2d> {
 public:
  static constexpr std::size_t kDim = 700;

  DelDotVec2d()
      : DualPrecisionKernel(
            SignatureBuilder("DEL_DOT_VEC_2D", Group::Apps)
                .iters(static_cast<double>(kDim) * kDim)
                .reps(60)
                .mix(OpMix{.fadd = 4, .fmul = 2, .ffma = 6, .loads = 8,
                           .stores = 1})
                .streamed(3, 1)
                .working_set(5.0 * kDim * kDim)
                .pattern(AccessPattern::Stencil2D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y, xdot, ydot, div;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    const std::size_t nn = (s.n + 1) * (s.n + 1);
    s.x = detail::ramp<Real>(nn, 0.0, 1.0 / static_cast<double>(s.n));
    s.y = detail::ramp<Real>(nn, 0.0, 1.0 / static_cast<double>(s.n));
    s.xdot = detail::wavy<Real>(nn, 0.1, 0.0031, 0.2);
    s.ydot = detail::wavy<Real>(nn, 0.1, 0.0017, 0.1);
    s.div.assign(s.n * s.n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const std::size_t np = n + 1;
    const Real* x = s.x.data();
    const Real* y = s.y.data();
    const Real* xd = s.xdot.data();
    const Real* yd = s.ydot.data();
    Real* div = s.div.data();
    const Real half = Real(0.5), ptiny = Real(1e-12);
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t c0 = i * np + j;       // SW corner
          const std::size_t c1 = c0 + 1;           // SE
          const std::size_t c2 = c0 + np + 1;      // NE
          const std::size_t c3 = c0 + np;          // NW
          const Real xi = half * (x[c1] + x[c2] - x[c0] - x[c3]);
          const Real xj = half * (x[c3] + x[c2] - x[c0] - x[c1]);
          const Real yi = half * (y[c1] + y[c2] - y[c0] - y[c3]);
          const Real yj = half * (y[c3] + y[c2] - y[c0] - y[c1]);
          const Real fx = half * (xd[c1] + xd[c2] - xd[c0] - xd[c3]);
          const Real gx = half * (xd[c3] + xd[c2] - xd[c0] - xd[c1]);
          const Real fy = half * (yd[c1] + yd[c2] - yd[c0] - yd[c3]);
          const Real gy = half * (yd[c3] + yd[c2] - yd[c0] - yd[c1]);
          const Real rarea = Real(1) / (xi * yj - xj * yi + ptiny);
          div[i * n + j] = rarea * (fx * yj - fy * xj + gy * xi - gx * yi);
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().div));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------- ENERGY --
// Six dependent sweeps over the zone arrays (the RAJAPerf ENERGY kernel
// launches six parallel regions per rep).
class Energy final : public detail::DualPrecisionKernel<Energy> {
 public:
  static constexpr std::size_t kN = 400'000;

  Energy()
      : DualPrecisionKernel(
            SignatureBuilder("ENERGY", Group::Apps)
                .iters(kN)
                .reps(50)
                .regions(6)
                .seq(0.0)
                .mix(OpMix{.fadd = 5, .fmul = 4, .fcmp = 2, .loads = 7,
                           .stores = 2, .branches = 2})
                .streamed(6, 2)
                .working_set(9.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> e_new, e_old, delvc, p_new, p_old, q_new, q_old,
        work, compHalfStep;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.e_old = detail::uniform<Real>(n, rp.seed + 51, 0.5, 1.5);
    s.delvc = detail::wavy<Real>(n, 0.2, 0.0013, 0.0);
    s.p_old = detail::uniform<Real>(n, rp.seed + 52, 0.2, 1.0);
    s.q_old = detail::uniform<Real>(n, rp.seed + 53, 0.1, 0.6);
    s.work = detail::wavy<Real>(n, 0.1, 0.0031, 0.05);
    s.compHalfStep = detail::uniform<Real>(n, rp.seed + 54, 0.8, 1.2);
    s.e_new.assign(n, Real(0));
    s.p_new.assign(n, Real(0));
    s.q_new.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.e_old.size();
    Real* e_new = s.e_new.data();
    const Real* e_old = s.e_old.data();
    const Real* delvc = s.delvc.data();
    Real* p_new = s.p_new.data();
    const Real* p_old = s.p_old.data();
    Real* q_new = s.q_new.data();
    const Real* q_old = s.q_old.data();
    const Real* work = s.work.data();
    const Real* chs = s.compHalfStep.data();
    const Real half = Real(0.5), emin = Real(-1e10), rho0 = Real(1.0);

    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        e_new[i] = e_old[i] - half * delvc[i] * (p_old[i] + q_old[i]) +
                   half * work[i];
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (delvc[i] > Real(0)) {
          q_new[i] = Real(0);
        } else {
          q_new[i] = q_old[i] * chs[i];
        }
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        e_new[i] += half * delvc[i] *
                    (Real(3) * (p_old[i] + q_old[i]) - Real(4) * q_new[i]);
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        e_new[i] += half * work[i];
        if (std::abs(e_new[i]) < Real(1e-12)) e_new[i] = Real(0);
        if (e_new[i] < emin) e_new[i] = emin;
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        p_new[i] = rho0 * e_new[i] * chs[i];
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        q_new[i] = q_new[i] + half * delvc[i] * p_new[i];
      }
    });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.e_new)) +
           core::checksum(std::span<const Real>(s.q_new));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------------- FIR --
class Fir final : public detail::DualPrecisionKernel<Fir> {
 public:
  static constexpr std::size_t kN = 1'000'000;
  static constexpr std::size_t kTaps = 16;

  Fir()
      : DualPrecisionKernel(
            SignatureBuilder("FIR", Group::Apps)
                .iters(kN)
                .reps(60)
                .mix(OpMix{.ffma = 16, .loads = 17, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Stencil1D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> in, out;
    std::array<Real, kTaps> coeff{};
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.in = detail::wavy<Real>(n + kTaps, 1.0, 0.01, 0.0);
    s.out.assign(n, Real(0));
    for (std::size_t t = 0; t < kTaps; ++t) {
      s.coeff[t] = static_cast<Real>((t % 2 == 0 ? 1.0 : -1.0) /
                                     static_cast<double>(t + 2));
    }
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* in = s.in.data();
    Real* out = s.out.data();
    const auto coeff = s.coeff;  // by value into the lambda
    exec.parallel_for(s.out.size(),
                      [=](std::size_t lo, std::size_t hi, int) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          Real acc = Real(0);
                          for (std::size_t t = 0; t < kTaps; ++t) {
                            acc += coeff[t] * in[i + t];
                          }
                          out[i] = acc;
                        }
                      });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().out));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------- HALO_PACKING (+UN) --
// Gathers the 26 boundary surfaces of three 3D variables into exchange
// buffers (packing) or scatters them back (unpacking). One parallel
// region per direction keeps the RAJAPerf structure: many small loops,
// which is exactly why the apps class scales poorly at low thread
// counts.
template <class Real>
struct HaloState {
  std::vector<Real> var1, var2, var3, buffer;
  std::vector<std::int64_t> index_list;       // gathered cell indices
  std::vector<std::size_t> dir_offset;        // 27 entries: prefix sums
  std::size_t n = 0;
};

template <class Real>
void init_halo(HaloState<Real>& s, const core::RunParams& rp) {
  s.n = rp.scaled(100, 8);
  const std::size_t n = s.n;
  const std::size_t nn = n * n * n;
  s.var1 = detail::wavy<Real>(nn, 0.5, 0.0011, 0.3);
  s.var2 = detail::wavy<Real>(nn, 0.5, 0.0023, 0.2);
  s.var3 = detail::wavy<Real>(nn, 0.5, 0.0037, 0.1);
  s.index_list.clear();
  s.dir_offset.assign(1, 0);
  auto at = [n](std::size_t i, std::size_t j, std::size_t k) {
    return (i * n + j) * n + k;
  };
  // 26 directions: each dimension offset in {-1, 0, +1}, not all zero.
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      for (int dk = -1; dk <= 1; ++dk) {
        if (di == 0 && dj == 0 && dk == 0) continue;
        const auto range = [n](int d) -> std::pair<std::size_t, std::size_t> {
          if (d < 0) return {0, 1};
          if (d > 0) return {n - 1, n};
          return {0, n};
        };
        const auto [i0, i1] = range(di);
        const auto [j0, j1] = range(dj);
        const auto [k0, k1] = range(dk);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            for (std::size_t k = k0; k < k1; ++k) {
              s.index_list.push_back(
                  static_cast<std::int64_t>(at(i, j, k)));
            }
          }
        }
        s.dir_offset.push_back(s.index_list.size());
      }
    }
  }
  s.buffer.assign(3 * s.index_list.size(), Real(0));
}

class HaloPacking final : public detail::DualPrecisionKernel<HaloPacking> {
 public:
  HaloPacking()
      : DualPrecisionKernel(
            SignatureBuilder("HALO_PACKING", Group::Apps)
                .iters(3.0 * 61208)  // 3 vars x boundary cells of 100^3
                .reps(50)
                .regions(78)
                .seq(0.02)
                .mix(OpMix{.iops = 2, .loads = 2, .stores = 1})
                .streamed(1.2, 1)
                .working_set(7.0 * 61208)
                .pattern(AccessPattern::Gather)
                .build()) {}

  template <class Real>
  using State = HaloState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    init_halo(st_.get<Real>(), rp);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::int64_t* list = s.index_list.data();
    const std::size_t stride = s.index_list.size();
    const Real* vars[3] = {s.var1.data(), s.var2.data(), s.var3.data()};
    Real* buffer = s.buffer.data();
    for (std::size_t dir = 0; dir + 1 < s.dir_offset.size(); ++dir) {
      const std::size_t lo0 = s.dir_offset[dir];
      const std::size_t len = s.dir_offset[dir + 1] - lo0;
      for (int v = 0; v < 3; ++v) {
        const Real* var = vars[v];
        Real* buf = buffer + static_cast<std::size_t>(v) * stride;
        exec.parallel_for(len, [=](std::size_t lo, std::size_t hi, int) {
          for (std::size_t q = lo; q < hi; ++q) {
            buf[lo0 + q] = var[list[lo0 + q]];
          }
        });
      }
    }
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().buffer));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

class HaloUnpacking final
    : public detail::DualPrecisionKernel<HaloUnpacking> {
 public:
  HaloUnpacking()
      : DualPrecisionKernel(
            SignatureBuilder("HALO_UNPACKING", Group::Apps)
                .iters(3.0 * 61208)
                .reps(50)
                .regions(78)
                .seq(0.02)
                .mix(OpMix{.iops = 2, .loads = 2, .stores = 1})
                .streamed(1.2, 1)
                .working_set(7.0 * 61208)
                .pattern(AccessPattern::Gather)
                .build()) {}

  template <class Real>
  using State = HaloState<Real>;

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    init_halo(s, rp);
    // Pre-fill the exchange buffers with data to scatter.
    s.buffer = detail::wavy<Real>(s.buffer.size(), 0.7, 0.0041, 0.2);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::int64_t* list = s.index_list.data();
    const std::size_t stride = s.index_list.size();
    Real* vars[3] = {s.var1.data(), s.var2.data(), s.var3.data()};
    const Real* buffer = s.buffer.data();
    for (std::size_t dir = 0; dir + 1 < s.dir_offset.size(); ++dir) {
      const std::size_t lo0 = s.dir_offset[dir];
      const std::size_t len = s.dir_offset[dir + 1] - lo0;
      for (int v = 0; v < 3; ++v) {
        Real* var = vars[v];
        const Real* buf = buffer + static_cast<std::size_t>(v) * stride;
        exec.parallel_for(len, [=](std::size_t lo, std::size_t hi, int) {
          for (std::size_t q = lo; q < hi; ++q) {
            var[list[lo0 + q]] = buf[lo0 + q];
          }
        });
      }
    }
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.var1)) +
           core::checksum(std::span<const Real>(s.var2)) +
           core::checksum(std::span<const Real>(s.var3));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_mass3dpa() {
  return std::make_unique<Mass3dpa>();
}
std::unique_ptr<core::KernelBase> make_diffusion3dpa() {
  return std::make_unique<Diffusion3dpa>();
}
std::unique_ptr<core::KernelBase> make_convection3dpa() {
  return std::make_unique<Convection3dpa>();
}
std::unique_ptr<core::KernelBase> make_del_dot_vec_2d() {
  return std::make_unique<DelDotVec2d>();
}
std::unique_ptr<core::KernelBase> make_energy() {
  return std::make_unique<Energy>();
}
std::unique_ptr<core::KernelBase> make_fir() {
  return std::make_unique<Fir>();
}
std::unique_ptr<core::KernelBase> make_halo_packing() {
  return std::make_unique<HaloPacking>();
}
std::unique_ptr<core::KernelBase> make_halo_unpacking() {
  return std::make_unique<HaloUnpacking>();
}

}  // namespace sgp::kernels::apps
