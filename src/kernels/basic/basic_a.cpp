// Basic kernels, part 1: DAXPY variants, IF_QUAD, INDEXLIST variants and
// the initialisation kernels.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/basic/basic.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::basic {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

constexpr std::size_t kN = 1'000'000;

// -------------------------------------------------------------- DAXPY --
class Daxpy final : public detail::DualPrecisionKernel<Daxpy> {
 public:
  Daxpy()
      : DualPrecisionKernel(
            SignatureBuilder("DAXPY", Group::Basic)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 1})
                .streamed(2, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
    Real a = Real(0);
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 1.0, 0.0017);
    s.y = detail::ramp<Real>(n, 0.0, 1e-4);
    s.a = Real(2.5);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    const Real a = s.a;
    exec.parallel_for(s.y.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) y[i] += a * x[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------- DAXPY_ATOMIC --
// Same update expressed through atomics (distinct locations, so the
// cost is per-op overhead rather than global serialisation).
class DaxpyAtomic final : public detail::DualPrecisionKernel<DaxpyAtomic> {
 public:
  DaxpyAtomic()
      : DualPrecisionKernel(
            SignatureBuilder("DAXPY_ATOMIC", Group::Basic)
                .iters(kN)
                .reps(100)
                .mix(OpMix{.ffma = 1, .iops = 4, .loads = 2, .stores = 1})
                .streamed(2, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
    Real a = Real(0);
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 0.5, 0.0023);
    s.y = detail::ramp<Real>(n, 0.5, 2e-4);
    s.a = Real(1.5);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    const Real a = s.a;
    exec.parallel_for(s.y.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        std::atomic_ref<Real> ref(y[i]);
        ref.fetch_add(a * x[i], std::memory_order_relaxed);
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------ IF_QUAD --
class IfQuad final : public detail::DualPrecisionKernel<IfQuad> {
 public:
  IfQuad()
      : DualPrecisionKernel(
            SignatureBuilder("IF_QUAD", Group::Basic)
                .iters(kN / 2)
                .reps(100)
                .mix(OpMix{.fadd = 2, .fmul = 3, .fdiv = 2, .fspecial = 1,
                           .loads = 3, .stores = 2, .branches = 1})
                .streamed(3, 2)
                .working_set(2.5 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c, x1, x2;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN / 2);
    s.a = detail::uniform<Real>(n, rp.seed + 11, 0.1, 2.0);
    s.b = detail::uniform<Real>(n, rp.seed + 12, -5.0, 5.0);
    s.c = detail::uniform<Real>(n, rp.seed + 13, -2.0, 2.0);
    s.x1.assign(n, Real(0));
    s.x2.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    const Real* c = s.c.data();
    Real* x1 = s.x1.data();
    Real* x2 = s.x2.data();
    exec.parallel_for(s.a.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        const Real d = b[i] * b[i] - Real(4) * a[i] * c[i];
        if (d >= Real(0)) {
          const Real sq = std::sqrt(d);
          const Real inv2a = Real(1) / (Real(2) * a[i]);
          x1[i] = (-b[i] + sq) * inv2a;
          x2[i] = (-b[i] - sq) * inv2a;
        } else {
          x1[i] = Real(0);
          x2[i] = Real(0);
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.x1)) +
           core::checksum(std::span<const Real>(s.x2));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- INDEXLIST --
// Builds the list of indices with negative values; two-pass parallel
// compaction (count, then fill with per-chunk offsets).
class IndexList final : public detail::DualPrecisionKernel<IndexList> {
 public:
  IndexList()
      : DualPrecisionKernel(
            SignatureBuilder("INDEXLIST", Group::Basic)
                .iters(kN)
                .reps(60)
                .regions(2)
                .seq(0.03)
                .mix(OpMix{.fcmp = 1, .iops = 2, .loads = 1, .stores = 0.5,
                           .branches = 1})
                .streamed(1, 0.5)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Gather)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
    std::vector<std::int64_t> list;
    std::size_t len = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 1.0, 0.0031, -0.05);
    s.list.assign(n, -1);
    s.len = 0;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    std::int64_t* list = s.list.data();
    const int chunks = exec.max_chunks();
    std::vector<std::size_t> counts(static_cast<std::size_t>(chunks), 0);
    std::size_t* cnt = counts.data();
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        std::size_t c = 0;
                        for (std::size_t i = lo; i < hi; ++i) {
                          if (x[i] < Real(0)) ++c;
                        }
                        cnt[chunk] = c;
                      });
    std::vector<std::size_t> offsets(static_cast<std::size_t>(chunks), 0);
    for (int c = 1; c < chunks; ++c) {
      offsets[static_cast<std::size_t>(c)] =
          offsets[static_cast<std::size_t>(c - 1)] +
          counts[static_cast<std::size_t>(c - 1)];
    }
    const std::size_t* off = offsets.data();
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        std::size_t pos = off[chunk];
                        for (std::size_t i = lo; i < hi; ++i) {
                          if (x[i] < Real(0)) {
                            list[pos++] = static_cast<std::int64_t>(i);
                          }
                        }
                      });
    s.len = offsets.back() + counts.back();
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    long double sum = static_cast<long double>(s.len);
    const long double n = static_cast<long double>(s.list.size());
    for (std::size_t i = 0; i < s.len; ++i) {
      sum += static_cast<long double>(s.list[i]) / n;
    }
    return sum;
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------- INDEXLIST_3LOOP --
// The same compaction expressed as three distinct parallel loops (flags,
// scan, fill), as RAJAPerf does.
class IndexList3Loop final
    : public detail::DualPrecisionKernel<IndexList3Loop> {
 public:
  IndexList3Loop()
      : DualPrecisionKernel(
            SignatureBuilder("INDEXLIST_3LOOP", Group::Basic)
                .iters(kN)
                .reps(60)
                .regions(3)
                .seq(0.03)
                .mix(OpMix{.fcmp = 1, .iops = 3, .loads = 2, .stores = 1,
                           .branches = 1})
                .streamed(2, 1)
                .working_set(3.0 * kN)
                .pattern(AccessPattern::Gather)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
    std::vector<std::int64_t> flags, list;
    std::size_t len = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 1.0, 0.0019, 0.02);
    s.flags.assign(n + 1, 0);
    s.list.assign(n, -1);
    s.len = 0;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    std::int64_t* flags = s.flags.data();
    std::int64_t* list = s.list.data();
    const std::size_t n = s.x.size();
    // Loop 1: flags.
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        flags[i] = x[i] < Real(0) ? 1 : 0;
      }
    });
    // Loop 2: exclusive scan of flags (chunked two-phase).
    const int chunks = exec.max_chunks();
    std::vector<std::int64_t> sums(static_cast<std::size_t>(chunks), 0);
    std::int64_t* cs = sums.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int chunk) {
      std::int64_t acc = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::int64_t f = flags[i];
        flags[i] = acc;
        acc += f;
      }
      cs[chunk] = acc;
    });
    std::vector<std::int64_t> offs(static_cast<std::size_t>(chunks), 0);
    for (int c = 1; c < chunks; ++c) {
      offs[static_cast<std::size_t>(c)] =
          offs[static_cast<std::size_t>(c - 1)] +
          sums[static_cast<std::size_t>(c - 1)];
    }
    const std::int64_t* po = offs.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int chunk) {
      for (std::size_t i = lo; i < hi; ++i) flags[i] += po[chunk];
    });
    const std::int64_t total = offs.back() + sums.back();
    flags[n] = total;
    // Loop 3: fill.
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (x[i] < Real(0)) {
          list[flags[i]] = static_cast<std::int64_t>(i);
        }
      }
    });
    s.len = static_cast<std::size_t>(total);
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    long double sum = static_cast<long double>(s.len);
    const long double n = static_cast<long double>(s.list.size());
    for (std::size_t i = 0; i < s.len; ++i) {
      sum += static_cast<long double>(s.list[i]) / n;
    }
    return sum;
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// -------------------------------------------------------------- INIT3 --
class Init3 final : public detail::DualPrecisionKernel<Init3> {
 public:
  Init3()
      : DualPrecisionKernel(
            SignatureBuilder("INIT3", Group::Basic)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fadd = 1, .loads = 2, .stores = 3})
                .streamed(2, 3)
                .working_set(5.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> in1, in2, out1, out2, out3;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.in1 = detail::ramp<Real>(n, 0.3, 1e-4);
    s.in2 = detail::wavy<Real>(n, 0.7, 0.0041);
    s.out1.assign(n, Real(0));
    s.out2.assign(n, Real(0));
    s.out3.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* in1 = s.in1.data();
    const Real* in2 = s.in2.data();
    Real* o1 = s.out1.data();
    Real* o2 = s.out2.data();
    Real* o3 = s.out3.data();
    exec.parallel_for(s.in1.size(),
                      [=](std::size_t lo, std::size_t hi, int) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          const Real v = -in1[i] - in2[i];
                          o1[i] = v;
                          o2[i] = v;
                          o3[i] = v;
                        }
                      });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.out1)) +
           core::checksum(std::span<const Real>(s.out2)) +
           core::checksum(std::span<const Real>(s.out3));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// -------------------------------------------------------- INIT_VIEW1D --
class InitView1d final : public detail::DualPrecisionKernel<InitView1d> {
 public:
  InitView1d()
      : DualPrecisionKernel(
            SignatureBuilder("INIT_VIEW1D", Group::Basic)
                .iters(kN)
                .reps(200)
                .mix(OpMix{.fmul = 1, .iops = 1, .stores = 1})
                .streamed(0, 1)
                .working_set(kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    st_.get<Real>().x.assign(rp.scaled(kN), Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* x = s.x.data();
    const Real v = Real(0.00000123);
    exec.parallel_for(s.x.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        x[i] = static_cast<Real>(i + 1) * v;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------- INIT_VIEW1D_OFFSET --
class InitView1dOffset final
    : public detail::DualPrecisionKernel<InitView1dOffset> {
 public:
  InitView1dOffset()
      : DualPrecisionKernel(
            SignatureBuilder("INIT_VIEW1D_OFFSET", Group::Basic)
                .iters(kN)
                .reps(200)
                .mix(OpMix{.fmul = 1, .iops = 2, .stores = 1})
                .streamed(0, 1)
                .working_set(kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    st_.get<Real>().x.assign(rp.scaled(kN), Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* x = s.x.data();
    const Real v = Real(0.00000456);
    // Offset view: logical indices run 1..n, storage 0..n-1.
    exec.parallel_for(s.x.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        x[i] = static_cast<Real>(i + 1) * v;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_daxpy() {
  return std::make_unique<Daxpy>();
}
std::unique_ptr<core::KernelBase> make_daxpy_atomic() {
  return std::make_unique<DaxpyAtomic>();
}
std::unique_ptr<core::KernelBase> make_if_quad() {
  return std::make_unique<IfQuad>();
}
std::unique_ptr<core::KernelBase> make_indexlist() {
  return std::make_unique<IndexList>();
}
std::unique_ptr<core::KernelBase> make_indexlist_3loop() {
  return std::make_unique<IndexList3Loop>();
}
std::unique_ptr<core::KernelBase> make_init3() {
  return std::make_unique<Init3>();
}
std::unique_ptr<core::KernelBase> make_init_view1d() {
  return std::make_unique<InitView1d>();
}
std::unique_ptr<core::KernelBase> make_init_view1d_offset() {
  return std::make_unique<InitView1dOffset>();
}

}  // namespace sgp::kernels::basic
