// Basic-class kernels: foundational operations (DAXPY, reductions,
// initialisations, small matrix multiply, pi calculations, ...).
#pragma once

#include <memory>

#include "core/kernel_base.hpp"

namespace sgp::kernels::basic {

std::unique_ptr<core::KernelBase> make_daxpy();
std::unique_ptr<core::KernelBase> make_daxpy_atomic();
std::unique_ptr<core::KernelBase> make_if_quad();
std::unique_ptr<core::KernelBase> make_indexlist();
std::unique_ptr<core::KernelBase> make_indexlist_3loop();
std::unique_ptr<core::KernelBase> make_init3();
std::unique_ptr<core::KernelBase> make_init_view1d();
std::unique_ptr<core::KernelBase> make_init_view1d_offset();
std::unique_ptr<core::KernelBase> make_mat_mat_shared();
std::unique_ptr<core::KernelBase> make_muladdsub();
std::unique_ptr<core::KernelBase> make_nested_init();
std::unique_ptr<core::KernelBase> make_pi_atomic();
std::unique_ptr<core::KernelBase> make_pi_reduce();
std::unique_ptr<core::KernelBase> make_reduce3_int();
std::unique_ptr<core::KernelBase> make_reduce_struct();
std::unique_ptr<core::KernelBase> make_trap_int();

}  // namespace sgp::kernels::basic
