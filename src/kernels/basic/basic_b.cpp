// Basic kernels, part 2: shared-tile matrix multiply, MULADDSUB,
// NESTED_INIT, the pi kernels and the reductions.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/basic/basic.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::basic {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

constexpr std::size_t kN = 1'000'000;

// ----------------------------------------------------- MAT_MAT_SHARED --
// Tiled matrix multiply (RAJAPerf's shared-memory GEMM analogue).
class MatMatShared final : public detail::DualPrecisionKernel<MatMatShared> {
 public:
  static constexpr std::size_t kDim = 128;
  static constexpr std::size_t kTile = 16;

  MatMatShared()
      : DualPrecisionKernel(
            SignatureBuilder("MAT_MAT_SHARED", Group::Basic)
                .iters(static_cast<double>(kDim) * kDim * kDim)
                .reps(20)
                .mix(OpMix{.ffma = 1, .iops = 1, .loads = 2, .stores = 0.01})
                .streamed(0.02, 0.01)  // tiles stay cache resident
                .working_set(3.0 * kDim * kDim)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, kTile);
    const std::size_t nn = s.n * s.n;
    s.a = detail::wavy<Real>(nn, 1.0, 0.01);
    s.b = detail::ramp<Real>(nn, -0.5, 2.0 / static_cast<double>(nn));
    s.c.assign(nn, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    Real* c = s.c.data();
    const std::size_t row_tiles = (n + kTile - 1) / kTile;
    exec.parallel_for(row_tiles, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t bt = lo; bt < hi; ++bt) {
        const std::size_t i0 = bt * kTile;
        const std::size_t i1 = std::min(i0 + kTile, n);
        for (std::size_t k0 = 0; k0 < n; k0 += kTile) {
          const std::size_t k1 = std::min(k0 + kTile, n);
          for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
            const std::size_t j1 = std::min(j0 + kTile, n);
            for (std::size_t i = i0; i < i1; ++i) {
              for (std::size_t k = k0; k < k1; ++k) {
                const Real aik = a[i * n + k];
                for (std::size_t j = j0; j < j1; ++j) {
                  c[i * n + j] += aik * b[k * n + j];
                }
              }
            }
          }
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().c));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- MULADDSUB --
class MulAddSub final : public detail::DualPrecisionKernel<MulAddSub> {
 public:
  MulAddSub()
      : DualPrecisionKernel(
            SignatureBuilder("MULADDSUB", Group::Basic)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fadd = 2, .fmul = 1, .loads = 2, .stores = 3})
                .streamed(2, 3)
                .working_set(5.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> in1, in2, out1, out2, out3;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.in1 = detail::wavy<Real>(n, 1.2, 0.0012, 0.3);
    s.in2 = detail::ramp<Real>(n, 0.1, 5e-5);
    s.out1.assign(n, Real(0));
    s.out2.assign(n, Real(0));
    s.out3.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* in1 = s.in1.data();
    const Real* in2 = s.in2.data();
    Real* o1 = s.out1.data();
    Real* o2 = s.out2.data();
    Real* o3 = s.out3.data();
    exec.parallel_for(s.in1.size(),
                      [=](std::size_t lo, std::size_t hi, int) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          o1[i] = in1[i] * in2[i];
                          o2[i] = in1[i] + in2[i];
                          o3[i] = in1[i] - in2[i];
                        }
                      });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.out1)) +
           core::checksum(std::span<const Real>(s.out2)) +
           core::checksum(std::span<const Real>(s.out3));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// -------------------------------------------------------- NESTED_INIT --
class NestedInit final : public detail::DualPrecisionKernel<NestedInit> {
 public:
  static constexpr std::size_t kDim = 100;

  NestedInit()
      : DualPrecisionKernel(
            SignatureBuilder("NESTED_INIT", Group::Basic)
                .iters(static_cast<double>(kDim) * kDim * kDim)
                .reps(100)
                .mix(OpMix{.iops = 4, .stores = 1})
                .streamed(0, 1)
                .working_set(static_cast<double>(kDim) * kDim * kDim)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> array;
    std::size_t ni = 0, nj = 0, nk = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.ni = s.nj = s.nk = rp.scaled(kDim, 4);
    s.array.assign(s.ni * s.nj * s.nk, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* array = s.array.data();
    const std::size_t ni = s.ni, nj = s.nj;
    exec.parallel_for(s.nk, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t k = lo; k < hi; ++k) {
        for (std::size_t j = 0; j < nj; ++j) {
          for (std::size_t i = 0; i < ni; ++i) {
            array[i + ni * (j + nj * k)] =
                Real(1e-8) * static_cast<Real>(i * j * k);
          }
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().array));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- PI_ATOMIC --
// Atomic accumulation into a single shared location: the pathological
// contended-atomic kernel.
class PiAtomic final : public detail::DualPrecisionKernel<PiAtomic> {
 public:
  static constexpr std::size_t kIters = 200'000;

  PiAtomic()
      : DualPrecisionKernel(
            SignatureBuilder("PI_ATOMIC", Group::Basic)
                .iters(kIters)
                .reps(50)
                .mix(OpMix{.fadd = 1, .fmul = 2, .fdiv = 1, .iops = 2})
                .streamed(0, 0.001)
                .working_set(64)  // a single cache line
                .pattern(AccessPattern::Reduction)
                .atomic()
                .build()) {}

  template <class Real>
  struct State {
    Real pi = Real(0);
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kIters);
    s.pi = Real(0);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    s.pi = Real(0);
    Real* pi = &s.pi;
    const Real dx = Real(1.0) / static_cast<Real>(s.n);
    exec.parallel_for(s.n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        const Real x = (static_cast<Real>(i) + Real(0.5)) * dx;
        const Real term = dx / (Real(1) + x * x);
        std::atomic_ref<Real> ref(*pi);
        ref.fetch_add(term, std::memory_order_relaxed);
      }
    });
    s.pi *= Real(4);
  }

  template <class Real>
  long double cksum() const {
    return static_cast<long double>(st_.get<Real>().pi);
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- PI_REDUCE --
class PiReduce final : public detail::DualPrecisionKernel<PiReduce> {
 public:
  static constexpr std::size_t kIters = 200'000;

  PiReduce()
      : DualPrecisionKernel(
            SignatureBuilder("PI_REDUCE", Group::Basic)
                .iters(kIters)
                .reps(100)
                .mix(OpMix{.fadd = 1, .fmul = 2, .fdiv = 1, .iops = 1})
                .streamed(0, 0)
                .working_set(64)
                .pattern(AccessPattern::Reduction)
                .build()) {}

  template <class Real>
  struct State {
    Real pi = Real(0);
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kIters);
    s.pi = Real(0);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real dx = Real(1.0) / static_cast<Real>(s.n);
    std::vector<double> partial(
        static_cast<std::size_t>(exec.max_chunks()), 0.0);
    double* part = partial.data();
    exec.parallel_for(s.n, [=](std::size_t lo, std::size_t hi, int chunk) {
      double sum = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const double x = (static_cast<double>(i) + 0.5) * dx;
        sum += dx / (1.0 + x * x);
      }
      part[chunk] = sum;
    });
    double total = 0.0;
    for (double v : partial) total += v;
    s.pi = static_cast<Real>(4.0 * total);
  }

  template <class Real>
  long double cksum() const {
    return static_cast<long double>(st_.get<Real>().pi);
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------- REDUCE3_INT --
// Sum/min/max over an integer array (the kernel that lifts the basic
// class's FP64 vectorisation average, since INT64 lanes are supported).
class Reduce3Int final : public detail::DualPrecisionKernel<Reduce3Int> {
 public:
  Reduce3Int()
      : DualPrecisionKernel(
            SignatureBuilder("REDUCE3_INT", Group::Basic)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.iops = 3, .loads = 1})
                .streamed(1, 0)
                .working_set(kN)
                .pattern(AccessPattern::Reduction)
                .integer()
                .build()) {}

  // Real is ignored for data (the kernel is integral), but kept so the
  // suite can run it at "both precisions" exactly as RAJAPerf does.
  template <class Real>
  struct State {
    std::vector<std::int64_t> x;
    std::int64_t sum = 0, vmin = 0, vmax = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.x[i] = static_cast<std::int64_t>((i * 2654435761u) % 20011) - 10005;
    }
    s.sum = s.vmin = s.vmax = 0;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::int64_t* x = s.x.data();
    const int chunks = exec.max_chunks();
    std::vector<std::int64_t> psum(static_cast<std::size_t>(chunks), 0);
    std::vector<std::int64_t> pmin(
        static_cast<std::size_t>(chunks),
        std::numeric_limits<std::int64_t>::max());
    std::vector<std::int64_t> pmax(
        static_cast<std::size_t>(chunks),
        std::numeric_limits<std::int64_t>::min());
    auto* ps = psum.data();
    auto* pn = pmin.data();
    auto* px = pmax.data();
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        std::int64_t sum = 0;
                        std::int64_t mn =
                            std::numeric_limits<std::int64_t>::max();
                        std::int64_t mx =
                            std::numeric_limits<std::int64_t>::min();
                        for (std::size_t i = lo; i < hi; ++i) {
                          sum += x[i];
                          mn = std::min(mn, x[i]);
                          mx = std::max(mx, x[i]);
                        }
                        ps[chunk] = sum;
                        pn[chunk] = mn;
                        px[chunk] = mx;
                      });
    s.sum = 0;
    s.vmin = std::numeric_limits<std::int64_t>::max();
    s.vmax = std::numeric_limits<std::int64_t>::min();
    for (int c = 0; c < chunks; ++c) {
      s.sum += psum[static_cast<std::size_t>(c)];
      s.vmin = std::min(s.vmin, pmin[static_cast<std::size_t>(c)]);
      s.vmax = std::max(s.vmax, pmax[static_cast<std::size_t>(c)]);
    }
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return static_cast<long double>(s.sum) +
           static_cast<long double>(s.vmin) * 0.5L +
           static_cast<long double>(s.vmax) * 0.25L;
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------ REDUCE_STRUCT --
// Centroid + bounds of a particle set: six simultaneous reductions over
// two arrays.
class ReduceStruct final : public detail::DualPrecisionKernel<ReduceStruct> {
 public:
  ReduceStruct()
      : DualPrecisionKernel(
            SignatureBuilder("REDUCE_STRUCT", Group::Basic)
                .iters(kN)
                .reps(100)
                .mix(OpMix{.fadd = 2, .fcmp = 4, .loads = 2})
                .streamed(2, 0)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Reduction)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
    Real xsum = 0, xmin = 0, xmax = 0, ysum = 0, ymin = 0, ymax = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 3.0, 0.0007, 1.0);
    s.y = detail::wavy<Real>(n, 2.0, 0.0011, -0.5);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    const Real* y = s.y.data();
    const int chunks = exec.max_chunks();
    struct Partial {
      double xs = 0, ys = 0;
      double xn = std::numeric_limits<double>::max();
      double xx = std::numeric_limits<double>::lowest();
      double yn = std::numeric_limits<double>::max();
      double yx = std::numeric_limits<double>::lowest();
    };
    std::vector<Partial> partial(static_cast<std::size_t>(chunks));
    Partial* part = partial.data();
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        Partial p;
                        for (std::size_t i = lo; i < hi; ++i) {
                          p.xs += x[i];
                          p.ys += y[i];
                          p.xn = std::min(p.xn, static_cast<double>(x[i]));
                          p.xx = std::max(p.xx, static_cast<double>(x[i]));
                          p.yn = std::min(p.yn, static_cast<double>(y[i]));
                          p.yx = std::max(p.yx, static_cast<double>(y[i]));
                        }
                        part[chunk] = p;
                      });
    Partial tot;
    for (const auto& p : partial) {
      tot.xs += p.xs;
      tot.ys += p.ys;
      tot.xn = std::min(tot.xn, p.xn);
      tot.xx = std::max(tot.xx, p.xx);
      tot.yn = std::min(tot.yn, p.yn);
      tot.yx = std::max(tot.yx, p.yx);
    }
    const double n = static_cast<double>(s.x.size());
    s.xsum = static_cast<Real>(tot.xs / n);
    s.ysum = static_cast<Real>(tot.ys / n);
    s.xmin = static_cast<Real>(tot.xn);
    s.xmax = static_cast<Real>(tot.xx);
    s.ymin = static_cast<Real>(tot.yn);
    s.ymax = static_cast<Real>(tot.yx);
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return static_cast<long double>(s.xsum) + s.xmin + s.xmax +
           static_cast<long double>(s.ysum) + s.ymin + s.ymax;
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------------- TRAP_INT --
class TrapInt final : public detail::DualPrecisionKernel<TrapInt> {
 public:
  static constexpr std::size_t kIters = 500'000;

  TrapInt()
      : DualPrecisionKernel(
            SignatureBuilder("TRAP_INT", Group::Basic)
                .iters(kIters)
                .reps(80)
                .mix(OpMix{.fadd = 3, .fmul = 3, .fdiv = 1, .iops = 1})
                .streamed(0, 0)
                .working_set(64)
                .pattern(AccessPattern::Reduction)
                .build()) {}

  template <class Real>
  struct State {
    Real sumx = Real(0);
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kIters);
    s.sumx = Real(0);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const double x0 = 0.1, xp = 0.7, y = 0.3, yp = 0.4;
    const double h = (xp - x0) / static_cast<double>(s.n);
    std::vector<double> partial(
        static_cast<std::size_t>(exec.max_chunks()), 0.0);
    double* part = partial.data();
    exec.parallel_for(s.n, [=](std::size_t lo, std::size_t hi, int chunk) {
      double sum = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const double x = x0 + (static_cast<double>(i) + 0.5) * h;
        const double denom = (x - y) * (x - y) + (x - yp) * (x - yp);
        sum += x / denom;  // RAJAPerf's trap_int_func shape
      }
      part[chunk] = sum;
    });
    double total = 0.0;
    for (double v : partial) total += v;
    s.sumx = static_cast<Real>(total * h);
  }

  template <class Real>
  long double cksum() const {
    return static_cast<long double>(st_.get<Real>().sumx);
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_mat_mat_shared() {
  return std::make_unique<MatMatShared>();
}
std::unique_ptr<core::KernelBase> make_muladdsub() {
  return std::make_unique<MulAddSub>();
}
std::unique_ptr<core::KernelBase> make_nested_init() {
  return std::make_unique<NestedInit>();
}
std::unique_ptr<core::KernelBase> make_pi_atomic() {
  return std::make_unique<PiAtomic>();
}
std::unique_ptr<core::KernelBase> make_pi_reduce() {
  return std::make_unique<PiReduce>();
}
std::unique_ptr<core::KernelBase> make_reduce3_int() {
  return std::make_unique<Reduce3Int>();
}
std::unique_ptr<core::KernelBase> make_reduce_struct() {
  return std::make_unique<ReduceStruct>();
}
std::unique_ptr<core::KernelBase> make_trap_int() {
  return std::make_unique<TrapInt>();
}

}  // namespace sgp::kernels::basic
