// Algorithm-class kernels: memory set/copy, reduction, scan and sorts.
#pragma once

#include <memory>

#include "core/kernel_base.hpp"

namespace sgp::kernels::algorithm {

std::unique_ptr<core::KernelBase> make_memset();
std::unique_ptr<core::KernelBase> make_memcpy();
std::unique_ptr<core::KernelBase> make_reduce_sum();
std::unique_ptr<core::KernelBase> make_scan();
std::unique_ptr<core::KernelBase> make_sort();
std::unique_ptr<core::KernelBase> make_sortpairs();

}  // namespace sgp::kernels::algorithm
