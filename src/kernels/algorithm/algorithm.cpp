#include "kernels/algorithm/algorithm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"

namespace sgp::kernels::algorithm {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

constexpr std::size_t kN = 4'000'000;

// ------------------------------------------------------------- MEMSET --
class Memset final : public detail::DualPrecisionKernel<Memset> {
 public:
  Memset()
      : DualPrecisionKernel(
            SignatureBuilder("MEMSET", Group::Algorithm)
                .iters(kN)
                .reps(200)
                .mix(OpMix{.stores = 1})
                .streamed(0, 1)
                .working_set(kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
    Real value = Real(0);
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.x.assign(rp.scaled(kN), Real(-1));
    s.value = Real(3.14159);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* x = s.x.data();
    const Real v = s.value;
    exec.parallel_for(s.x.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) x[i] = v;
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------- MEMCPY --
class Memcpy final : public detail::DualPrecisionKernel<Memcpy> {
 public:
  Memcpy()
      : DualPrecisionKernel(
            SignatureBuilder("MEMCPY", Group::Algorithm)
                .iters(kN)
                .reps(200)
                .mix(OpMix{.loads = 1, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Streaming)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::ramp<Real>(n, -1.0, 3e-4);
    s.y.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    exec.parallel_for(s.y.size(), [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) y[i] = x[i];
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------- REDUCE_SUM --
class ReduceSum final : public detail::DualPrecisionKernel<ReduceSum> {
 public:
  ReduceSum()
      : DualPrecisionKernel(
            SignatureBuilder("REDUCE_SUM", Group::Algorithm)
                .iters(kN)
                .reps(150)
                .mix(OpMix{.fadd = 1, .loads = 1})
                .streamed(1, 0)
                .working_set(kN)
                .pattern(AccessPattern::Reduction)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x;
    Real sum = Real(0);
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.x = detail::wavy<Real>(rp.scaled(kN), 1.0, 0.0021, 0.1);
    s.sum = Real(0);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    std::vector<double> partial(
        static_cast<std::size_t>(exec.max_chunks()), 0.0);
    double* part = partial.data();
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        double sum = 0.0;
                        for (std::size_t i = lo; i < hi; ++i) sum += x[i];
                        part[chunk] = sum;
                      });
    s.sum = static_cast<Real>(
        std::accumulate(partial.begin(), partial.end(), 0.0));
  }

  template <class Real>
  long double cksum() const {
    return static_cast<long double>(st_.get<Real>().sum);
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------------- SCAN --
// Exclusive prefix sum, two-pass parallel implementation (chunk sums,
// then offset propagation), which is what the sequential-dependence
// signature encodes.
class Scan final : public detail::DualPrecisionKernel<Scan> {
 public:
  Scan()
      : DualPrecisionKernel(
            SignatureBuilder("SCAN", Group::Algorithm)
                .iters(kN)
                .reps(100)
                .regions(2)
                .seq(0.02)
                .mix(OpMix{.fadd = 2, .loads = 2, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Sequential)
                .recurrence()
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> x, y;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.x = detail::wavy<Real>(n, 0.5, 0.0013, 0.75);
    s.y.assign(n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    const int chunks = exec.max_chunks();
    std::vector<double> chunk_sum(static_cast<std::size_t>(chunks), 0.0);
    double* csum = chunk_sum.data();
    // Pass 1: local exclusive scans + chunk totals.
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        double acc = 0.0;
                        for (std::size_t i = lo; i < hi; ++i) {
                          y[i] = static_cast<Real>(acc);
                          acc += x[i];
                        }
                        csum[chunk] = acc;
                      });
    // Serial offset propagation.
    std::vector<double> offset(static_cast<std::size_t>(chunks), 0.0);
    for (int c = 1; c < chunks; ++c) {
      offset[static_cast<std::size_t>(c)] =
          offset[static_cast<std::size_t>(c - 1)] +
          chunk_sum[static_cast<std::size_t>(c - 1)];
    }
    const double* off = offset.data();
    // Pass 2: apply offsets.
    exec.parallel_for(s.x.size(),
                      [=](std::size_t lo, std::size_t hi, int chunk) {
                        const Real o = static_cast<Real>(off[chunk]);
                        for (std::size_t i = lo; i < hi; ++i) y[i] += o;
                      });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------------- SORT --
// Each rep restores the pristine shuffled data then sorts: parallel
// chunk sort followed by a serial merge cascade.
class Sort final : public detail::DualPrecisionKernel<Sort> {
 public:
  Sort()
      : DualPrecisionKernel(
            SignatureBuilder("SORT", Group::Algorithm)
                .iters(kN * 20.0)  // ~ n log2 n comparisons
                .reps(10)
                .regions(2)
                .seq(0.25)
                .mix(OpMix{.fcmp = 1, .iops = 2, .loads = 1, .stores = 0.5,
                           .branches = 1})
                .streamed(0.05, 0.05)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Sort)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> pristine, x;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.pristine = detail::uniform<Real>(n, rp.seed, -1.0, 1.0);
    s.x = s.pristine;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    s.x = s.pristine;
    Real* x = s.x.data();
    const int chunks = exec.max_chunks();
    const std::size_t n = s.x.size();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      std::sort(x + lo, x + hi);
    });
    // Merge cascade (serial): merge chunk 0 with 1, result with 2, ...
    using threading_pair = std::pair<std::size_t, std::size_t>;
    std::vector<threading_pair> ranges;
    for (int c = 0; c < chunks; ++c) {
      const std::size_t k = static_cast<std::size_t>(chunks);
      const std::size_t i = static_cast<std::size_t>(c);
      const std::size_t base = n / k, rem = n % k;
      const std::size_t begin = i * base + std::min(i, rem);
      const std::size_t len = base + (i < rem ? 1 : 0);
      if (len > 0) ranges.emplace_back(begin, begin + len);
    }
    for (std::size_t r = 1; r < ranges.size(); ++r) {
      std::inplace_merge(x + ranges.front().first, x + ranges[r].first,
                         x + ranges[r].second);
    }
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().x));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- SORTPAIRS --
// Key/value sort: keys carry an index payload that must move with them.
class SortPairs final : public detail::DualPrecisionKernel<SortPairs> {
 public:
  SortPairs()
      : DualPrecisionKernel(
            SignatureBuilder("SORTPAIRS", Group::Algorithm)
                .iters(kN * 20.0)
                .reps(8)
                .regions(2)
                .seq(0.25)
                .mix(OpMix{.fcmp = 1, .iops = 3, .loads = 2, .stores = 1,
                           .branches = 1})
                .streamed(0.1, 0.1)
                .working_set(4.0 * kN)
                .pattern(AccessPattern::Sort)
                .build()) {}

  template <class Real>
  struct Pair {
    Real key;
    std::int64_t value;
    bool operator<(const Pair& o) const { return key < o.key; }
  };

  template <class Real>
  struct State {
    std::vector<Pair<Real>> pristine, x;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    const auto keys = detail::uniform<Real>(n, rp.seed + 1, -2.0, 2.0);
    s.pristine.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.pristine[i] = {keys[i], static_cast<std::int64_t>(i)};
    }
    s.x = s.pristine;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    s.x = s.pristine;
    auto* x = s.x.data();
    const std::size_t n = s.x.size();
    const int chunks = exec.max_chunks();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      std::sort(x + lo, x + hi);
    });
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    for (int c = 0; c < chunks; ++c) {
      const std::size_t k = static_cast<std::size_t>(chunks);
      const std::size_t i = static_cast<std::size_t>(c);
      const std::size_t base = n / k, rem = n % k;
      const std::size_t begin = i * base + std::min(i, rem);
      const std::size_t len = base + (i < rem ? 1 : 0);
      if (len > 0) ranges.emplace_back(begin, begin + len);
    }
    for (std::size_t r = 1; r < ranges.size(); ++r) {
      std::inplace_merge(x + ranges.front().first, x + ranges[r].first,
                         x + ranges[r].second);
    }
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    long double sum = 0.0L;
    const long double n = static_cast<long double>(s.x.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      sum += (static_cast<long double>(s.x[i].key) +
              static_cast<long double>(s.x[i].value) / n) *
             (static_cast<long double>(i + 1) / n);
    }
    return sum;
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_memset() {
  return std::make_unique<Memset>();
}
std::unique_ptr<core::KernelBase> make_memcpy() {
  return std::make_unique<Memcpy>();
}
std::unique_ptr<core::KernelBase> make_reduce_sum() {
  return std::make_unique<ReduceSum>();
}
std::unique_ptr<core::KernelBase> make_scan() {
  return std::make_unique<Scan>();
}
std::unique_ptr<core::KernelBase> make_sort() {
  return std::make_unique<Sort>();
}
std::unique_ptr<core::KernelBase> make_sortpairs() {
  return std::make_unique<SortPairs>();
}

}  // namespace sgp::kernels::algorithm
