#include "kernels/vector_facts.hpp"

#include <map>
#include <stdexcept>
#include <string>

namespace sgp::kernels {

namespace {

struct Facts {
  core::VectorizationFacts gcc;
  core::VectorizationFacts clang;
};

core::VectorizationFacts vec(double eff = 0.85, double mem_eff = 1.0) {
  return core::VectorizationFacts{true, true, eff, mem_eff};
}
core::VectorizationFacts vec_scalar_path(double eff = 0.85) {
  return core::VectorizationFacts{true, false, eff, 1.0};
}
core::VectorizationFacts no_vec() {
  return core::VectorizationFacts{false, false, 0.0, 1.0};
}

/// The table. Anchors from the paper:
///  * stream: all five GCC-vectorised and executed vector (the class with
///    by far the largest vectorisation benefit, Figure 2);
///  * GCC cannot vectorise FLOYD_WARSHALL and HEAT_3D (Figure 3);
///  * GCC vectorises JACOBI_1D/JACOBI_2D but the scalar path runs
///    (Figure 3);
///  * Clang leaves 2MM/3MM/GEMM scalar (Figure 3);
///  * Clang is slower than GCC on JACOBI_2D despite vectorising it
///    (Figure 3's surprise) - encoded as a low Clang efficiency.
/// The remaining assignment is by loop-structure plausibility, summing to
/// GCC 30 vectorised / 7 scalar-path and Clang 59 / 3.
const std::map<std::string, Facts, std::less<>>& table() {
  static const std::map<std::string, Facts, std::less<>> t{
      // --- Stream (5) ---
      {"ADD",   {vec(0.95), vec(0.95)}},
      {"COPY",  {vec(0.95), vec(0.95)}},
      {"DOT",   {vec(0.90), vec(0.90)}},
      {"MUL",   {vec(0.95), vec(0.95)}},
      {"TRIAD", {vec(0.95), vec(0.95)}},
      // --- Algorithm (6): GCC 3 vec (REDUCE_SUM scalar at runtime) ---
      {"MEMSET",     {vec(0.95), vec(0.95)}},
      {"MEMCPY",     {vec(0.95), vec(0.95)}},
      {"REDUCE_SUM", {vec_scalar_path(0.90), vec(0.90)}},
      {"SCAN",       {no_vec(), vec(0.60)}},
      {"SORT",       {no_vec(), no_vec()}},
      {"SORTPAIRS",  {no_vec(), no_vec()}},
      // --- Basic (16): GCC 7 vec (INIT_VIEW1D_OFFSET scalar path) ---
      {"DAXPY",              {vec(0.90), vec(0.90)}},
      {"DAXPY_ATOMIC",       {no_vec(), vec(0.50)}},
      {"IF_QUAD",            {no_vec(), vec(0.70)}},
      {"INDEXLIST",          {no_vec(), vec_scalar_path(0.50)}},
      {"INDEXLIST_3LOOP",    {no_vec(), vec(0.55)}},
      {"INIT3",              {vec(0.90), vec(0.90)}},
      {"INIT_VIEW1D",        {vec(0.90), vec(0.90)}},
      {"INIT_VIEW1D_OFFSET", {vec_scalar_path(0.90), vec(0.90)}},
      {"MAT_MAT_SHARED",     {no_vec(), vec(0.80)}},
      {"MULADDSUB",          {vec(0.90), vec(0.90)}},
      {"NESTED_INIT",        {no_vec(), vec(0.85)}},
      {"PI_ATOMIC",          {no_vec(), vec_scalar_path(0.50)}},
      {"PI_REDUCE",          {vec(0.85), vec(0.85)}},
      {"REDUCE3_INT",        {vec(0.85), vec(0.85)}},
      {"REDUCE_STRUCT",      {no_vec(), vec(0.70)}},
      {"TRAP_INT",           {no_vec(), vec(0.75)}},
      // --- Lcals (11): GCC 6 vec (FIRST_SUM scalar path) ---
      {"DIFF_PREDICT",  {vec(0.85), vec(0.85)}},
      {"EOS",           {vec(0.90), vec(0.90)}},
      {"FIRST_DIFF",    {vec(0.90), vec(0.90)}},
      {"FIRST_MIN",     {no_vec(), vec(0.55)}},
      {"FIRST_SUM",     {vec_scalar_path(0.90), vec(0.90)}},
      {"GEN_LIN_RECUR", {no_vec(), vec(0.40)}},
      {"HYDRO_1D",      {vec(0.90), vec(0.90)}},
      {"HYDRO_2D",      {no_vec(), vec(0.75)}},
      {"INT_PREDICT",   {vec(0.85), vec(0.85)}},
      {"PLANCKIAN",     {no_vec(), vec(0.65)}},
      {"TRIDIAG_ELIM",  {no_vec(), vec(0.80)}},
      // --- Polybench (13): GCC 9 vec (JACOBI_1D/2D, GEMVER, GESUMMV
      //     scalar path); Clang scalar on 2MM/3MM/GEMM ---
      {"2MM",            {vec(0.85), no_vec()}},
      {"3MM",            {vec(0.85), no_vec()}},
      {"ADI",            {no_vec(), vec_scalar_path(0.50)}},
      {"ATAX",           {vec(0.80), vec(0.85)}},
      {"FDTD_2D",        {no_vec(), vec(0.80)}},
      {"FLOYD_WARSHALL", {no_vec(), vec(0.70)}},
      {"GEMM",           {vec(0.85), no_vec()}},
      {"GEMVER",         {vec_scalar_path(0.80), vec(0.85)}},
      {"GESUMMV",        {vec_scalar_path(0.80), vec(0.85)}},
      {"HEAT_3D",        {no_vec(), vec(0.80)}},
      {"JACOBI_1D",      {vec_scalar_path(0.90), vec(0.90)}},
      {"JACOBI_2D",      {vec_scalar_path(0.85), vec(0.30, 0.40)}},
      {"MVT",            {vec(0.80), vec(0.85)}},
      // --- Apps (13): GCC none ---
      {"CONVECTION3DPA",       {no_vec(), vec(0.70)}},
      {"DEL_DOT_VEC_2D",       {no_vec(), vec(0.75)}},
      {"DIFFUSION3DPA",        {no_vec(), vec(0.70)}},
      {"ENERGY",               {no_vec(), vec(0.80)}},
      {"FIR",                  {no_vec(), vec(0.85)}},
      {"HALO_PACKING",         {no_vec(), vec(0.60)}},
      {"HALO_UNPACKING",       {no_vec(), vec(0.60)}},
      {"LTIMES",               {no_vec(), vec(0.75)}},
      {"LTIMES_NOVIEW",        {no_vec(), vec(0.75)}},
      {"MASS3DPA",             {no_vec(), vec(0.70)}},
      {"NODAL_ACCUMULATION_3D",{no_vec(), vec(0.45)}},
      {"PRESSURE",             {no_vec(), vec(0.85)}},
      {"VOL3D",                {no_vec(), vec(0.75)}},
  };
  return t;
}

}  // namespace

void apply_vectorization_facts(core::KernelSignature& sig) {
  const auto it = table().find(sig.name);
  if (it == table().end()) {
    throw std::out_of_range("apply_vectorization_facts: no entry for " +
                            sig.name);
  }
  sig.gcc = it->second.gcc;
  sig.clang = it->second.clang;
}

bool has_vectorization_facts(std::string_view name) {
  return table().find(name) != table().end();
}

}  // namespace sgp::kernels
