// Polybench kernels, part 1: matrix chains and matrix-vector chains.
#include <cmath>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"
#include "kernels/polybench/polybench.hpp"

namespace sgp::kernels::polybench {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

// Matrix-matrix sizes.
constexpr std::size_t kMM = 256;
// Matrix-vector sizes.
constexpr std::size_t kMV = 1200;

template <class Real>
void matmul(const Real* a, const Real* b, Real* c, std::size_t n,
            Real alpha, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = 0; j < n; ++j) c[i * n + j] = Real(0);
    for (std::size_t k = 0; k < n; ++k) {
      const Real aik = alpha * a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
}

// ---------------------------------------------------------------- 2MM --
class TwoMM final : public detail::DualPrecisionKernel<TwoMM> {
 public:
  TwoMM()
      : DualPrecisionKernel(
            SignatureBuilder("2MM", Group::Polybench)
                .iters(2.0 * kMM * kMM * kMM)
                .reps(20)
                .regions(2)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 0.01})
                .streamed(0.05, 0.01)
                .working_set(5.0 * kMM * kMM)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c, tmp, d;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kMM, 8);
    const std::size_t nn = s.n * s.n;
    s.a = detail::wavy<Real>(nn, 0.5, 0.013);
    s.b = detail::wavy<Real>(nn, 0.5, 0.007, 0.1);
    s.c = detail::wavy<Real>(nn, 0.5, 0.011, -0.1);
    s.tmp.assign(nn, Real(0));
    s.d.assign(nn, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real alpha = Real(1.5), beta = Real(1.2);
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    const Real* c = s.c.data();
    Real* tmp = s.tmp.data();
    Real* d = s.d.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      matmul(a, b, tmp, n, alpha, lo, hi);
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      matmul(tmp, c, d, n, beta, lo, hi);
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().d));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------------- 3MM --
class ThreeMM final : public detail::DualPrecisionKernel<ThreeMM> {
 public:
  ThreeMM()
      : DualPrecisionKernel(
            SignatureBuilder("3MM", Group::Polybench)
                .iters(3.0 * kMM * kMM * kMM)
                .reps(15)
                .regions(3)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 0.01})
                .streamed(0.05, 0.01)
                .working_set(7.0 * kMM * kMM)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c, d, e, f, g;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kMM, 8);
    const std::size_t nn = s.n * s.n;
    s.a = detail::wavy<Real>(nn, 0.4, 0.009);
    s.b = detail::wavy<Real>(nn, 0.4, 0.017, 0.1);
    s.c = detail::wavy<Real>(nn, 0.4, 0.013, 0.2);
    s.d = detail::wavy<Real>(nn, 0.4, 0.019, -0.1);
    s.e.assign(nn, Real(0));
    s.f.assign(nn, Real(0));
    s.g.assign(nn, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    const Real* c = s.c.data();
    const Real* d = s.d.data();
    Real* e = s.e.data();
    Real* f = s.f.data();
    Real* g = s.g.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      matmul(a, b, e, n, Real(1), lo, hi);
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      matmul(c, d, f, n, Real(1), lo, hi);
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      matmul(e, f, g, n, Real(1), lo, hi);
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().g));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------------- GEMM --
class Gemm final : public detail::DualPrecisionKernel<Gemm> {
 public:
  static constexpr std::size_t kDim = 256;

  Gemm()
      : DualPrecisionKernel(
            SignatureBuilder("GEMM", Group::Polybench)
                .iters(static_cast<double>(kDim) * kDim * kDim)
                .reps(25)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 0.01})
                .streamed(0.05, 0.01)
                .working_set(3.0 * kDim * kDim)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, c;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    const std::size_t nn = s.n * s.n;
    s.a = detail::wavy<Real>(nn, 0.6, 0.011);
    s.b = detail::wavy<Real>(nn, 0.6, 0.023, 0.2);
    s.c = detail::wavy<Real>(nn, 0.1, 0.005, 0.1);
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real alpha = Real(0.9), beta = Real(1.1);
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    Real* c = s.c.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) c[i * n + j] *= beta;
        for (std::size_t k = 0; k < n; ++k) {
          const Real aik = alpha * a[i * n + k];
          for (std::size_t j = 0; j < n; ++j) {
            c[i * n + j] += aik * b[k * n + j];
          }
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().c));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// --------------------------------------------------------------- ATAX --
// y = A^T (A x): two matrix-vector products.
class Atax final : public detail::DualPrecisionKernel<Atax> {
 public:
  Atax()
      : DualPrecisionKernel(
            SignatureBuilder("ATAX", Group::Polybench)
                .iters(2.0 * kMV * kMV)
                .reps(40)
                .regions(2)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 0.01})
                .streamed(1, 0.01)
                .working_set(static_cast<double>(kMV) * kMV)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, x, y, tmp;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kMV, 8);
    s.a = detail::wavy<Real>(s.n * s.n, 0.2, 0.0009);
    s.x = detail::ramp<Real>(s.n, 0.1, 1.0 / static_cast<double>(s.n));
    s.y.assign(s.n, Real(0));
    s.tmp.assign(s.n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real* a = s.a.data();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    Real* tmp = s.tmp.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real acc = Real(0);
        for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
        tmp[i] = acc;
      }
    });
    // Column sweep parallelised over j to stay write-disjoint.
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t j = lo; j < hi; ++j) {
        Real acc = Real(0);
        for (std::size_t i = 0; i < n; ++i) acc += a[i * n + j] * tmp[i];
        y[j] = acc;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------- GEMVER --
// Rank-2 update followed by two matrix-vector products.
class Gemver final : public detail::DualPrecisionKernel<Gemver> {
 public:
  Gemver()
      : DualPrecisionKernel(
            SignatureBuilder("GEMVER", Group::Polybench)
                .iters(3.0 * kMV * kMV)
                .reps(30)
                .regions(4)
                .mix(OpMix{.ffma = 1.3, .loads = 2, .stores = 0.4})
                .streamed(1.3, 0.4)
                .working_set(static_cast<double>(kMV) * kMV)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, u1, v1, u2, v2, w, x, y, z;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kMV, 8);
    s.a = detail::wavy<Real>(s.n * s.n, 0.1, 0.0011);
    s.u1 = detail::wavy<Real>(s.n, 0.5, 0.01);
    s.v1 = detail::wavy<Real>(s.n, 0.5, 0.02, 0.1);
    s.u2 = detail::wavy<Real>(s.n, 0.5, 0.03, -0.1);
    s.v2 = detail::wavy<Real>(s.n, 0.5, 0.04, 0.2);
    s.y = detail::ramp<Real>(s.n, 0.2, 1.0 / static_cast<double>(s.n));
    s.z = detail::ramp<Real>(s.n, 0.1, 0.5 / static_cast<double>(s.n));
    s.x.assign(s.n, Real(0));
    s.w.assign(s.n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real alpha = Real(0.8), beta = Real(1.1);
    Real* a = s.a.data();
    const Real* u1 = s.u1.data();
    const Real* v1 = s.v1.data();
    const Real* u2 = s.u2.data();
    const Real* v2 = s.v2.data();
    Real* w = s.w.data();
    Real* x = s.x.data();
    const Real* y = s.y.data();
    const Real* z = s.z.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          a[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
        }
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real acc = Real(0);
        for (std::size_t j = 0; j < n; ++j) acc += a[j * n + i] * y[j];
        x[i] += beta * acc;
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) x[i] += z[i];
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real acc = Real(0);
        for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
        w[i] += alpha * acc;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().w));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------ GESUMMV --
class Gesummv final : public detail::DualPrecisionKernel<Gesummv> {
 public:
  Gesummv()
      : DualPrecisionKernel(
            SignatureBuilder("GESUMMV", Group::Polybench)
                .iters(2.0 * kMV * kMV)
                .reps(40)
                .mix(OpMix{.fadd = 0.01, .ffma = 2, .loads = 3,
                           .stores = 0.01})
                .streamed(2, 0.01)
                .working_set(2.0 * kMV * kMV)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b, x, y;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kMV, 8);
    s.a = detail::wavy<Real>(s.n * s.n, 0.2, 0.0007);
    s.b = detail::wavy<Real>(s.n * s.n, 0.2, 0.0013, 0.1);
    s.x = detail::ramp<Real>(s.n, 0.3, 1.0 / static_cast<double>(s.n));
    s.y.assign(s.n, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real alpha = Real(0.75), beta = Real(1.25);
    const Real* a = s.a.data();
    const Real* b = s.b.data();
    const Real* x = s.x.data();
    Real* y = s.y.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real t = Real(0), u = Real(0);
        for (std::size_t j = 0; j < n; ++j) {
          t += a[i * n + j] * x[j];
          u += b[i * n + j] * x[j];
        }
        y[i] = alpha * t + beta * u;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().y));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------------- MVT --
class Mvt final : public detail::DualPrecisionKernel<Mvt> {
 public:
  Mvt()
      : DualPrecisionKernel(
            SignatureBuilder("MVT", Group::Polybench)
                .iters(2.0 * kMV * kMV)
                .reps(40)
                .regions(2)
                .mix(OpMix{.ffma = 1, .loads = 2, .stores = 0.01})
                .streamed(1, 0.01)
                .working_set(static_cast<double>(kMV) * kMV)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, x1, x2, y1, y2;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kMV, 8);
    s.a = detail::wavy<Real>(s.n * s.n, 0.15, 0.0017);
    s.y1 = detail::ramp<Real>(s.n, 0.1, 1.0 / static_cast<double>(s.n));
    s.y2 = detail::ramp<Real>(s.n, 0.2, 0.7 / static_cast<double>(s.n));
    s.x1.assign(s.n, Real(0.5));
    s.x2.assign(s.n, Real(0.25));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    const Real* a = s.a.data();
    Real* x1 = s.x1.data();
    Real* x2 = s.x2.data();
    const Real* y1 = s.y1.data();
    const Real* y2 = s.y2.data();
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real acc = Real(0);
        for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * y1[j];
        x1[i] += acc;
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        Real acc = Real(0);
        for (std::size_t j = 0; j < n; ++j) acc += a[j * n + i] * y2[j];
        x2[i] += acc;
      }
    });
  }

  template <class Real>
  long double cksum() const {
    const auto& s = st_.get<Real>();
    return core::checksum(std::span<const Real>(s.x1)) +
           core::checksum(std::span<const Real>(s.x2));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_2mm() {
  return std::make_unique<TwoMM>();
}
std::unique_ptr<core::KernelBase> make_3mm() {
  return std::make_unique<ThreeMM>();
}
std::unique_ptr<core::KernelBase> make_gemm() {
  return std::make_unique<Gemm>();
}
std::unique_ptr<core::KernelBase> make_atax() {
  return std::make_unique<Atax>();
}
std::unique_ptr<core::KernelBase> make_gemver() {
  return std::make_unique<Gemver>();
}
std::unique_ptr<core::KernelBase> make_gesummv() {
  return std::make_unique<Gesummv>();
}
std::unique_ptr<core::KernelBase> make_mvt() {
  return std::make_unique<Mvt>();
}

}  // namespace sgp::kernels::polybench
