// Polybench-class kernels: polyhedral loop nests (matrix chains,
// matrix-vector chains, stencils and the ADI/Floyd-Warshall solvers).
#pragma once

#include <memory>

#include "core/kernel_base.hpp"

namespace sgp::kernels::polybench {

std::unique_ptr<core::KernelBase> make_2mm();
std::unique_ptr<core::KernelBase> make_3mm();
std::unique_ptr<core::KernelBase> make_adi();
std::unique_ptr<core::KernelBase> make_atax();
std::unique_ptr<core::KernelBase> make_fdtd_2d();
std::unique_ptr<core::KernelBase> make_floyd_warshall();
std::unique_ptr<core::KernelBase> make_gemm();
std::unique_ptr<core::KernelBase> make_gemver();
std::unique_ptr<core::KernelBase> make_gesummv();
std::unique_ptr<core::KernelBase> make_heat_3d();
std::unique_ptr<core::KernelBase> make_jacobi_1d();
std::unique_ptr<core::KernelBase> make_jacobi_2d();
std::unique_ptr<core::KernelBase> make_mvt();

}  // namespace sgp::kernels::polybench
