// Polybench kernels, part 2: stencils and the ADI / Floyd-Warshall
// solvers.
#include <algorithm>
#include <cmath>
#include <vector>

#include "core/checksum.hpp"
#include "kernels/detail/data_init.hpp"
#include "kernels/detail/dual_precision.hpp"
#include "kernels/detail/signature_builder.hpp"
#include "kernels/polybench/polybench.hpp"

namespace sgp::kernels::polybench {

namespace {

using core::AccessPattern;
using core::Group;
using core::OpMix;
using detail::SignatureBuilder;

// ---------------------------------------------------------------- ADI --
// Alternating-direction-implicit sweeps: each direction carries a
// recurrence along one axis, parallel along the other.
class Adi final : public detail::DualPrecisionKernel<Adi> {
 public:
  static constexpr std::size_t kDim = 800;

  Adi()
      : DualPrecisionKernel(
            SignatureBuilder("ADI", Group::Polybench)
                .iters(2.0 * kDim * kDim)
                .reps(25)
                .regions(2)
                .mix(OpMix{.ffma = 2, .fdiv = 1, .loads = 4, .stores = 2})
                .streamed(3, 2)
                .working_set(3.0 * kDim * kDim)
                .pattern(AccessPattern::Sequential)
                .recurrence()
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> u, v, p, q;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    const std::size_t nn = s.n * s.n;
    s.u = detail::wavy<Real>(nn, 0.3, 0.0009, 0.5);
    s.v.assign(nn, Real(0));
    s.p.assign(nn, Real(0));
    s.q.assign(nn, Real(0));
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    Real* u = s.u.data();
    Real* v = s.v.data();
    Real* p = s.p.data();
    Real* q = s.q.data();
    const Real a = Real(-0.2), b = Real(1.4), c = Real(-0.2),
               d = Real(0.2), f = Real(0.6);
    // Column sweep: recurrence along i, parallel over columns j.
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t jj = lo; jj < hi; ++jj) {
        const std::size_t j = jj + 1;
        v[0 * n + j] = Real(1);
        p[0 * n + j] = Real(0);
        q[0 * n + j] = v[0 * n + j];
        for (std::size_t i = 1; i < n - 1; ++i) {
          p[i * n + j] = -c / (a * p[(i - 1) * n + j] + b);
          q[i * n + j] =
              (-d * u[j * n + i - 1] + (Real(1) + Real(2) * d) * u[j * n + i] -
               f * u[j * n + i + 1] - a * q[(i - 1) * n + j]) /
              (a * p[(i - 1) * n + j] + b);
        }
        v[(n - 1) * n + j] = Real(1);
        for (std::size_t i = n - 2; i >= 1; --i) {
          v[i * n + j] = p[i * n + j] * v[(i + 1) * n + j] + q[i * n + j];
        }
      }
    });
    // Row sweep: recurrence along j, parallel over rows i.
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t ii = lo; ii < hi; ++ii) {
        const std::size_t i = ii + 1;
        u[i * n + 0] = Real(1);
        p[i * n + 0] = Real(0);
        q[i * n + 0] = u[i * n + 0];
        for (std::size_t j = 1; j < n - 1; ++j) {
          p[i * n + j] = -f / (d * p[i * n + j - 1] + b);
          q[i * n + j] =
              (-a * v[(i - 1) * n + j] + (Real(1) + Real(2) * a) * v[i * n + j] -
               c * v[(i + 1) * n + j] - d * q[i * n + j - 1]) /
              (d * p[i * n + j - 1] + b);
        }
        u[i * n + n - 1] = Real(1);
        for (std::size_t j = n - 2; j >= 1; --j) {
          u[i * n + j] = p[i * n + j] * u[i * n + j + 1] + q[i * n + j];
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().u));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------ FDTD_2D --
class Fdtd2d final : public detail::DualPrecisionKernel<Fdtd2d> {
 public:
  static constexpr std::size_t kDim = 1000;

  Fdtd2d()
      : DualPrecisionKernel(
            SignatureBuilder("FDTD_2D", Group::Polybench)
                .iters(3.0 * kDim * kDim)
                .reps(25)
                .regions(4)
                .mix(OpMix{.fadd = 2, .ffma = 1, .loads = 4, .stores = 1})
                .streamed(3, 1)
                .working_set(3.0 * kDim * kDim)
                .pattern(AccessPattern::Stencil2D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> ex, ey, hz;
    std::size_t n = 0;
    std::size_t t = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    const std::size_t nn = s.n * s.n;
    s.ex = detail::wavy<Real>(nn, 0.2, 0.0013, 0.3);
    s.ey = detail::wavy<Real>(nn, 0.2, 0.0031, 0.2);
    s.hz = detail::wavy<Real>(nn, 0.2, 0.0007, 0.4);
    s.t = 0;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    Real* ex = s.ex.data();
    Real* ey = s.ey.data();
    Real* hz = s.hz.data();
    const Real fict = static_cast<Real>(s.t % 16) * Real(0.05);
    ++s.t;
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t j = lo; j < hi; ++j) ey[0 * n + j] = fict;
    });
    exec.parallel_for(n - 1, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t ii = lo; ii < hi; ++ii) {
        const std::size_t i = ii + 1;
        for (std::size_t j = 0; j < n; ++j) {
          ey[i * n + j] -= Real(0.5) * (hz[i * n + j] - hz[(i - 1) * n + j]);
        }
      }
    });
    exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 1; j < n; ++j) {
          ex[i * n + j] -= Real(0.5) * (hz[i * n + j] - hz[i * n + j - 1]);
        }
      }
    });
    exec.parallel_for(n - 1, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n - 1; ++j) {
          hz[i * n + j] -=
              Real(0.7) * (ex[i * n + j + 1] - ex[i * n + j] +
                           ey[(i + 1) * n + j] - ey[i * n + j]);
        }
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().hz));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ----------------------------------------------------- FLOYD_WARSHALL --
// All-pairs shortest paths; the outer k loop is inherently serial, so
// each rep issues kDim parallel regions (heavy barrier traffic).
class FloydWarshall final : public detail::DualPrecisionKernel<FloydWarshall> {
 public:
  static constexpr std::size_t kDim = 256;

  FloydWarshall()
      : DualPrecisionKernel(
            SignatureBuilder("FLOYD_WARSHALL", Group::Polybench)
                .iters(static_cast<double>(kDim) * kDim * kDim)
                .reps(10)
                .regions(kDim)
                .mix(OpMix{.fadd = 1, .fcmp = 1, .loads = 3, .stores = 1,
                           .branches = 1})
                .streamed(1, 1)
                .working_set(static_cast<double>(kDim) * kDim)
                .pattern(AccessPattern::BlockedMatrix)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> pristine, path;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    s.pristine = detail::uniform<Real>(s.n * s.n, rp.seed + 31, 1.0, 50.0);
    for (std::size_t i = 0; i < s.n; ++i) {
      s.pristine[i * s.n + i] = Real(0);
    }
    s.path = s.pristine;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    s.path = s.pristine;
    const std::size_t n = s.n;
    Real* path = s.path.data();
    for (std::size_t k = 0; k < n; ++k) {
      exec.parallel_for(n, [=](std::size_t lo, std::size_t hi, int) {
        for (std::size_t i = lo; i < hi; ++i) {
          const Real pik = path[i * n + k];
          for (std::size_t j = 0; j < n; ++j) {
            const Real through_k = pik + path[k * n + j];
            if (through_k < path[i * n + j]) path[i * n + j] = through_k;
          }
        }
      });
    }
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().path));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ------------------------------------------------------------ HEAT_3D --
class Heat3d final : public detail::DualPrecisionKernel<Heat3d> {
 public:
  static constexpr std::size_t kDim = 100;

  Heat3d()
      : DualPrecisionKernel(
            SignatureBuilder("HEAT_3D", Group::Polybench)
                .iters(2.0 * kDim * kDim * kDim)
                .reps(20)
                .regions(2)
                .mix(OpMix{.fadd = 6, .ffma = 3, .loads = 7, .stores = 1})
                .streamed(2, 1)
                .working_set(2.0 * kDim * kDim * kDim)
                .pattern(AccessPattern::Stencil3D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    const std::size_t nnn = s.n * s.n * s.n;
    s.a = detail::wavy<Real>(nnn, 0.4, 0.0011, 0.6);
    s.b = s.a;
  }

  template <class Real>
  static void sweep(const Real* src, Real* dst, std::size_t n,
                    std::size_t lo, std::size_t hi) {
    auto at = [n](std::size_t i, std::size_t j, std::size_t k) {
      return (i * n + j) * n + k;
    };
    for (std::size_t ii = lo; ii < hi; ++ii) {
      const std::size_t i = ii + 1;
      for (std::size_t j = 1; j < n - 1; ++j) {
        for (std::size_t k = 1; k < n - 1; ++k) {
          dst[at(i, j, k)] =
              Real(0.125) * (src[at(i + 1, j, k)] - Real(2) * src[at(i, j, k)] +
                             src[at(i - 1, j, k)]) +
              Real(0.125) * (src[at(i, j + 1, k)] - Real(2) * src[at(i, j, k)] +
                             src[at(i, j - 1, k)]) +
              Real(0.125) * (src[at(i, j, k + 1)] - Real(2) * src[at(i, j, k)] +
                             src[at(i, j, k - 1)]) +
              src[at(i, j, k)];
        }
      }
    }
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    Real* a = s.a.data();
    Real* b = s.b.data();
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      sweep(a, b, n, lo, hi);
    });
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      sweep(b, a, n, lo, hi);
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().a));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- JACOBI_1D --
class Jacobi1d final : public detail::DualPrecisionKernel<Jacobi1d> {
 public:
  static constexpr std::size_t kN = 1'000'000;

  Jacobi1d()
      : DualPrecisionKernel(
            SignatureBuilder("JACOBI_1D", Group::Polybench)
                .iters(2.0 * kN)
                .reps(50)
                .regions(2)
                .mix(OpMix{.fadd = 2, .fmul = 1, .loads = 3, .stores = 1})
                .streamed(1, 1)
                .working_set(2.0 * kN)
                .pattern(AccessPattern::Stencil1D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    const std::size_t n = rp.scaled(kN);
    s.a = detail::wavy<Real>(n, 0.5, 0.0013, 0.5);
    s.b = s.a;
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    Real* a = s.a.data();
    Real* b = s.b.data();
    const std::size_t n = s.a.size();
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t j = lo; j < hi; ++j) {
        const std::size_t i = j + 1;
        b[i] = Real(1.0 / 3.0) * (a[i - 1] + a[i] + a[i + 1]);
      }
    });
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      for (std::size_t j = lo; j < hi; ++j) {
        const std::size_t i = j + 1;
        a[i] = Real(1.0 / 3.0) * (b[i - 1] + b[i] + b[i + 1]);
      }
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().a));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

// ---------------------------------------------------------- JACOBI_2D --
class Jacobi2d final : public detail::DualPrecisionKernel<Jacobi2d> {
 public:
  static constexpr std::size_t kDim = 1000;

  Jacobi2d()
      : DualPrecisionKernel(
            SignatureBuilder("JACOBI_2D", Group::Polybench)
                .iters(2.0 * kDim * kDim)
                .reps(30)
                .regions(2)
                .mix(OpMix{.fadd = 4, .fmul = 1, .loads = 5, .stores = 1})
                .streamed(1.5, 1)
                .working_set(2.0 * kDim * kDim)
                .pattern(AccessPattern::Stencil2D)
                .build()) {}

  template <class Real>
  struct State {
    std::vector<Real> a, b;
    std::size_t n = 0;
  };

  template <class Real>
  void init(const core::RunParams& rp) {
    auto& s = st_.get<Real>();
    s.n = rp.scaled(kDim, 8);
    s.a = detail::wavy<Real>(s.n * s.n, 0.4, 0.0017, 0.5);
    s.b = s.a;
  }

  template <class Real>
  static void sweep(const Real* src, Real* dst, std::size_t n,
                    std::size_t lo, std::size_t hi) {
    for (std::size_t ii = lo; ii < hi; ++ii) {
      const std::size_t i = ii + 1;
      for (std::size_t j = 1; j < n - 1; ++j) {
        dst[i * n + j] =
            Real(0.2) * (src[i * n + j] + src[i * n + j - 1] +
                         src[i * n + j + 1] + src[(i + 1) * n + j] +
                         src[(i - 1) * n + j]);
      }
    }
  }

  template <class Real>
  void run(core::Executor& exec) {
    auto& s = st_.get<Real>();
    const std::size_t n = s.n;
    Real* a = s.a.data();
    Real* b = s.b.data();
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      sweep(a, b, n, lo, hi);
    });
    exec.parallel_for(n - 2, [=](std::size_t lo, std::size_t hi, int) {
      sweep(b, a, n, lo, hi);
    });
  }

  template <class Real>
  long double cksum() const {
    return core::checksum(std::span<const Real>(st_.get<Real>().a));
  }
  void reset() { st_.reset(); }

 private:
  detail::StatePair<State> st_;
};

}  // namespace

std::unique_ptr<core::KernelBase> make_adi() {
  return std::make_unique<Adi>();
}
std::unique_ptr<core::KernelBase> make_fdtd_2d() {
  return std::make_unique<Fdtd2d>();
}
std::unique_ptr<core::KernelBase> make_floyd_warshall() {
  return std::make_unique<FloydWarshall>();
}
std::unique_ptr<core::KernelBase> make_heat_3d() {
  return std::make_unique<Heat3d>();
}
std::unique_ptr<core::KernelBase> make_jacobi_1d() {
  return std::make_unique<Jacobi1d>();
}
std::unique_ptr<core::KernelBase> make_jacobi_2d() {
  return std::make_unique<Jacobi2d>();
}

}  // namespace sgp::kernels::polybench
