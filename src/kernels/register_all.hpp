// Registers all 64 kernels of the suite, in the canonical group order
// (Algorithm, Apps, Basic, Lcals, Polybench, Stream; alphabetical inside
// a group).
#pragma once

#include "core/registry.hpp"

namespace sgp::kernels {

/// Populates `reg` with the full suite. Throws on duplicates (i.e. when
/// called twice on the same registry).
void register_all(core::Registry& reg);

/// Convenience: a freshly populated registry.
core::Registry make_registry();

/// Signatures of every kernel, in registry order (no data allocated).
std::vector<core::KernelSignature> all_signatures();

}  // namespace sgp::kernels
