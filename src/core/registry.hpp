// Name-keyed registry of kernel factories. Kernels are registered
// explicitly (see kernels/register_all.cpp) rather than via static
// initialisers, so static-library dead stripping can never lose one.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/kernel_base.hpp"
#include "core/types.hpp"

namespace sgp::core {

using KernelFactory = std::function<std::unique_ptr<KernelBase>()>;

class Registry {
 public:
  /// Registers a factory. Throws std::invalid_argument on duplicate names
  /// or a factory whose kernel reports a different name/group.
  void add(std::string name, Group group, KernelFactory factory);

  /// Creates a kernel by name; throws std::out_of_range if unknown,
  /// with a closest-match suggestion when one is plausibly close.
  std::unique_ptr<KernelBase> create(std::string_view name) const;

  bool contains(std::string_view name) const noexcept;

  /// Closest registered name by case-insensitive edit distance, or ""
  /// when nothing is plausibly close (distance > max(2, len/2)).
  std::string closest(std::string_view name) const;

  /// All kernel names in registration order (the suite's canonical order).
  std::vector<std::string> names() const;
  /// Kernel names belonging to one group, in registration order.
  std::vector<std::string> names(Group group) const;
  Group group_of(std::string_view name) const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Group group;
    KernelFactory factory;
  };
  const Entry* find(std::string_view name) const noexcept;
  std::vector<Entry> entries_;
};

}  // namespace sgp::core
