#include "core/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace sgp::core {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

const Registry::Entry* Registry::find(std::string_view name) const noexcept {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Registry::add(std::string name, Group group, KernelFactory factory) {
  if (!factory) {
    throw std::invalid_argument("Registry::add: null factory for " + name);
  }
  if (find(name) != nullptr) {
    throw std::invalid_argument("Registry::add: duplicate kernel " + name);
  }
  // Validate that the factory produces what it claims.
  auto probe = factory();
  if (!probe || probe->name() != name || probe->group() != group) {
    throw std::invalid_argument(
        "Registry::add: factory/kernel mismatch for " + name);
  }
  entries_.push_back(Entry{std::move(name), group, std::move(factory)});
}

std::unique_ptr<KernelBase> Registry::create(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    std::string msg =
        "Registry::create: unknown kernel '" + std::string(name) + "'";
    const std::string hint = closest(name);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    throw std::out_of_range(msg);
  }
  return e->factory();
}

std::string Registry::closest(std::string_view name) const {
  const std::string needle = lower(name);
  std::string best;
  std::size_t best_dist = std::max<std::size_t>(2, needle.size() / 2) + 1;
  for (const auto& e : entries_) {
    const std::size_t d = edit_distance(needle, lower(e.name));
    if (d < best_dist) {
      best_dist = d;
      best = e.name;
    }
  }
  return best;
}

bool Registry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<std::string> Registry::names(Group group) const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e.group == group) out.push_back(e.name);
  }
  return out;
}

Group Registry::group_of(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    throw std::out_of_range("Registry::group_of: unknown kernel " +
                            std::string(name));
  }
  return e->group;
}

}  // namespace sgp::core
