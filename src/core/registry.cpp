#include "core/registry.hpp"

#include <stdexcept>

#include "core/names.hpp"

namespace sgp::core {

const Registry::Entry* Registry::find(std::string_view name) const noexcept {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Registry::add(std::string name, Group group, KernelFactory factory) {
  if (!factory) {
    throw std::invalid_argument("Registry::add: null factory for " + name);
  }
  if (find(name) != nullptr) {
    throw std::invalid_argument("Registry::add: duplicate kernel " + name);
  }
  // Validate that the factory produces what it claims.
  auto probe = factory();
  if (!probe || probe->name() != name || probe->group() != group) {
    throw std::invalid_argument(
        "Registry::add: factory/kernel mismatch for " + name);
  }
  entries_.push_back(Entry{std::move(name), group, std::move(factory)});
}

std::unique_ptr<KernelBase> Registry::create(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    std::string msg =
        "Registry::create: unknown kernel '" + std::string(name) + "'";
    const std::string hint = closest(name);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    throw std::out_of_range(msg);
  }
  return e->factory();
}

std::string Registry::closest(std::string_view name) const {
  return closest_name(name, names());
}

bool Registry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<std::string> Registry::names(Group group) const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e.group == group) out.push_back(e.name);
  }
  return out;
}

Group Registry::group_of(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    throw std::out_of_range("Registry::group_of: unknown kernel " +
                            std::string(name));
  }
  return e->group;
}

}  // namespace sgp::core
