// Base class every benchmark kernel derives from.
#pragma once

#include <string>

#include "core/executor.hpp"
#include "core/run_params.hpp"
#include "core/signature.hpp"
#include "core/types.hpp"

namespace sgp::core {

/// One RAJAPerf-style kernel. Construction must be cheap (signature only);
/// data is allocated in set_up and released in tear_down. A kernel must
/// support being set up and torn down repeatedly, and run_rep must be
/// idempotent enough that checksums after R reps are deterministic for a
/// fixed (precision, RunParams, executor-chunk-count) triple.
class KernelBase {
 public:
  explicit KernelBase(KernelSignature sig) : sig_(std::move(sig)) {}
  virtual ~KernelBase() = default;

  KernelBase(const KernelBase&) = delete;
  KernelBase& operator=(const KernelBase&) = delete;

  const KernelSignature& signature() const noexcept { return sig_; }
  const std::string& name() const noexcept { return sig_.name; }
  Group group() const noexcept { return sig_.group; }

  /// Allocate and initialise data for the given precision.
  virtual void set_up(Precision p, const RunParams& rp) = 0;
  /// Execute one repetition of the kernel.
  virtual void run_rep(Precision p, Executor& exec) = 0;
  /// Checksum of the kernel's outputs (valid after >= 1 rep).
  virtual long double compute_checksum(Precision p) const = 0;
  /// Release all data.
  virtual void tear_down() = 0;

  /// Result of a complete timed native run.
  struct NativeResult {
    long double checksum = 0.0L;
    double seconds = 0.0;      ///< total wall time over all reps
    std::size_t reps = 0;      ///< reps actually executed
  };

  /// Convenience driver: set_up, run `reps` times under `exec`, checksum,
  /// tear_down. Wall time covers only the run_rep calls.
  NativeResult run_native(Precision p, const RunParams& rp, Executor& exec);

 protected:
  KernelSignature sig_;
};

}  // namespace sgp::core
