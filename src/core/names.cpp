#include "core/names.hpp"

#include <algorithm>
#include <cctype>

namespace sgp::core {

std::string lower_ascii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string closest_name(std::string_view needle,
                         const std::vector<std::string>& candidates) {
  const std::string lowered = lower_ascii(needle);
  std::string best;
  std::size_t best_dist = std::max<std::size_t>(2, lowered.size() / 2) + 1;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(lowered, lower_ascii(c));
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

}  // namespace sgp::core
