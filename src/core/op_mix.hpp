// Per-iteration operation mix of a kernel's inner loop.
#pragma once

namespace sgp::core {

/// Average number of operations executed per logical loop iteration.
/// These are *architectural* counts (what the source expresses), before any
/// code generation decisions; the compiler model turns them into an
/// instruction mix.
struct OpMix {
  double fadd = 0.0;   ///< floating add/sub
  double fmul = 0.0;   ///< floating multiply
  double ffma = 0.0;   ///< fused multiply-add opportunities (counted once)
  double fdiv = 0.0;   ///< floating divide
  double fspecial = 0.0;  ///< sqrt/exp/pow etc.
  double fcmp = 0.0;   ///< floating compares (min/max/select)
  double iops = 0.0;   ///< integer ALU ops beyond address arithmetic
  double loads = 0.0;  ///< memory reads (elements)
  double stores = 0.0; ///< memory writes (elements)
  double branches = 0.0;  ///< data-dependent branches

  /// Total floating point operations per iteration (FMA counts as two).
  constexpr double flops() const noexcept {
    return fadd + fmul + 2.0 * ffma + fdiv + fspecial + fcmp;
  }
  /// Total memory accesses (elements) per iteration.
  constexpr double mem_accesses() const noexcept { return loads + stores; }
};

}  // namespace sgp::core
