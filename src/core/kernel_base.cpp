#include "core/kernel_base.hpp"

#include <chrono>

namespace sgp::core {

KernelBase::NativeResult KernelBase::run_native(Precision p,
                                                const RunParams& rp,
                                                Executor& exec) {
  set_up(p, rp);
  const std::size_t reps =
      rp.scaled_reps(static_cast<std::size_t>(sig_.reps));
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    run_rep(p, exec);
  }
  const auto t1 = std::chrono::steady_clock::now();
  NativeResult res;
  res.reps = reps;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.checksum = compute_checksum(p);
  tear_down();
  return res;
}

}  // namespace sgp::core
