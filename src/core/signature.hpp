// Performance signature of a kernel: everything the analytical model needs
// to price one rep of the kernel on a machine descriptor.
#pragma once

#include <string>

#include "core/op_mix.hpp"
#include "core/types.hpp"

namespace sgp::core {

/// What a given compiler does with this kernel's inner loop. These facts
/// come from the paper (and its companion study [11], "Test-driving RISC-V
/// Vector hardware for HPC"): GCC 8.4 auto-vectorizes 30 of the 64 kernels
/// and the runtime takes the scalar path for 7 of those; Clang vectorizes
/// 59 with 3 taking the scalar path.
struct VectorizationFacts {
  bool vectorizes = false;        ///< compiler emits a vector code path
  bool runtime_vector_path = false;  ///< runtime actually executes it
  /// Fraction of ideal vector speedup realised when the vector path runs
  /// (covers shuffles, tail handling, imperfect if-conversion, ...).
  double efficiency = 0.85;
  /// Fraction of streaming bandwidth this compiler's vector code
  /// sustains (1.0 = full). Encodes kernel-specific pathologies such as
  /// Clang's JACOBI_2D code running slower than GCC's scalar path on
  /// the C920 (the paper's Figure 3 surprise).
  double memory_efficiency = 1.0;

  /// True when the vector path both exists and is taken at runtime.
  constexpr bool effective() const noexcept {
    return vectorizes && runtime_vector_path;
  }
};

/// Static description of one kernel for the performance model. All
/// quantities are per *logical inner-loop iteration* unless stated
/// otherwise, and use the kernel's default problem size.
struct KernelSignature {
  std::string name;
  Group group = Group::Basic;

  /// Total inner-loop iterations executed by one rep of the kernel.
  double iters_per_rep = 0.0;
  /// Reps the suite runs (RAJAPerf runs each kernel many times).
  double reps = 100.0;
  /// Number of distinct parallel regions (fork/join) per rep. Halo
  /// packing-style kernels launch many small regions; most kernels one.
  double parallel_regions_per_rep = 1.0;
  /// Fraction of a rep's work that cannot be threaded (Amdahl).
  double seq_fraction = 0.0;

  OpMix mix;  ///< per-iteration operation counts

  /// Unique data (elements) read from / written to memory per iteration
  /// when the working set does not fit in cache (streaming traffic).
  double streamed_reads_per_iter = 0.0;
  double streamed_writes_per_iter = 0.0;

  /// Resident working set, in elements of the kernel's Real type. The
  /// cache model multiplies by sizeof(Real).
  double working_set_elems = 0.0;

  AccessPattern pattern = AccessPattern::Streaming;

  VectorizationFacts gcc;
  VectorizationFacts clang;

  /// Kernel is dominated by integer (not FP) arithmetic, e.g. REDUCE3_INT.
  /// Integer vector ops *are* supported by the C920 at both "precisions".
  bool integer_dominated = false;
  /// Kernel serializes on atomic updates to shared locations.
  bool atomic = false;
  /// Kernel has a loop-carried dependence that limits ILP (recurrences).
  bool recurrence = false;

  /// Streamed bytes per iteration for a given precision. Integer-dominated
  /// kernels move the same element width at both precisions (RAJAPerf uses
  /// Int_type/Index_type data there).
  double streamed_bytes_per_iter(Precision p) const noexcept {
    const double w =
        integer_dominated ? 8.0 : static_cast<double>(bytes_of(p));
    return (streamed_reads_per_iter + streamed_writes_per_iter) * w;
  }

  /// Working set in bytes for a given precision.
  double working_set_bytes(Precision p) const noexcept {
    const double w =
        integer_dominated ? 8.0 : static_cast<double>(bytes_of(p));
    return working_set_elems * w;
  }

  const VectorizationFacts& facts(CompilerId c) const noexcept {
    return c == CompilerId::Gcc ? gcc : clang;
  }
};

}  // namespace sgp::core
