// RAJAPerf-style checksums used to validate native kernel execution.
#pragma once

#include <cstddef>
#include <span>

namespace sgp::core {

/// Position-weighted checksum, as RAJAPerf computes it: each element is
/// weighted by its (1-based) index so permutations are detected, and the
/// sum is normalised by the length so checksums stay O(values).
template <class Real>
long double checksum(std::span<const Real> data) {
  long double sum = 0.0L;
  const long double n = static_cast<long double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    sum += static_cast<long double>(data[i]) *
           (static_cast<long double>(i + 1) / n);
  }
  return sum;
}

/// Unweighted sum; used for reduction outputs where order is irrelevant.
template <class Real>
long double plain_sum(std::span<const Real> data) {
  long double sum = 0.0L;
  for (const Real v : data) sum += static_cast<long double>(v);
  return sum;
}

}  // namespace sgp::core
