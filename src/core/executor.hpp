// Abstract execution policy used by kernels for their parallel loops.
// The serial executor lives here; the pooled implementation is in
// threading/ (so core has no dependency on the thread pool).
#pragma once

#include <cstddef>
#include <functional>

namespace sgp::core {

/// Runs chunked loops over [0, n). Implementations must invoke the chunk
/// functor with disjoint [begin, end) ranges that exactly cover [0, n),
/// passing a chunk index in [0, max_chunks()) so kernels can accumulate
/// per-chunk reduction partials without synchronisation.
class Executor {
 public:
  using ChunkFn =
      std::function<void(std::size_t begin, std::size_t end, int chunk)>;

  virtual ~Executor() = default;

  /// Upper bound on distinct chunk indices passed to parallel_for.
  virtual int max_chunks() const = 0;

  /// Execute `fn` over [0, n). Must not return before all chunks finish.
  virtual void parallel_for(std::size_t n, const ChunkFn& fn) = 0;
};

/// Trivial executor: one chunk, calling thread.
class SerialExecutor final : public Executor {
 public:
  int max_chunks() const override { return 1; }
  void parallel_for(std::size_t n, const ChunkFn& fn) override {
    fn(0, n, 0);
  }
};

}  // namespace sgp::core
