// Parameters controlling a native suite run.
#pragma once

#include <cstddef>

namespace sgp::core {

/// Controls for running kernels natively (really executing the loops).
/// Mirrors the knobs RAJAPerf exposes (--sizefact, --repfact).
struct RunParams {
  /// Multiplies each kernel's default problem size. Values below ~0.01 are
  /// clamped by kernels so loops never degenerate to zero trip count.
  double size_factor = 1.0;
  /// Multiplies each kernel's default rep count.
  double rep_factor = 1.0;
  /// Number of native worker threads (1 = serial execution).
  int num_threads = 1;
  /// Fixed seed so SORT/INDEXLIST style kernels are reproducible.
  unsigned seed = 4242u;

  /// Scaled problem size helper, never less than `min`.
  std::size_t scaled(std::size_t base, std::size_t min = 8) const {
    const auto s = static_cast<std::size_t>(static_cast<double>(base) *
                                            size_factor);
    return s < min ? min : s;
  }
  /// Scaled rep count helper, never less than 1.
  std::size_t scaled_reps(std::size_t base) const {
    const auto r =
        static_cast<std::size_t>(static_cast<double>(base) * rep_factor);
    return r < 1 ? 1 : r;
  }
};

}  // namespace sgp::core
