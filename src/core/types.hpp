// Core enumerations shared across the whole suite.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sgp::core {

/// RAJAPerf benchmark classes ("groups" in RAJAPerf terminology).
enum class Group : std::uint8_t {
  Algorithm,
  Apps,
  Basic,
  Lcals,
  Polybench,
  Stream,
};

inline constexpr std::array<Group, 6> all_groups{
    Group::Algorithm, Group::Apps,      Group::Basic,
    Group::Lcals,     Group::Polybench, Group::Stream,
};

constexpr std::string_view to_string(Group g) noexcept {
  switch (g) {
    case Group::Algorithm: return "Algorithm";
    case Group::Apps:      return "Apps";
    case Group::Basic:     return "Basic";
    case Group::Lcals:     return "Lcals";
    case Group::Polybench: return "Polybench";
    case Group::Stream:    return "Stream";
  }
  return "?";
}

/// Floating point precision a kernel is compiled/run at.
enum class Precision : std::uint8_t { FP32, FP64 };

inline constexpr std::array<Precision, 2> all_precisions{Precision::FP32,
                                                         Precision::FP64};

constexpr std::string_view to_string(Precision p) noexcept {
  return p == Precision::FP32 ? "FP32" : "FP64";
}

constexpr std::size_t bytes_of(Precision p) noexcept {
  return p == Precision::FP32 ? 4u : 8u;
}

/// How the loop body is code-generated.
enum class VectorMode : std::uint8_t {
  Scalar,  ///< no vectorization (or -fno-tree-vectorize)
  VLS,     ///< vector-length-specific RVV / fixed-width SIMD
  VLA,     ///< vector-length-agnostic RVV (Clang only)
};

constexpr std::string_view to_string(VectorMode m) noexcept {
  switch (m) {
    case VectorMode::Scalar: return "scalar";
    case VectorMode::VLS:    return "VLS";
    case VectorMode::VLA:    return "VLA";
  }
  return "?";
}

/// Compiler used for the (modelled) build.
enum class CompilerId : std::uint8_t {
  Gcc,    ///< XuanTie GCC 8.4 on RISC-V; GCC 8.3/11.2 on x86
  Clang,  ///< Clang with RVV v1.0 output, rolled back to v0.7.1
};

constexpr std::string_view to_string(CompilerId c) noexcept {
  return c == CompilerId::Gcc ? "GCC" : "Clang";
}

/// Dominant memory access pattern of a kernel's inner loop. Drives the
/// bandwidth-efficiency and vector-efficiency deratings in the model.
enum class AccessPattern : std::uint8_t {
  Streaming,      ///< unit-stride read/write sweeps (STREAM-like)
  Strided,        ///< constant non-unit stride
  Stencil1D,      ///< neighbour reuse in one dimension
  Stencil2D,      ///< row reuse across a 2D grid
  Stencil3D,      ///< plane reuse across a 3D grid
  Gather,         ///< indexed/indirect loads
  Reduction,      ///< loop-carried reduction into a scalar
  Sequential,     ///< loop-carried data dependence (recurrence)
  BlockedMatrix,  ///< tiled/blocked matrix traversal (GEMM-like)
  Sort,           ///< comparison sort (branchy, log-depth passes)
};

constexpr std::string_view to_string(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::Streaming:     return "streaming";
    case AccessPattern::Strided:       return "strided";
    case AccessPattern::Stencil1D:     return "stencil1d";
    case AccessPattern::Stencil2D:     return "stencil2d";
    case AccessPattern::Stencil3D:     return "stencil3d";
    case AccessPattern::Gather:        return "gather";
    case AccessPattern::Reduction:     return "reduction";
    case AccessPattern::Sequential:    return "sequential";
    case AccessPattern::BlockedMatrix: return "blocked-matrix";
    case AccessPattern::Sort:          return "sort";
  }
  return "?";
}

}  // namespace sgp::core
