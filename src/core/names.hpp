// Shared name-matching helpers for the name-keyed registries (kernels
// in core::Registry, machines in machine::MachineRegistry): ASCII
// lowering and an edit distance drive the case-insensitive
// "did you mean" suggestions both registries print.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::core {

/// ASCII-lowered copy (locale-independent).
std::string lower_ascii(std::string_view s);

/// Levenshtein edit distance.
std::size_t edit_distance(const std::string& a, const std::string& b);

/// Closest candidate by case-insensitive edit distance, or "" when
/// nothing is plausibly close (distance > max(2, len/2)).
std::string closest_name(std::string_view needle,
                         const std::vector<std::string>& candidates);

}  // namespace sgp::core
