#include "machine/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/names.hpp"
#include "machine/serialize.hpp"

namespace sgp::machine {

namespace fs = std::filesystem;

const MachineRegistry::Entry* MachineRegistry::find(
    std::string_view name) const noexcept {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void MachineRegistry::add(std::string name, MachineFactory factory) {
  if (!factory) {
    throw std::invalid_argument("MachineRegistry::add: null factory for " +
                                name);
  }
  add(std::move(name), factory());
}

void MachineRegistry::add(std::string name, MachineDescriptor desc) {
  if (name.empty()) {
    throw std::invalid_argument("MachineRegistry::add: empty machine name");
  }
  if (find(name) != nullptr) {
    throw std::invalid_argument("MachineRegistry::add: duplicate machine '" +
                                name + "'");
  }
  desc.validate();
  entries_.push_back(
      Entry{std::move(name),
            std::make_unique<MachineDescriptor>(std::move(desc))});
}

IniLoadReport MachineRegistry::register_ini_dir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw std::invalid_argument(
        "MachineRegistry::register_ini_dir: not a directory: " + dir);
  }
  std::vector<fs::path> packs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ini") {
      packs.push_back(entry.path());
    }
  }
  // directory_iterator order is unspecified; sort for a deterministic
  // registration (and therefore listing) order.
  std::sort(packs.begin(), packs.end());

  IniLoadReport report;
  for (const auto& path : packs) {
    try {
      std::ifstream in(path);
      if (!in) {
        throw std::invalid_argument("cannot open file");
      }
      std::ostringstream text;
      text << in.rdbuf();
      const std::string name = path.stem().string();
      add(name, from_ini(text.str()));
      report.loaded.push_back(name);
    } catch (const std::exception& e) {
      report.errors.push_back({path.string(), e.what()});
    }
  }
  return report;
}

const MachineDescriptor& MachineRegistry::descriptor(
    std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    std::string msg = "MachineRegistry: unknown machine '" +
                      std::string(name) + "'";
    const std::string hint = closest(name);
    if (!hint.empty()) msg += "; did you mean '" + hint + "'?";
    throw std::out_of_range(msg);
  }
  return *e->desc;
}

MachineDescriptor MachineRegistry::create(std::string_view name) const {
  return descriptor(name);
}

bool MachineRegistry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

std::string MachineRegistry::closest(std::string_view name) const {
  return core::closest_name(name, names());
}

std::vector<std::string> MachineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

void register_builtin_machines(MachineRegistry& registry) {
  registry.add("sg2042", &sg2042);
  registry.add("visionfive-v1", &visionfive_v1);
  registry.add("visionfive-v2", &visionfive_v2);
  registry.add("rome", &amd_rome);
  registry.add("broadwell", &intel_broadwell);
  registry.add("icelake", &intel_icelake);
  registry.add("sandybridge", &intel_sandybridge);
  registry.add("d1", &allwinner_d1);
}

MachineRegistry& shared_registry() {
  static MachineRegistry* registry = [] {
    auto* r = new MachineRegistry();
    register_builtin_machines(*r);
    return r;
  }();
  return *registry;
}

}  // namespace sgp::machine
