// Thread-to-core placement policies studied in Section 3.2 of the paper.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "machine/descriptor.hpp"

namespace sgp::machine {

/// The three OMP_PROC_BIND-style policies the paper evaluates.
enum class Placement {
  /// Threads map contiguously to core ids (thread i -> core i). Table 1.
  Block,
  /// Threads cycle round NUMA regions, contiguous inside a region
  /// (4 threads -> cores 0, 8, 32, 40 on the SG2042). Table 2.
  CyclicNuma,
  /// Threads cycle round NUMA regions *and*, inside each region, round
  /// the four-core L2 clusters (8 threads -> 0, 8, 32, 40, 16, 24, 48,
  /// 56 on the SG2042). Table 3.
  ClusterCyclic,
};

inline constexpr std::array<Placement, 3> all_placements{
    Placement::Block, Placement::CyclicNuma, Placement::ClusterCyclic};

constexpr std::string_view to_string(Placement p) noexcept {
  switch (p) {
    case Placement::Block:         return "block";
    case Placement::CyclicNuma:    return "cyclic";
    case Placement::ClusterCyclic: return "cluster";
  }
  return "?";
}

/// Core ids assigned to threads 0..nthreads-1 under a policy.
/// Throws std::invalid_argument if nthreads is not in [1, num_cores].
std::vector<int> assign_cores(const MachineDescriptor& m, Placement p,
                              int nthreads);

/// Occupancy summary of an assignment; the performance model consumes
/// this rather than raw core ids.
struct PlacementStats {
  std::vector<int> threads_per_numa;     ///< indexed by NUMA region
  std::vector<int> threads_per_cluster;  ///< indexed by cluster
  int regions_spanned = 0;   ///< NUMA regions with >= 1 thread
  int max_per_numa = 0;
  int max_per_cluster = 0;
};

PlacementStats analyze(const MachineDescriptor& m,
                       const std::vector<int>& cores);

}  // namespace sgp::machine
