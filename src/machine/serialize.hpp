// Textual (INI-style) serialization of machine descriptors, so users
// can define their own CPUs for the placement/roofline/simulation tools
// without recompiling.
//
// Format: `[section]` headers with `key = value` lines; `#` comments.
// Sections: [machine], [core], [vector] (optional), [l1d], [l2],
// [l3] (optional), [numa.N] (one per region), [sync], [memory].
// Cluster geometry is given as cluster_width in [machine] (clusters are
// consecutive core ids, as on the SG2042).
#pragma once

#include <string>
#include <string_view>

#include "machine/descriptor.hpp"

namespace sgp::machine {

/// Renders a descriptor to the INI text form. Round-trips with
/// from_ini() for descriptors whose clusters are consecutive id blocks.
std::string to_ini(const MachineDescriptor& m);

/// Parses the INI text form; validates the result before returning.
/// Throws std::invalid_argument with a line-localised message on any
/// syntax or consistency error.
MachineDescriptor from_ini(std::string_view text);

}  // namespace sgp::machine
