// Textual (INI-style) serialization of machine descriptors, so users
// can define their own CPUs for the placement/roofline/simulation tools
// without recompiling.
//
// Format: `[section]` headers with `key = value` lines; `#` comments.
// Repeated section headers and repeated keys within a section are
// errors (they used to merge silently). Sections: [machine], [core],
// [vector] (optional), [l1d], [l2], [l3] (optional), [numa.N] (one per
// region), [sync], [memory].
// Cluster geometry is given in [machine] either as cluster_width
// (uniform clusters of consecutive core ids, as on the SG2042) or as
// explicit membership lists `cluster.0 = 0,1,2` ... `cluster.K = ...`
// for heterogeneous/interleaved topologies; the two forms are mutually
// exclusive. See docs/MACHINES.md for the full key reference.
#pragma once

#include <string>
#include <string_view>

#include "machine/descriptor.hpp"

namespace sgp::machine {

/// Renders a descriptor to the INI text form; round-trips with
/// from_ini() (uniform contiguous clusters use the cluster_width
/// shorthand, every other topology is written out per cluster).
/// Throws std::invalid_argument if a value cannot be formatted.
std::string to_ini(const MachineDescriptor& m);

/// Parses the INI text form; validates the result before returning.
/// Throws std::invalid_argument with a line-localised message on any
/// syntax or consistency error.
MachineDescriptor from_ini(std::string_view text);

}  // namespace sgp::machine
