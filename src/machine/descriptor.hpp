// Machine descriptors: the published microarchitectural facts about each
// CPU the paper benchmarks, in the form the performance model consumes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace sgp::machine {

/// One level of the data-cache hierarchy.
struct CacheSpec {
  std::size_t size_bytes = 0;
  int line_bytes = 64;
  /// Number of cores sharing one instance of this level (1 = private).
  int shared_by = 1;
  /// Sustained bandwidth of one instance, bytes per core-clock cycle.
  double bw_bytes_per_cycle = 16.0;
  double latency_cycles = 4.0;

  bool present() const noexcept { return size_bytes > 0; }
};

/// SIMD/vector execution resources of a core.
struct VectorUnit {
  std::string isa;        ///< "RVV v0.7.1", "AVX2", "AVX512", "AVX"
  int width_bits = 128;
  bool fp32 = true;       ///< FP32 vector arithmetic supported
  bool fp64 = true;       ///< FP64 vector arithmetic supported
  /// Sustained fraction of ideal width-scaling actually achieved.
  double efficiency_fp32 = 0.5;
  double efficiency_fp64 = 0.5;

  int lanes(int elem_bits) const noexcept { return width_bits / elem_bits; }
};

/// Per-core execution resources.
struct CoreSpec {
  double clock_ghz = 2.0;
  int decode_width = 2;
  int issue_width = 2;
  bool out_of_order = false;
  int fp_pipes = 1;        ///< FP execution pipes
  bool fma = true;         ///< fused multiply-add supported
  int mem_ports = 1;       ///< load/store pipes
  /// Sustained fraction of peak scalar FP issue achieved on loop code
  /// (covers in-order stalls, branch cost, dependency chains).
  double scalar_eff = 0.5;
  /// Single-core achievable DRAM streaming bandwidth, GB/s (vector or
  /// wide-load code).
  double stream_bw_gbs = 6.0;
  /// Fraction of stream_bw_gbs a *scalar* code path sustains: scalar
  /// loads expose less memory-level parallelism than vector loads. The
  /// C920 is notably poor here, which is why the paper's stream class
  /// gains the most from vectorisation (Figure 2).
  double scalar_stream_derate = 1.0;
  std::optional<VectorUnit> vector;

  /// Sustained scalar FP ops per cycle.
  double scalar_flops_per_cycle() const noexcept {
    return fp_pipes * (fma ? 2.0 : 1.0) * scalar_eff;
  }
  /// Sustained vector FP ops per cycle for an element width, or 0 if the
  /// unit cannot vectorize that width.
  double vector_flops_per_cycle(int elem_bits) const noexcept {
    if (!vector) return 0.0;
    const bool ok = (elem_bits == 32 && vector->fp32) ||
                    (elem_bits == 64 && vector->fp64);
    if (!ok) return 0.0;
    const double eff = elem_bits == 32 ? vector->efficiency_fp32
                                       : vector->efficiency_fp64;
    return vector->lanes(elem_bits) * fp_pipes * (fma ? 2.0 : 1.0) * eff;
  }
};

/// A NUMA region: the cores it contains and its memory resources.
struct NumaRegion {
  std::vector<int> cores;    ///< hardware core ids, in id order
  int controllers = 1;       ///< DDR controllers serving this region
  double mem_bw_gbs = 25.6;  ///< aggregate sustained bandwidth
};

/// A complete socket/package description.
struct MachineDescriptor {
  std::string name;
  int num_cores = 1;
  CoreSpec core;
  CacheSpec l1d;
  CacheSpec l2;
  CacheSpec l3;  ///< size 0 when absent

  std::vector<NumaRegion> numa;
  /// Groups of cores sharing one L2 instance ("clusters" on the SG2042;
  /// singleton groups on machines with private L2).
  std::vector<std::vector<int>> clusters;

  double mem_latency_ns = 100.0;
  /// Max DRAM traffic one cluster can move through its mesh/bus port,
  /// GB/s; 0 = unlimited. This is the SG2042's key bottleneck: four cores
  /// behind one L2-to-mesh interface.
  double cluster_bw_gbs = 0.0;
  /// Bandwidth multiplier for touching a remote NUMA region.
  double remote_numa_penalty = 1.6;

  // --- synchronisation model ---
  double fork_join_us = 2.0;           ///< base cost of one parallel region
  double barrier_us_per_thread = 0.1;  ///< incremental per-thread cost
  /// Extra multiplier on sync cost per additional NUMA region spanned.
  double numa_span_sync_factor = 1.25;

  /// Memory oversubscription: once a region serves more than
  /// `oversubscribe_knee` threads, its total bandwidth is derated by
  /// 1/(1 + gamma * (n - knee)^2) — row-buffer thrashing / mesh
  /// contention. Harsh on the SG2042 (the knee sits at 8, half a
  /// region's cores: activating a region's second core-id block kills
  /// row locality), benign on the x86 parts (knee = region size).
  /// knee == 0 means "region core count" (no derate at full occupancy).
  double oversubscribe_gamma = 0.2;
  double oversubscribe_knee = 0.0;

  /// True when the L3 is a memory-side system cache on the mesh (the
  /// SG2042's 64 MB cache): L3-resident traffic then behaves like the
  /// DRAM system (per-region slices, knee derating, cluster port caps)
  /// rather than like a core-side cache.
  bool l3_memory_side = false;

  /// Whole-machine memory derating (1 = none). Encodes the VisionFive
  /// V1's unexplained slowdown, which the paper also could not explain.
  double memory_derating = 1.0;

  /// Coherence round-trip for contended atomics, ns.
  double atomic_rtt_ns = 40.0;

  // --- topology queries ---
  /// NUMA region index owning `core`, or -1.
  int numa_of_core(int core) const noexcept;
  /// Cluster index owning `core`, or -1.
  int cluster_of_core(int core) const noexcept;
  /// Aggregate machine DRAM bandwidth (sum over regions), GB/s.
  double total_mem_bw_gbs() const noexcept;
  /// Number of threads that saturate one region's controllers.
  double region_saturation_threads(std::size_t region) const;

  /// Throws std::invalid_argument if the descriptor is inconsistent
  /// (cores missing from NUMA map, overlapping clusters, ...).
  void validate() const;
};

/// The seven machines of the paper.
MachineDescriptor sg2042();
MachineDescriptor visionfive_v1();
MachineDescriptor visionfive_v2();
MachineDescriptor amd_rome();
MachineDescriptor intel_broadwell();
MachineDescriptor intel_icelake();
MachineDescriptor intel_sandybridge();

/// The AllWinner D1 (single XuanTie C906) from the paper's background
/// study [10]: an energy-efficiency core, but with RVV v0.7.1 — the
/// board where the U74 wins scalar and the C906 wins vectorised.
MachineDescriptor allwinner_d1();

/// All seven, SG2042 first.
std::vector<MachineDescriptor> all_machines();
/// The four x86 parts of Table 4, in the paper's order.
std::vector<MachineDescriptor> x86_machines();

/// Builds singleton or k-wide clusters over contiguous core ids — the
/// topology the `cluster_width` shorthand of the INI form describes.
std::vector<std::vector<int>> contiguous_clusters(int num_cores, int width);

}  // namespace sgp::machine
