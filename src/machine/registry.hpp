// Name-keyed registry of machine descriptors, in the style of
// core::Registry: built-in machines register explicitly (see
// register_builtin_machines), and INI machine packs register through
// register_ini_dir — so a brand-new CPU is one INI file and zero
// recompiles. Registration order is preserved (it is the canonical
// listing order everywhere names are printed), lookups are exact, and
// closest() provides the case-insensitive did-you-mean hint.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "machine/descriptor.hpp"

namespace sgp::machine {

using MachineFactory = std::function<MachineDescriptor()>;

/// Outcome of loading a pack directory: which files registered and
/// which were quarantined (with per-file error context). A corrupt
/// pack never aborts the load of its siblings.
struct IniLoadReport {
  struct Error {
    std::string file;     ///< path of the pack that failed
    std::string message;  ///< parse/validate/registration error
  };
  std::vector<std::string> loaded;  ///< registry names, load order
  std::vector<Error> errors;        ///< quarantined packs
  bool ok() const noexcept { return errors.empty(); }
};

class MachineRegistry {
 public:
  /// Registers a factory under `name`. The factory runs once up front:
  /// the descriptor it yields is validated and cached (the serve layer
  /// borrows descriptor pointers for the process lifetime, so cached
  /// descriptors never move or get rebuilt). Throws
  /// std::invalid_argument on a duplicate or empty name, a null
  /// factory, or a descriptor that fails validate().
  void add(std::string name, MachineFactory factory);
  /// Registers a ready-made descriptor (validated here).
  void add(std::string name, MachineDescriptor desc);

  /// Loads every `*.ini` machine pack in `dir` (sorted by filename;
  /// the registry name is the file stem). Parse, validation and
  /// duplicate-name failures are reported per file in the returned
  /// report, not thrown. Throws std::invalid_argument only when `dir`
  /// itself is not a readable directory.
  IniLoadReport register_ini_dir(const std::string& dir);

  /// Stable reference to the registered descriptor; valid for the
  /// registry's lifetime. Throws std::out_of_range if unknown, with a
  /// closest-match suggestion when one is plausibly close.
  const MachineDescriptor& descriptor(std::string_view name) const;

  /// Fresh mutable copy of the registered descriptor; throws like
  /// descriptor().
  MachineDescriptor create(std::string_view name) const;

  bool contains(std::string_view name) const noexcept;

  /// Closest registered name by case-insensitive edit distance, or ""
  /// when nothing is plausibly close (distance > max(2, len/2)).
  std::string closest(std::string_view name) const;

  /// All machine names in registration order.
  std::vector<std::string> names() const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    // unique_ptr keeps descriptor addresses stable across vector
    // growth; consumers hold references across later registrations.
    std::unique_ptr<MachineDescriptor> desc;
  };
  const Entry* find(std::string_view name) const noexcept;
  std::vector<Entry> entries_;
};

/// Registers the built-in descriptor family under its canonical serve
/// names: sg2042, visionfive-v1, visionfive-v2, rome, broadwell,
/// icelake, sandybridge, d1 (in that order).
void register_builtin_machines(MachineRegistry& registry);

/// The process-wide registry, created on first use with the built-ins
/// already registered. Register INI pack directories here before
/// serving or resolving: registration is not synchronised against
/// concurrent readers (the serve/tool pattern is "register at startup,
/// read-only afterwards").
MachineRegistry& shared_registry();

}  // namespace sgp::machine
