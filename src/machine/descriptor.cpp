#include "machine/descriptor.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace sgp::machine {

int MachineDescriptor::numa_of_core(int core) const noexcept {
  for (std::size_t r = 0; r < numa.size(); ++r) {
    const auto& cs = numa[r].cores;
    if (std::find(cs.begin(), cs.end(), core) != cs.end()) {
      return static_cast<int>(r);
    }
  }
  return -1;
}

int MachineDescriptor::cluster_of_core(int core) const noexcept {
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto& cs = clusters[c];
    if (std::find(cs.begin(), cs.end(), core) != cs.end()) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

double MachineDescriptor::total_mem_bw_gbs() const noexcept {
  double sum = 0.0;
  for (const auto& r : numa) sum += r.mem_bw_gbs;
  return sum;
}

double MachineDescriptor::region_saturation_threads(std::size_t region) const {
  if (region >= numa.size()) {
    throw std::out_of_range("region_saturation_threads: bad region");
  }
  const double per_core = core.stream_bw_gbs;
  if (per_core <= 0.0) return 1.0;
  return std::max(1.0, numa[region].mem_bw_gbs / per_core);
}

void MachineDescriptor::validate() const {
  if (num_cores <= 0) {
    throw std::invalid_argument(name + ": num_cores must be positive");
  }
  if (core.clock_ghz <= 0.0) {
    throw std::invalid_argument(name + ": clock must be positive");
  }
  if (numa.empty()) {
    throw std::invalid_argument(name + ": no NUMA regions");
  }
  std::set<int> seen;
  for (const auto& r : numa) {
    if (r.cores.empty()) {
      throw std::invalid_argument(name + ": empty NUMA region");
    }
    for (int c : r.cores) {
      if (c < 0 || c >= num_cores) {
        throw std::invalid_argument(name + ": NUMA core id out of range");
      }
      if (!seen.insert(c).second) {
        throw std::invalid_argument(name + ": core in two NUMA regions");
      }
    }
  }
  if (static_cast<int>(seen.size()) != num_cores) {
    throw std::invalid_argument(name + ": cores missing from NUMA map");
  }
  std::set<int> cseen;
  for (const auto& cl : clusters) {
    if (cl.empty()) {
      throw std::invalid_argument(name + ": empty cluster");
    }
    for (int c : cl) {
      if (c < 0 || c >= num_cores) {
        throw std::invalid_argument(name + ": cluster core id out of range");
      }
      if (!cseen.insert(c).second) {
        throw std::invalid_argument(name + ": core in two clusters");
      }
    }
    // A cluster must not straddle NUMA regions.
    const int region = numa_of_core(cl.front());
    for (int c : cl) {
      if (numa_of_core(c) != region) {
        throw std::invalid_argument(name + ": cluster straddles NUMA regions");
      }
    }
  }
  if (static_cast<int>(cseen.size()) != num_cores) {
    throw std::invalid_argument(name + ": cores missing from cluster map");
  }
  if (!l1d.present() || !l2.present()) {
    throw std::invalid_argument(name + ": L1D and L2 are required");
  }
  // shared_by need not equal the cluster width (the L2 capacity model
  // divides by the actual cluster population, see sim/cache_model.cpp);
  // it must merely be a sensible sharer count.
  if (l1d.shared_by < 1 || l2.shared_by < 1 ||
      (l3.present() && l3.shared_by < 1)) {
    throw std::invalid_argument(name + ": cache shared_by must be >= 1");
  }
  if (memory_derating <= 0.0 || memory_derating > 1.0) {
    throw std::invalid_argument(name + ": memory_derating must be in (0,1]");
  }
}

std::vector<std::vector<int>> contiguous_clusters(int num_cores, int width) {
  std::vector<std::vector<int>> out;
  for (int base = 0; base < num_cores; base += width) {
    std::vector<int> cl;
    for (int i = 0; i < width && base + i < num_cores; ++i) {
      cl.push_back(base + i);
    }
    out.push_back(std::move(cl));
  }
  return out;
}

namespace {

std::vector<int> id_range(int first, int last) {
  std::vector<int> out;
  for (int i = first; i <= last; ++i) out.push_back(i);
  return out;
}

std::vector<int> concat(std::vector<int> a, const std::vector<int>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

MachineDescriptor sg2042() {
  MachineDescriptor m;
  m.name = "Sophon SG2042";
  m.num_cores = 64;

  CoreSpec c;
  c.clock_ghz = 2.0;
  c.decode_width = 3;   // C920: 3 decode
  c.issue_width = 8;    // 8 issue/execute units
  c.out_of_order = true;
  c.fp_pipes = 2;
  c.fma = true;
  c.mem_ports = 2;      // 2 load/store units
  c.scalar_eff = 0.50;
  c.stream_bw_gbs = 6.0;
  c.scalar_stream_derate = 0.50;
  VectorUnit v;
  v.isa = "RVV v0.7.1";
  v.width_bits = 128;
  v.fp32 = true;
  v.fp64 = false;  // the paper's central finding: no FP64 vectorisation
  v.efficiency_fp32 = 0.40;
  v.efficiency_fp64 = 0.0;
  c.vector = v;
  m.core = c;

  m.l1d = CacheSpec{64 * 1024, 64, 1, 32.0, 4.0};
  m.l2 = CacheSpec{1024 * 1024, 64, 4, 24.0, 20.0};   // 1 MB per 4-core cluster
  // Memory-side system cache: 40 B/cycle aggregate = 80 GB/s, split
  // into four per-NUMA-region slices by the memory model.
  m.l3 = CacheSpec{64UL * 1024 * 1024, 64, 64, 40.0, 80.0};

  // The paper's lscpu finding: NUMA region r holds two non-adjacent blocks
  // of eight consecutive core ids.
  m.numa = {
      NumaRegion{concat(id_range(0, 7), id_range(16, 23)), 1, 25.6},
      NumaRegion{concat(id_range(8, 15), id_range(24, 31)), 1, 25.6},
      NumaRegion{concat(id_range(32, 39), id_range(48, 55)), 1, 25.6},
      NumaRegion{concat(id_range(40, 47), id_range(56, 63)), 1, 25.6},
  };
  m.clusters = contiguous_clusters(64, 4);

  m.mem_latency_ns = 130.0;
  m.cluster_bw_gbs = 6.0;       // one L2-to-mesh port per 4-core cluster
  m.remote_numa_penalty = 1.8;
  m.fork_join_us = 4.0;
  m.barrier_us_per_thread = 0.05;
  m.numa_span_sync_factor = 1.25;
  m.oversubscribe_gamma = 0.15;
  m.oversubscribe_knee = 8.0;   // a region's second core-id block
  m.l3_memory_side = true;
  m.atomic_rtt_ns = 90.0;
  return m;
}

namespace {

/// Shared SiFive U74 core + board shape of the two VisionFive boards.
MachineDescriptor visionfive_common(std::string name, int cores) {
  MachineDescriptor m;
  m.name = std::move(name);
  m.num_cores = cores;

  CoreSpec c;
  c.clock_ghz = 1.5;
  c.decode_width = 2;   // U74: dual-issue in-order
  c.issue_width = 2;
  c.out_of_order = false;
  c.fp_pipes = 1;
  c.fma = true;
  c.mem_ports = 1;
  c.scalar_eff = 0.33;
  c.stream_bw_gbs = 0.7;  // measured-class LPDDR4 board bandwidth
  c.vector = std::nullopt;  // RV64GC only, no RVV
  m.core = c;

  m.l1d = CacheSpec{32 * 1024, 64, 1, 16.0, 3.0};
  m.l2 = CacheSpec{2 * 1024 * 1024, 64, cores, 8.0, 25.0};  // shared by all
  m.l3 = CacheSpec{};  // none

  NumaRegion r;
  r.cores = id_range(0, cores - 1);
  r.controllers = 1;
  r.mem_bw_gbs = 2.0;  // LPDDR4 board memory, sustained
  m.numa = {r};
  m.clusters = {id_range(0, cores - 1)};
  m.l2.shared_by = cores;

  m.mem_latency_ns = 160.0;
  m.remote_numa_penalty = 1.0;
  m.fork_join_us = 4.0;
  m.barrier_us_per_thread = 1.5;
  m.oversubscribe_gamma = 0.4;
  m.atomic_rtt_ns = 60.0;
  return m;
}

}  // namespace

MachineDescriptor visionfive_v1() {
  auto m = visionfive_common("StarFive VisionFive V1", 2);
  // The paper measured the V1 3-6x slower than the V2 at FP64 despite the
  // identical U74 core and listed clock, and could not explain it. We
  // encode the observed derating on the memory subsystem and a reduced
  // effective core efficiency, and flag it as unexplained.
  m.memory_derating = 0.30;
  m.core.scalar_eff = 0.12;
  return m;
}

MachineDescriptor visionfive_v2() {
  return visionfive_common("StarFive VisionFive V2", 4);
}

MachineDescriptor amd_rome() {
  MachineDescriptor m;
  m.name = "AMD Rome EPYC 7742";
  m.num_cores = 64;

  CoreSpec c;
  c.clock_ghz = 2.25;
  c.decode_width = 4;
  c.issue_width = 8;
  c.out_of_order = true;
  c.fp_pipes = 2;
  c.fma = true;
  c.mem_ports = 3;
  c.scalar_eff = 0.55;
  c.stream_bw_gbs = 22.0;
  c.scalar_stream_derate = 0.85;
  VectorUnit v;
  v.isa = "AVX2";
  v.width_bits = 256;
  v.fp32 = true;
  v.fp64 = true;
  // The paper observed Rome to be "fairly lacklustre" at FP32 relative to
  // its FP64 showing; encoded as a lower sustained FP32 vector efficiency.
  v.efficiency_fp32 = 0.28;
  v.efficiency_fp64 = 0.45;
  c.vector = v;
  m.core = c;

  m.l1d = CacheSpec{32 * 1024, 64, 1, 64.0, 4.0};
  m.l2 = CacheSpec{512 * 1024, 64, 1, 32.0, 12.0};
  m.l3 = CacheSpec{16UL * 1024 * 1024, 64, 4, 32.0, 40.0};  // per-CCX 16 MB

  // 4 NUMA regions (NPS4) of 16 contiguous cores; 8 controllers total.
  for (int r = 0; r < 4; ++r) {
    m.numa.push_back(
        NumaRegion{id_range(16 * r, 16 * r + 15), 2, 2 * 23.0});
  }
  m.clusters = contiguous_clusters(64, 1);
  m.l2.shared_by = 1;

  m.mem_latency_ns = 95.0;
  m.remote_numa_penalty = 1.5;
  m.fork_join_us = 1.2;
  m.barrier_us_per_thread = 0.12;
  m.numa_span_sync_factor = 1.15;
  m.oversubscribe_gamma = 0.08;
  m.atomic_rtt_ns = 45.0;
  return m;
}

MachineDescriptor intel_broadwell() {
  MachineDescriptor m;
  m.name = "Intel Broadwell Xeon E5-2695";
  m.num_cores = 18;

  CoreSpec c;
  c.clock_ghz = 2.1;
  c.decode_width = 4;
  c.issue_width = 8;
  c.out_of_order = true;
  c.fp_pipes = 2;
  c.fma = true;
  c.mem_ports = 3;
  c.scalar_eff = 0.50;
  c.stream_bw_gbs = 12.0;
  c.scalar_stream_derate = 0.85;
  VectorUnit v;
  v.isa = "AVX2";
  v.width_bits = 256;
  v.fp32 = true;
  v.fp64 = true;
  v.efficiency_fp32 = 0.50;
  v.efficiency_fp64 = 0.50;
  c.vector = v;
  m.core = c;

  m.l1d = CacheSpec{32 * 1024, 64, 1, 64.0, 4.0};
  m.l2 = CacheSpec{256 * 1024, 64, 1, 32.0, 12.0};
  m.l3 = CacheSpec{45UL * 1024 * 1024, 64, 18, 120.0, 45.0};

  m.numa = {NumaRegion{id_range(0, 17), 4, 62.0}};
  m.clusters = contiguous_clusters(18, 1);
  m.l2.shared_by = 1;

  m.mem_latency_ns = 85.0;
  m.remote_numa_penalty = 1.0;
  m.fork_join_us = 1.0;
  m.barrier_us_per_thread = 0.10;
  m.oversubscribe_gamma = 0.10;
  m.atomic_rtt_ns = 35.0;
  return m;
}

MachineDescriptor intel_icelake() {
  MachineDescriptor m;
  m.name = "Intel Icelake Xeon 6330";
  m.num_cores = 28;

  CoreSpec c;
  c.clock_ghz = 2.0;
  c.decode_width = 5;
  c.issue_width = 10;
  c.out_of_order = true;
  c.fp_pipes = 2;
  c.fma = true;
  c.mem_ports = 4;
  c.scalar_eff = 0.50;
  c.stream_bw_gbs = 18.0;
  c.scalar_stream_derate = 0.85;
  VectorUnit v;
  v.isa = "AVX512";
  v.width_bits = 512;
  v.fp32 = true;
  v.fp64 = true;
  v.efficiency_fp32 = 0.30;
  v.efficiency_fp64 = 0.36;
  c.vector = v;
  m.core = c;

  m.l1d = CacheSpec{48 * 1024, 64, 1, 96.0, 5.0};
  m.l2 = CacheSpec{1280 * 1024, 64, 1, 48.0, 14.0};
  m.l3 = CacheSpec{43UL * 1024 * 1024, 64, 28, 160.0, 50.0};

  m.numa = {NumaRegion{id_range(0, 27), 8, 150.0}};
  m.clusters = contiguous_clusters(28, 1);
  m.l2.shared_by = 1;

  m.mem_latency_ns = 90.0;
  m.remote_numa_penalty = 1.0;
  m.fork_join_us = 1.0;
  m.barrier_us_per_thread = 0.10;
  m.oversubscribe_gamma = 0.08;
  m.atomic_rtt_ns = 35.0;
  return m;
}

MachineDescriptor intel_sandybridge() {
  MachineDescriptor m;
  m.name = "Intel Sandybridge Xeon E5-2609";
  m.num_cores = 4;

  CoreSpec c;
  c.clock_ghz = 2.4;
  c.decode_width = 4;
  c.issue_width = 6;
  c.out_of_order = true;
  c.fp_pipes = 2;
  c.fma = false;  // pre-FMA microarchitecture
  c.mem_ports = 2;
  c.scalar_eff = 0.45;
  c.stream_bw_gbs = 2.8;
  c.scalar_stream_derate = 0.90;
  VectorUnit v;
  // Physically AVX is 256-bit for FP; the paper states the E5-2609's
  // registers are the same width as the SG2042 (128-bit) and we follow
  // the paper (see DESIGN.md "Known deviations").
  v.isa = "AVX";
  v.width_bits = 128;
  v.fp32 = true;
  v.fp64 = true;
  v.efficiency_fp32 = 0.50;
  v.efficiency_fp64 = 0.50;
  c.vector = v;
  m.core = c;

  m.l1d = CacheSpec{64 * 1024, 64, 1, 48.0, 4.0};  // per the paper's text
  m.l2 = CacheSpec{256 * 1024, 64, 1, 32.0, 12.0};
  m.l3 = CacheSpec{10UL * 1024 * 1024, 64, 4, 40.0, 40.0};

  m.numa = {NumaRegion{id_range(0, 3), 4, 25.0}};
  m.clusters = contiguous_clusters(4, 1);
  m.l2.shared_by = 1;

  m.mem_latency_ns = 80.0;
  m.remote_numa_penalty = 1.0;
  m.fork_join_us = 0.8;
  m.barrier_us_per_thread = 0.10;
  m.oversubscribe_gamma = 0.12;
  m.atomic_rtt_ns = 30.0;
  return m;
}

MachineDescriptor allwinner_d1() {
  MachineDescriptor m;
  m.name = "AllWinner D1 (XuanTie C906)";
  m.num_cores = 1;

  CoreSpec c;
  c.clock_ghz = 1.0;
  c.decode_width = 2;  // C906: dual-issue in-order, 5-stage
  c.issue_width = 2;
  c.out_of_order = false;
  c.fp_pipes = 1;
  c.fma = true;
  c.mem_ports = 1;
  // Designed for energy efficiency, not performance [13]: scalar code
  // runs noticeably behind the U74.
  c.scalar_eff = 0.22;
  c.stream_bw_gbs = 1.0;
  c.scalar_stream_derate = 0.55;
  VectorUnit v;
  v.isa = "RVV v0.7.1";
  v.width_bits = 128;
  v.fp32 = true;
  v.fp64 = false;  // same generation as the C920's vector unit
  v.efficiency_fp32 = 0.35;
  v.efficiency_fp64 = 0.0;
  c.vector = v;
  m.core = c;

  m.l1d = CacheSpec{32 * 1024, 64, 1, 8.0, 3.0};
  m.l2 = CacheSpec{1024 * 1024, 64, 1, 4.0, 30.0};
  m.l3 = CacheSpec{};

  m.numa = {NumaRegion{{0}, 1, 1.6}};
  m.clusters = {{0}};
  m.l2.shared_by = 1;

  m.mem_latency_ns = 180.0;
  m.remote_numa_penalty = 1.0;
  m.fork_join_us = 4.0;
  m.barrier_us_per_thread = 2.0;
  m.oversubscribe_gamma = 0.4;
  m.atomic_rtt_ns = 70.0;
  return m;
}

std::vector<MachineDescriptor> all_machines() {
  return {sg2042(),        visionfive_v1(),    visionfive_v2(), amd_rome(),
          intel_broadwell(), intel_icelake(), intel_sandybridge()};
}

std::vector<MachineDescriptor> x86_machines() {
  return {amd_rome(), intel_broadwell(), intel_icelake(),
          intel_sandybridge()};
}

}  // namespace sgp::machine
