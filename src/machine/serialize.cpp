#include "machine/serialize.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <vector>

namespace sgp::machine {

namespace {

// Number formatting/parsing uses std::to_chars/std::from_chars
// throughout: they are locale-independent by definition, so a process
// running under a comma-decimal locale (de_DE, fr_FR, ...) round-trips
// descriptors identically to the "C" locale. snprintf("%.6g") and
// std::stod honour the global locale and silently corrupt the INI
// exchange format the moment anything calls setlocale().

std::string fmt(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(
      buf, buf + sizeof(buf), v, std::chars_format::general, 6);
  if (ec != std::errc()) {
    // Failing loudly here beats emitting a `key = ` line that only
    // breaks later, at parse time, with a misleading error.
    throw std::invalid_argument("to_ini: value is not representable");
  }
  return std::string(buf, end);
}

void emit_cache(std::ostringstream& out, const char* name,
                const CacheSpec& c) {
  out << "[" << name << "]\n";
  out << "size_kb = " << c.size_bytes / 1024 << "\n";
  out << "line_bytes = " << c.line_bytes << "\n";
  out << "shared_by = " << c.shared_by << "\n";
  out << "bw_bytes_per_cycle = " << fmt(c.bw_bytes_per_cycle) << "\n";
  out << "latency_cycles = " << fmt(c.latency_cycles) << "\n\n";
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

struct Parser {
  std::map<std::string, std::map<std::string, std::string>> sections;
  std::vector<std::string> numa_sections;  // in file order

  explicit Parser(std::string_view text) {
    std::string current;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t nl = text.find('\n', pos);
      std::string line = trim(text.substr(
          pos, nl == std::string_view::npos ? text.size() - pos : nl - pos));
      pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      if (line.front() == '[') {
        if (line.back() != ']') {
          throw std::invalid_argument("line " + std::to_string(line_no) +
                                      ": unterminated section header");
        }
        current = line.substr(1, line.size() - 2);
        if (sections.count(current) > 0) {
          // A repeated header used to merge silently into the first
          // occurrence (and push numa.N regions twice).
          throw std::invalid_argument("line " + std::to_string(line_no) +
                                      ": duplicate section [" + current +
                                      "]");
        }
        if (current.rfind("numa.", 0) == 0) {
          numa_sections.push_back(current);
        }
        sections[current];  // create
        continue;
      }
      const auto eq = line.find('=');
      if (eq == std::string::npos || current.empty()) {
        throw std::invalid_argument("line " + std::to_string(line_no) +
                                    ": expected 'key = value'");
      }
      std::string key = trim(line.substr(0, eq));
      auto& section = sections[current];
      if (section.count(key) > 0) {
        // Last-one-wins was a silent data-loss path.
        throw std::invalid_argument("line " + std::to_string(line_no) +
                                    ": duplicate key '" + key + "' in [" +
                                    current + "]");
      }
      section[std::move(key)] = trim(line.substr(eq + 1));
    }
  }

  bool has(const std::string& section) const {
    return sections.count(section) > 0;
  }

  bool has_key(const std::string& section, const std::string& key) const {
    const auto sit = sections.find(section);
    return sit != sections.end() && sit->second.count(key) > 0;
  }

  const std::string& get(const std::string& section,
                         const std::string& key) const {
    const auto sit = sections.find(section);
    if (sit == sections.end()) {
      throw std::invalid_argument("missing section [" + section + "]");
    }
    const auto kit = sit->second.find(key);
    if (kit == sit->second.end()) {
      throw std::invalid_argument("missing key '" + key + "' in [" +
                                  section + "]");
    }
    return kit->second;
  }

  double num(const std::string& section, const std::string& key) const {
    const auto& v = get(section, key);
    double d = 0.0;
    const auto [end, ec] =
        std::from_chars(v.data(), v.data() + v.size(), d);
    if (ec != std::errc() || end != v.data() + v.size()) {
      throw std::invalid_argument("bad number '" + v + "' for " + key +
                                  " in [" + section + "]");
    }
    return d;
  }

  /// Integer-valued key with range checking: a fuzzer can supply
  /// "1e300", which would be UB to cast to int, so reject it instead.
  int int_num(const std::string& section, const std::string& key) const {
    const double v = num(section, key);
    // The negated in-range comparison also rejects NaN (casting NaN or
    // an out-of-range double to int is UB).
    if (!(v >= -2147483648.0 && v <= 2147483647.0) ||
        v != static_cast<double>(static_cast<int>(v))) {
      throw std::invalid_argument("value of " + key + " in [" + section +
                                  "] is not a representable integer");
    }
    return static_cast<int>(v);
  }

  /// Non-negative size in KiB, bounded so the byte count fits size_t.
  std::size_t size_kb(const std::string& section,
                      const std::string& key) const {
    const double v = num(section, key);
    if (!(v >= 0.0 && v <= 1e12)) {
      throw std::invalid_argument("value of " + key + " in [" + section +
                                  "] is out of range");
    }
    return static_cast<std::size_t>(v);
  }

  double num_or(const std::string& section, const std::string& key,
                double fallback) const {
    const auto sit = sections.find(section);
    if (sit == sections.end() || sit->second.count(key) == 0) {
      return fallback;
    }
    return num(section, key);
  }

  bool flag(const std::string& section, const std::string& key,
            bool fallback) const {
    const auto sit = sections.find(section);
    if (sit == sections.end() || sit->second.count(key) == 0) {
      return fallback;
    }
    const auto& v = sit->second.at(key);
    if (v == "true" || v == "1" || v == "yes") return true;
    if (v == "false" || v == "0" || v == "no") return false;
    throw std::invalid_argument("bad boolean '" + v + "' for " + key);
  }
};

/// Parses a comma-separated core-id list (NUMA `cores`, explicit
/// `cluster.N` membership).
std::vector<int> parse_core_ids(const std::string& list,
                                const std::string& section,
                                const std::string& key) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string id = trim(item);
    int core_id = 0;
    const auto [end, ec] =
        std::from_chars(id.data(), id.data() + id.size(), core_id);
    if (ec != std::errc() || end != id.data() + id.size()) {
      throw std::invalid_argument("bad core id '" + id + "' for " + key +
                                  " in [" + section + "]");
    }
    out.push_back(core_id);
  }
  return out;
}

/// Parses one cache section. `shared_by_default` (when >= 1) makes the
/// shared_by key optional: an explicit key always wins, the default is
/// used only when the key is absent. A default of 0 keeps it required.
CacheSpec parse_cache(const Parser& p, const std::string& section,
                      int shared_by_default = 0) {
  CacheSpec c;
  c.size_bytes = p.size_kb(section, "size_kb") * 1024;
  c.line_bytes = p.int_num(section, "line_bytes");
  c.shared_by = shared_by_default >= 1 && !p.has_key(section, "shared_by")
                    ? shared_by_default
                    : p.int_num(section, "shared_by");
  c.bw_bytes_per_cycle = p.num(section, "bw_bytes_per_cycle");
  c.latency_cycles = p.num(section, "latency_cycles");
  return c;
}

}  // namespace

std::string to_ini(const MachineDescriptor& m) {
  std::ostringstream out;
  out << "# machine descriptor for sg2042-perf tools\n";
  out << "[machine]\n";
  out << "name = " << m.name << "\n";
  out << "num_cores = " << m.num_cores << "\n";
  // Uniform contiguous topologies keep the cluster_width shorthand;
  // anything else gets explicit per-cluster membership (emitting only
  // clusters.front().size() used to silently lose the topology).
  const int width =
      m.clusters.empty() ? 1 : static_cast<int>(m.clusters.front().size());
  if (m.clusters.empty() ||
      (width >= 1 && m.clusters == contiguous_clusters(m.num_cores, width))) {
    out << "cluster_width = " << width << "\n\n";
  } else {
    for (std::size_t i = 0; i < m.clusters.size(); ++i) {
      out << "cluster." << i << " = ";
      for (std::size_t j = 0; j < m.clusters[i].size(); ++j) {
        if (j) out << ",";
        out << m.clusters[i][j];
      }
      out << "\n";
    }
    out << "\n";
  }

  const auto& c = m.core;
  out << "[core]\n";
  out << "clock_ghz = " << fmt(c.clock_ghz) << "\n";
  out << "decode_width = " << c.decode_width << "\n";
  out << "issue_width = " << c.issue_width << "\n";
  out << "out_of_order = " << (c.out_of_order ? "true" : "false") << "\n";
  out << "fp_pipes = " << c.fp_pipes << "\n";
  out << "fma = " << (c.fma ? "true" : "false") << "\n";
  out << "mem_ports = " << c.mem_ports << "\n";
  out << "scalar_eff = " << fmt(c.scalar_eff) << "\n";
  out << "stream_bw_gbs = " << fmt(c.stream_bw_gbs) << "\n";
  out << "scalar_stream_derate = " << fmt(c.scalar_stream_derate) << "\n\n";

  if (c.vector) {
    out << "[vector]\n";
    out << "isa = " << c.vector->isa << "\n";
    out << "width_bits = " << c.vector->width_bits << "\n";
    out << "fp32 = " << (c.vector->fp32 ? "true" : "false") << "\n";
    out << "fp64 = " << (c.vector->fp64 ? "true" : "false") << "\n";
    out << "efficiency_fp32 = " << fmt(c.vector->efficiency_fp32) << "\n";
    out << "efficiency_fp64 = " << fmt(c.vector->efficiency_fp64) << "\n\n";
  }

  emit_cache(out, "l1d", m.l1d);
  emit_cache(out, "l2", m.l2);
  if (m.l3.present()) emit_cache(out, "l3", m.l3);

  for (std::size_t r = 0; r < m.numa.size(); ++r) {
    out << "[numa." << r << "]\n";
    out << "cores = ";
    for (std::size_t i = 0; i < m.numa[r].cores.size(); ++i) {
      if (i) out << ",";
      out << m.numa[r].cores[i];
    }
    out << "\n";
    out << "controllers = " << m.numa[r].controllers << "\n";
    out << "mem_bw_gbs = " << fmt(m.numa[r].mem_bw_gbs) << "\n\n";
  }

  out << "[sync]\n";
  out << "fork_join_us = " << fmt(m.fork_join_us) << "\n";
  out << "barrier_us_per_thread = " << fmt(m.barrier_us_per_thread) << "\n";
  out << "numa_span_sync_factor = " << fmt(m.numa_span_sync_factor)
      << "\n\n";

  out << "[memory]\n";
  out << "mem_latency_ns = " << fmt(m.mem_latency_ns) << "\n";
  out << "cluster_bw_gbs = " << fmt(m.cluster_bw_gbs) << "\n";
  out << "remote_numa_penalty = " << fmt(m.remote_numa_penalty) << "\n";
  out << "oversubscribe_gamma = " << fmt(m.oversubscribe_gamma) << "\n";
  out << "oversubscribe_knee = " << fmt(m.oversubscribe_knee) << "\n";
  out << "l3_memory_side = " << (m.l3_memory_side ? "true" : "false")
      << "\n";
  out << "memory_derating = " << fmt(m.memory_derating) << "\n";
  out << "atomic_rtt_ns = " << fmt(m.atomic_rtt_ns) << "\n";
  return out.str();
}

MachineDescriptor from_ini(std::string_view text) {
  const Parser p(text);
  MachineDescriptor m;
  m.name = p.get("machine", "name");
  m.num_cores = p.int_num("machine", "num_cores");

  // Cluster topology: either the uniform cluster_width shorthand or
  // explicit cluster.N membership lists, never both. Resolved before
  // the caches because the [l2] shared_by fallback is the cluster size.
  const auto& machine_sec = p.sections.at("machine");
  std::vector<std::string> cluster_keys;
  for (const auto& [key, value] : machine_sec) {
    if (key.rfind("cluster.", 0) == 0) cluster_keys.push_back(key);
  }
  int cluster_width = 1;
  if (!cluster_keys.empty()) {
    if (machine_sec.count("cluster_width") > 0) {
      throw std::invalid_argument(
          "[machine] mixes cluster_width with explicit cluster.N lists");
    }
    m.clusters.resize(cluster_keys.size());
    std::vector<char> seen(cluster_keys.size(), 0);
    for (const auto& key : cluster_keys) {
      const std::string idx_text = key.substr(8);
      int idx = -1;
      const auto [end, ec] = std::from_chars(
          idx_text.data(), idx_text.data() + idx_text.size(), idx);
      if (ec != std::errc() || end != idx_text.data() + idx_text.size() ||
          idx < 0 || idx >= static_cast<int>(cluster_keys.size()) ||
          seen[static_cast<std::size_t>(idx)]) {
        throw std::invalid_argument(
            "cluster.N indices in [machine] must be 0.." +
            std::to_string(cluster_keys.size() - 1) + " without gaps; got '" +
            key + "'");
      }
      seen[static_cast<std::size_t>(idx)] = 1;
      m.clusters[static_cast<std::size_t>(idx)] =
          parse_core_ids(p.get("machine", key), "machine", key);
    }
    cluster_width = static_cast<int>(m.clusters.front().size());
  } else {
    if (machine_sec.count("cluster_width") > 0) {
      cluster_width = p.int_num("machine", "cluster_width");
    }
    if (cluster_width < 1) {
      throw std::invalid_argument("cluster_width must be >= 1");
    }
    m.clusters = contiguous_clusters(m.num_cores, cluster_width);
  }

  CoreSpec c;
  c.clock_ghz = p.num("core", "clock_ghz");
  c.decode_width = p.int_num("core", "decode_width");
  c.issue_width = p.int_num("core", "issue_width");
  c.out_of_order = p.flag("core", "out_of_order", false);
  c.fp_pipes = p.int_num("core", "fp_pipes");
  c.fma = p.flag("core", "fma", true);
  c.mem_ports = p.int_num("core", "mem_ports");
  c.scalar_eff = p.num("core", "scalar_eff");
  c.stream_bw_gbs = p.num("core", "stream_bw_gbs");
  c.scalar_stream_derate =
      p.num_or("core", "scalar_stream_derate", 1.0);
  if (p.has("vector")) {
    VectorUnit v;
    v.isa = p.get("vector", "isa");
    v.width_bits = p.int_num("vector", "width_bits");
    v.fp32 = p.flag("vector", "fp32", true);
    v.fp64 = p.flag("vector", "fp64", true);
    v.efficiency_fp32 = p.num("vector", "efficiency_fp32");
    v.efficiency_fp64 = p.num("vector", "efficiency_fp64");
    c.vector = v;
  }
  m.core = c;

  m.l1d = parse_cache(p, "l1d");
  // An explicit [l2] shared_by is authoritative; cluster_width is only
  // the fallback for descriptors that omit the key. (This used to be
  // unconditionally overwritten below the cluster construction, which
  // silently discarded any shared_by != cluster_width.)
  m.l2 = parse_cache(p, "l2", cluster_width);
  if (p.has("l3")) m.l3 = parse_cache(p, "l3");

  for (const auto& section : p.numa_sections) {
    NumaRegion r;
    r.cores = parse_core_ids(p.get(section, "cores"), section, "cores");
    r.controllers = p.int_num(section, "controllers");
    r.mem_bw_gbs = p.num(section, "mem_bw_gbs");
    m.numa.push_back(std::move(r));
  }

  m.fork_join_us = p.num_or("sync", "fork_join_us", 2.0);
  m.barrier_us_per_thread =
      p.num_or("sync", "barrier_us_per_thread", 0.1);
  m.numa_span_sync_factor =
      p.num_or("sync", "numa_span_sync_factor", 1.25);

  m.mem_latency_ns = p.num_or("memory", "mem_latency_ns", 100.0);
  m.cluster_bw_gbs = p.num_or("memory", "cluster_bw_gbs", 0.0);
  m.remote_numa_penalty =
      p.num_or("memory", "remote_numa_penalty", 1.5);
  m.oversubscribe_gamma =
      p.num_or("memory", "oversubscribe_gamma", 0.2);
  m.oversubscribe_knee = p.num_or("memory", "oversubscribe_knee", 0.0);
  m.l3_memory_side = p.flag("memory", "l3_memory_side", false);
  m.memory_derating = p.num_or("memory", "memory_derating", 1.0);
  m.atomic_rtt_ns = p.num_or("memory", "atomic_rtt_ns", 40.0);

  m.validate();
  return m;
}

}  // namespace sgp::machine
