#include "machine/placement.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace sgp::machine {

namespace {

/// Region core list reordered so that consecutive picks land on distinct
/// L2 clusters (and on distinct contiguous id blocks first, matching the
/// paper's example: region 0 of the SG2042 yields 0, 16, 4, 20, 1, 17,
/// 5, 21, ...).
std::vector<int> cluster_cyclic_order(const MachineDescriptor& m,
                                      const std::vector<int>& region_cores) {
  // Identify contiguous id blocks within the region (the SG2042 regions
  // consist of two non-adjacent blocks of eight).
  struct Key {
    int idx_in_cluster;
    int block;
    int cluster_pos;  // position of the cluster inside its block
    int core;
  };
  std::vector<Key> keys;
  keys.reserve(region_cores.size());

  // Block index: increases whenever ids stop being consecutive.
  std::map<int, int> block_of;  // core -> block idx
  int block = 0;
  for (std::size_t i = 0; i < region_cores.size(); ++i) {
    if (i > 0 && region_cores[i] != region_cores[i - 1] + 1) ++block;
    block_of[region_cores[i]] = block;
  }

  // Position of each cluster inside its block, in first-core order.
  std::map<int, int> cluster_pos;  // cluster idx -> position
  {
    std::map<int, int> next_pos;  // block -> counter
    for (int c : region_cores) {
      const int cl = m.cluster_of_core(c);
      if (cluster_pos.find(cl) == cluster_pos.end()) {
        cluster_pos[cl] = next_pos[block_of[c]]++;
      }
    }
  }

  for (int c : region_cores) {
    const int cl = m.cluster_of_core(c);
    const auto& members = m.clusters[static_cast<std::size_t>(cl)];
    const int idx = static_cast<int>(
        std::find(members.begin(), members.end(), c) - members.begin());
    keys.push_back(Key{idx, block_of[c], cluster_pos[cl], c});
  }
  std::stable_sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.idx_in_cluster != b.idx_in_cluster)
      return a.idx_in_cluster < b.idx_in_cluster;
    if (a.cluster_pos != b.cluster_pos) return a.cluster_pos < b.cluster_pos;
    return a.block < b.block;
  });
  std::vector<int> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(k.core);
  return out;
}

/// Round-robin over per-region orderings: pick position j from every
/// region in turn.
std::vector<int> round_robin(const std::vector<std::vector<int>>& per_region,
                             int nthreads) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(nthreads));
  std::size_t j = 0;
  while (static_cast<int>(out.size()) < nthreads) {
    bool any = false;
    for (const auto& region : per_region) {
      if (j < region.size()) {
        any = true;
        out.push_back(region[j]);
        if (static_cast<int>(out.size()) == nthreads) return out;
      }
    }
    if (!any) break;  // all regions exhausted (cannot happen if validated)
    ++j;
  }
  return out;
}

}  // namespace

std::vector<int> assign_cores(const MachineDescriptor& m, Placement p,
                              int nthreads) {
  if (nthreads < 1 || nthreads > m.num_cores) {
    throw std::invalid_argument("assign_cores: nthreads out of range for " +
                                m.name);
  }
  switch (p) {
    case Placement::Block: {
      std::vector<int> out(static_cast<std::size_t>(nthreads));
      for (int i = 0; i < nthreads; ++i) out[static_cast<std::size_t>(i)] = i;
      return out;
    }
    case Placement::CyclicNuma: {
      std::vector<std::vector<int>> per_region;
      per_region.reserve(m.numa.size());
      for (const auto& r : m.numa) per_region.push_back(r.cores);
      return round_robin(per_region, nthreads);
    }
    case Placement::ClusterCyclic: {
      std::vector<std::vector<int>> per_region;
      per_region.reserve(m.numa.size());
      for (const auto& r : m.numa) {
        per_region.push_back(cluster_cyclic_order(m, r.cores));
      }
      return round_robin(per_region, nthreads);
    }
  }
  throw std::invalid_argument("assign_cores: unknown placement");
}

PlacementStats analyze(const MachineDescriptor& m,
                       const std::vector<int>& cores) {
  PlacementStats st;
  st.threads_per_numa.assign(m.numa.size(), 0);
  st.threads_per_cluster.assign(m.clusters.size(), 0);
  for (int c : cores) {
    const int r = m.numa_of_core(c);
    const int cl = m.cluster_of_core(c);
    if (r < 0 || cl < 0) {
      throw std::invalid_argument("analyze: core " + std::to_string(c) +
                                  " unknown on " + m.name);
    }
    ++st.threads_per_numa[static_cast<std::size_t>(r)];
    ++st.threads_per_cluster[static_cast<std::size_t>(cl)];
  }
  for (int n : st.threads_per_numa) {
    if (n > 0) ++st.regions_spanned;
    st.max_per_numa = std::max(st.max_per_numa, n);
  }
  for (int n : st.threads_per_cluster) {
    st.max_per_cluster = std::max(st.max_per_cluster, n);
  }
  return st;
}

}  // namespace sgp::machine
