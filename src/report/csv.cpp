#include "report/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace sgp::report {

namespace {

std::string escape(const std::string& cell) {
  // RFC 4180: quote on comma, quote, LF *and* CR — a bare \r inside an
  // unquoted field desynchronises strict readers.
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("CsvWriter: needs at least one column");
  }
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvWriter::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::text() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvWriter: cannot open " + path);
  f << text();
  if (!f) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace sgp::report
