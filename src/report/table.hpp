// Minimal fixed-width ASCII table renderer for the bench binaries.
#pragma once

#include <string>
#include <vector>

namespace sgp::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Fixed-precision double formatting helper ("%.2f"-style).
  static std::string num(double v, int decimals = 2);

  /// Like num(), but renders `fallback` when the value is non-finite or
  /// `ok` is false — so failed suite rows show "-" instead of garbage.
  static std::string num_or(double v, int decimals, bool ok,
                            const std::string& fallback = "-");

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgp::report
