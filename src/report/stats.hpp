// Aggregation helpers for the paper's bars (class averages) and whiskers
// (min/max ranges).
#pragma once

#include <span>

namespace sgp::report {

struct Summary {
  double mean = 0.0;
  /// Geometric mean of the strictly-positive values (0.0 if none are).
  double geomean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
  /// Values excluded from the geomean because they were <= 0 — e.g. the
  /// zeroed ratio of a quarantined kernel. 0 == every value took part.
  std::size_t geomean_excluded = 0;
};

/// Arithmetic + geometric mean and min/max of a non-empty series.
/// Throws std::invalid_argument on empty input. Non-positive values are
/// skipped for the geomean only and counted in `geomean_excluded`, so a
/// single quarantined kernel cannot kill whole-suite aggregation.
Summary summarize(std::span<const double> values);

double arithmetic_mean(std::span<const double> values);
/// Strict: throws std::invalid_argument naming the offending index when
/// any value is non-positive (summarize applies the skip policy instead).
double geometric_mean(std::span<const double> values);

}  // namespace sgp::report
