// Aggregation helpers for the paper's bars (class averages) and whiskers
// (min/max ranges).
#pragma once

#include <span>

namespace sgp::report {

struct Summary {
  double mean = 0.0;
  double geomean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Arithmetic + geometric mean and min/max of a non-empty series.
/// Throws std::invalid_argument on empty input or, for the geomean, on
/// non-positive values.
Summary summarize(std::span<const double> values);

double arithmetic_mean(std::span<const double> values);
double geometric_mean(std::span<const double> values);

}  // namespace sgp::report
