#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sgp::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: needs at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::num_or(double v, int decimals, bool ok,
                          const std::string& fallback) {
  if (!ok || !std::isfinite(v)) return fallback;
  return num(v, decimals);
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += c == 0 ? "| " : " | ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    out += " |\n";
  };
  std::string out;
  emit_row(headers_, out);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace sgp::report
