#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace sgp::report {

double arithmetic_mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("arithmetic_mean: empty input");
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("geometric_mean: empty input");
  }
  double logsum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (v <= 0.0) {
      throw std::invalid_argument(
          "geometric_mean: non-positive value at index " + std::to_string(i));
    }
    logsum += std::log(v);
  }
  return std::exp(logsum / static_cast<double>(values.size()));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.mean = arithmetic_mean(values);
  // Skip-with-count policy for the geomean: a quarantined kernel reports
  // a zero ratio, which must not abort aggregation of the whole suite.
  std::vector<double> positive;
  positive.reserve(values.size());
  for (double v : values) {
    if (v > 0.0) positive.push_back(v);
  }
  s.geomean = positive.empty() ? 0.0 : geometric_mean(positive);
  s.geomean_excluded = values.size() - positive.size();
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.count = values.size();
  return s;
}

}  // namespace sgp::report
