#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgp::report {

double arithmetic_mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("arithmetic_mean: empty input");
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("geometric_mean: empty input");
  }
  double logsum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geometric_mean: non-positive value");
    }
    logsum += std::log(v);
  }
  return std::exp(logsum / static_cast<double>(values.size()));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.mean = arithmetic_mean(values);
  s.geomean = geometric_mean(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.count = values.size();
  return s;
}

}  // namespace sgp::report
