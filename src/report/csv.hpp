// CSV emission for bench binaries (--csv <dir> writes one file per
// artifact so results can be plotted externally).
#pragma once

#include <string>
#include <vector>

namespace sgp::report {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// RFC-4180-style text (quotes cells containing commas/quotes).
  std::string text() const;

  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgp::report
