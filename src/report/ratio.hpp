// The paper's "times faster / times slower" axis encoding, plus speedup
// and parallel-efficiency definitions.
#pragma once

#include <stdexcept>

namespace sgp::report {

/// The paper's figure encoding: 0 = same performance, +1 = twice as
/// fast, -1 = twice as slow. For a time-ratio expressed as
/// `ratio = t_baseline / t_subject` (>1 means the subject is faster):
///   encode(2.0) = +1,  encode(1.0) = 0,  encode(0.5) = -1.
inline double encode_ratio(double ratio) {
  if (ratio <= 0.0) throw std::invalid_argument("encode_ratio: ratio <= 0");
  return ratio >= 1.0 ? ratio - 1.0 : -(1.0 / ratio - 1.0);
}

/// Inverse of encode_ratio.
inline double decode_ratio(double encoded) {
  return encoded >= 0.0 ? encoded + 1.0 : 1.0 / (1.0 - encoded);
}

/// Speed up: execution time on one thread over execution on n threads.
inline double speedup(double t1, double tn) {
  if (t1 <= 0.0 || tn <= 0.0) throw std::invalid_argument("speedup: t <= 0");
  return t1 / tn;
}

/// Parallel efficiency: speedup over thread count (1 = optimal).
inline double parallel_efficiency(double speedup_value, int nthreads) {
  if (nthreads < 1) {
    throw std::invalid_argument("parallel_efficiency: nthreads < 1");
  }
  return speedup_value / nthreads;
}

}  // namespace sgp::report
