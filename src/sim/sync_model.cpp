#include "sim/sync_model.hpp"

#include <cmath>

namespace sgp::sim {

double SyncModel::seconds_per_rep(const core::KernelSignature& sig,
                                  const machine::PlacementStats& stats,
                                  int nthreads) const {
  if (nthreads <= 1) return 0.0;
  const double per_region_us =
      m_.fork_join_us + m_.barrier_us_per_thread * nthreads;
  const double span_factor =
      std::pow(m_.numa_span_sync_factor,
               std::max(0, stats.regions_spanned - 1));
  return sig.parallel_regions_per_rep * per_region_us * span_factor * 1e-6;
}

}  // namespace sgp::sim
