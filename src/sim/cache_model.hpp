// Decides which level of the hierarchy serves a kernel's working set and
// at what per-thread bandwidth.
#pragma once

#include <string_view>

#include "machine/descriptor.hpp"
#include "machine/placement.hpp"

namespace sgp::sim {

enum class MemLevel { L1, L2, L3, DRAM };

constexpr std::string_view to_string(MemLevel l) noexcept {
  switch (l) {
    case MemLevel::L1:   return "L1";
    case MemLevel::L2:   return "L2";
    case MemLevel::L3:   return "L3";
    case MemLevel::DRAM: return "DRAM";
  }
  return "?";
}

class CacheModel {
 public:
  explicit CacheModel(const machine::MachineDescriptor& m) : m_(m) {}

  /// Smallest level whose (shared-aware) capacity holds the working set.
  /// `ws_total_bytes` is the whole kernel's footprint; threads partition
  /// it. Clusters must hold the slices of all their active threads.
  MemLevel serving_level(double ws_total_bytes,
                         const machine::PlacementStats& stats,
                         int nthreads) const;

  /// Per-thread sustained bandwidth out of a cache level, GB/s.
  /// DRAM is the MemoryModel's job and is rejected here.
  double per_thread_bw_gbs(MemLevel level,
                           const machine::PlacementStats& stats,
                           int nthreads) const;

 private:
  const machine::MachineDescriptor& m_;
};

}  // namespace sgp::sim
