#include "sim/core_model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/pattern.hpp"

namespace sgp::sim {

namespace {
// Reciprocal throughputs of slow ops (cycles per op, one pipe).
constexpr double kDivCycles = 14.0;
constexpr double kSpecialCycles = 20.0;
}  // namespace

CoreCost CoreModel::cycles_per_iteration(const core::KernelSignature& sig,
                                         const compiler::CodegenPlan& plan,
                                         core::Precision prec) const {
  const auto& c = m_.core;
  const auto& mix = sig.mix;

  const double fast_flop_instrs =
      mix.fadd + mix.fmul + mix.ffma + mix.fcmp;  // instruction counts
  const double fast_flops = mix.fadd + mix.fmul + 2.0 * mix.ffma + mix.fcmp;
  const double mem = mix.mem_accesses();

  CoreCost out;
  out.vector_path = plan.vector_path;

  double fp_cycles = 0.0;
  double mem_cycles = 0.0;
  double front_cycles = 0.0;
  double int_cycles = 0.0;

  const double int_throughput =
      std::max(1.0, c.issue_width * c.scalar_eff);  // int ops / cycle

  if (!plan.vector_path) {
    const double scalar_fpc = c.scalar_flops_per_cycle();
    fp_cycles = fast_flops / std::max(1e-9, scalar_fpc);
    fp_cycles += mix.fdiv * (kDivCycles / c.fp_pipes);
    fp_cycles += mix.fspecial * (kSpecialCycles / c.fp_pipes);
    const double port_eff = c.out_of_order ? 1.0 : 0.7;
    mem_cycles = mem / (c.mem_ports * port_eff);
    int_cycles = mix.iops / int_throughput;
    const double instrs = fast_flop_instrs + mix.fdiv + mix.fspecial +
                          mix.iops + mem + mix.branches + 2.0;  // +loop ovh
    front_cycles = instrs / c.decode_width;
  } else {
    const int elem_bits = sig.integer_dominated
                              ? 64
                              : (prec == core::Precision::FP32 ? 32 : 64);
    const double lanes = plan.lanes;
    const double eff_lanes = std::max(1.0, lanes * plan.efficiency);

    if (sig.integer_dominated) {
      // Integer lanes run at the unit's generic efficiency.
      int_cycles = mix.iops / (int_throughput * eff_lanes / 2.0);
      fp_cycles = 0.0;
    } else {
      // plan.efficiency carries compiler/pattern quality; the machine's
      // sustained lane efficiency is already inside vec_fpc.
      const double vec_fpc = c.vector_flops_per_cycle(elem_bits);
      fp_cycles =
          fast_flops / std::max(1e-9, vec_fpc * plan.efficiency);
      fp_cycles += (mix.fdiv * kDivCycles + mix.fspecial * kSpecialCycles) /
                   (c.fp_pipes * std::sqrt(lanes));  // div pipes narrow
      int_cycles = mix.iops / (int_throughput * eff_lanes / 2.0);
    }

    // Gathers lose the lane advantage on the memory side.
    const double mem_lanes =
        sig.pattern == core::AccessPattern::Gather ? 1.0 : lanes;
    mem_cycles = mem / mem_lanes / c.mem_ports;

    const double vec_instrs =
        (fast_flop_instrs + mix.fdiv + mix.fspecial) / 1.0 + mem / mem_lanes;
    const double scalar_ovh = plan.overhead_instrs_per_strip / lanes;
    front_cycles = (vec_instrs + mix.iops + mix.branches + scalar_ovh) /
                   c.decode_width;
  }

  double cycles = std::max({fp_cycles, mem_cycles, front_cycles, int_cycles});
  cycles *= pattern_ilp_derating(sig.pattern, c.out_of_order);
  cycles *= plan.scalar_penalty;
  out.cycles_per_iter = cycles;
  return out;
}

}  // namespace sgp::sim
