// Fork/join and barrier cost of OpenMP-style parallel regions.
#pragma once

#include "core/signature.hpp"
#include "machine/descriptor.hpp"
#include "machine/placement.hpp"

namespace sgp::sim {

class SyncModel {
 public:
  explicit SyncModel(const machine::MachineDescriptor& m) : m_(m) {}

  /// Seconds of synchronisation overhead in one rep of the kernel
  /// (parallel_regions_per_rep fork/joins). Zero for a serial run. Cost
  /// grows with thread count and with the number of NUMA regions the
  /// team spans — cross-mesh barriers are expensive on the SG2042.
  double seconds_per_rep(const core::KernelSignature& sig,
                         const machine::PlacementStats& stats,
                         int nthreads) const;

 private:
  const machine::MachineDescriptor& m_;
};

}  // namespace sgp::sim
