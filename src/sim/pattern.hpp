// Pattern-dependent deratings used by the cost models.
#pragma once

#include "core/types.hpp"

namespace sgp::sim {

/// Fraction of streamed bandwidth a pattern actually utilises (cache-line
/// utilisation; 1.0 = perfect unit-stride streaming).
double pattern_bandwidth_efficiency(core::AccessPattern p) noexcept;

/// Multiplier (>= 1) on per-iteration compute cycles capturing exposed
/// dependency chains and branchiness. Out-of-order cores hide more.
double pattern_ilp_derating(core::AccessPattern p, bool out_of_order) noexcept;

}  // namespace sgp::sim
