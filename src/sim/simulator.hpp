// Facade: estimates the wall time of a full kernel run (all reps) on a
// machine descriptor under a SimConfig.
//
// Two entry points share one pricing kernel, so their outputs are
// bit-identical:
//  * run()        — one (signature, config) point; builds a throwaway
//                   EvalContext internally.
//  * run_batch()  — a whole grid slice against a caller-held
//                   EvalContext (see sim/eval_context.hpp): codegen
//                   plans, core costs and pattern/byte constants are
//                   resolved once per (machine, signature) and the
//                   inner loops run over SoA scratch columns with zero
//                   per-point allocation.
// Placement-occupancy statistics (machine::analyze over every
// (placement, nthreads) pair) are precomputed at construction, so
// neither path walks the topology per point.
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/model.hpp"
#include "core/signature.hpp"
#include "machine/descriptor.hpp"
#include "sim/cache_model.hpp"
#include "sim/config.hpp"
#include "sim/core_model.hpp"
#include "sim/memory_model.hpp"
#include "sim/sync_model.hpp"

namespace sgp::sim {

class EvalContext;

/// Where the time went, over the whole run (reps included). Plain data
/// with no heap state: the code-path note is an enum plus the fields
/// its text interpolates; serialization paths call note_string().
struct TimeBreakdown {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double sync_s = 0.0;
  double atomic_s = 0.0;
  double total_s = 0.0;
  MemLevel serving = MemLevel::DRAM;
  bool vector_path = false;
  compiler::NoteKind note = compiler::NoteKind::VectorisationDisabled;
  core::CompilerId note_compiler = core::CompilerId::Gcc;
  core::VectorMode note_mode = core::VectorMode::Scalar;
  bool note_rollback = false;

  /// Renders the note byte-identically to the historical string field.
  /// `machine_name` is interpolated only for NoteKind::NoVectorUnit.
  std::string note_string(std::string_view machine_name) const {
    return compiler::note_text(note, note_compiler, note_mode,
                               note_rollback, machine_name);
  }
};

class Simulator {
 public:
  /// Takes ownership of the descriptor; validates it, then precomputes
  /// the placement-occupancy tables for every (placement, nthreads).
  explicit Simulator(machine::MachineDescriptor m);

  const machine::MachineDescriptor& machine() const noexcept { return m_; }

  /// Full breakdown for one kernel under one configuration.
  TimeBreakdown run(const core::KernelSignature& sig,
                    const SimConfig& cfg) const;

  /// Prices a grid slice: out[i] = run(ctx.signature(), cfgs[i]), bit
  /// for bit, with the per-point derivations amortized through `ctx`
  /// (which must have been built against this simulator). Throws
  /// std::invalid_argument on a foreign context, mismatched span
  /// lengths, or any invalid config; the exception contract is
  /// per-point (points before the offending one are already written).
  void run_batch(EvalContext& ctx, std::span<const SimConfig> cfgs,
                 std::span<TimeBreakdown> out) const;

  /// Shorthand for run(...).total_s.
  double seconds(const core::KernelSignature& sig,
                 const SimConfig& cfg) const {
    return run(sig, cfg).total_s;
  }

  /// Precomputed machine::analyze(assign_cores(...)) result; nthreads
  /// must be in [1, num_cores].
  const machine::PlacementStats& placement_stats(machine::Placement p,
                                                 int nthreads) const {
    return placement_stats_[static_cast<std::size_t>(p)]
                           [static_cast<std::size_t>(nthreads - 1)];
  }

 private:
  friend class EvalContext;

  /// The shared pricing kernel behind run() and run_batch().
  void price(EvalContext& ctx, std::span<const SimConfig> cfgs,
             std::span<TimeBreakdown> out) const;

  machine::MachineDescriptor m_;
  CacheModel cache_;
  MemoryModel memory_;
  CoreModel core_;
  SyncModel sync_;
  /// [placement][nthreads - 1], filled in the constructor.
  std::array<std::vector<machine::PlacementStats>, 3> placement_stats_;
};

}  // namespace sgp::sim
