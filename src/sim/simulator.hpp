// Facade: estimates the wall time of a full kernel run (all reps) on a
// machine descriptor under a SimConfig.
#pragma once

#include <string>

#include "compiler/model.hpp"
#include "core/signature.hpp"
#include "machine/descriptor.hpp"
#include "sim/cache_model.hpp"
#include "sim/config.hpp"
#include "sim/core_model.hpp"
#include "sim/memory_model.hpp"
#include "sim/sync_model.hpp"

namespace sgp::sim {

/// Where the time went, over the whole run (reps included).
struct TimeBreakdown {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double sync_s = 0.0;
  double atomic_s = 0.0;
  double total_s = 0.0;
  MemLevel serving = MemLevel::DRAM;
  bool vector_path = false;
  std::string note;
};

class Simulator {
 public:
  /// Takes ownership of the descriptor; validates it.
  explicit Simulator(machine::MachineDescriptor m);

  const machine::MachineDescriptor& machine() const noexcept { return m_; }

  /// Full breakdown for one kernel under one configuration.
  TimeBreakdown run(const core::KernelSignature& sig,
                    const SimConfig& cfg) const;

  /// Shorthand for run(...).total_s.
  double seconds(const core::KernelSignature& sig,
                 const SimConfig& cfg) const {
    return run(sig, cfg).total_s;
  }

 private:
  machine::MachineDescriptor m_;
  CacheModel cache_;
  MemoryModel memory_;
  CoreModel core_;
  SyncModel sync_;
};

}  // namespace sgp::sim
