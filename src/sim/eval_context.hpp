// Per-(machine, kernel signature) evaluation context for batched grid
// pricing. Everything Simulator::run used to re-derive per point that
// does not depend on the SimConfig is resolved here once — signature
// validation, pattern bandwidth efficiency, per-precision working-set
// and streamed-byte volumes — and the twelve possible
// (precision, compiler, vector mode) codegen plans plus per-iteration
// core costs are memoized on first use. Simulator::run_batch prices a
// whole grid slice against one context with zero per-point allocation;
// the scratch vectors below are the SoA mirrors of the per-point model
// terms, reused across batches.
//
// A context borrows the simulator and the signature; both must outlive
// it. It is NOT thread-safe: lazy combo resolution and the scratch
// arrays mutate on use, so give each worker thread its own context
// (they are cheap to build — validation plus a ~1 KB zeroed table).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "compiler/model.hpp"
#include "core/signature.hpp"
#include "core/types.hpp"
#include "machine/placement.hpp"
#include "sim/core_model.hpp"

namespace sgp::sim {

class Simulator;

class EvalContext {
 public:
  /// Validates the signature (same exceptions and messages as
  /// Simulator::run) and resolves the config-independent constants.
  EvalContext(const Simulator& sim, const core::KernelSignature& sig);

  const core::KernelSignature& signature() const noexcept { return *sig_; }
  const Simulator& simulator() const noexcept { return *sim_; }

 private:
  friend class Simulator;

  /// One resolved (precision, compiler, vector mode) combination: the
  /// codegen plan and the per-iteration core cost. Computed on first
  /// use; a grid slice that sweeps threads/placement hits the same slot
  /// for every point.
  struct Combo {
    bool ready = false;
    compiler::CodegenPlan plan;
    CoreCost cost;
  };

  static constexpr std::size_t kPrecisions = 2;  ///< core::all_precisions
  static constexpr std::size_t kCompilers = 2;   ///< Gcc, Clang
  static constexpr std::size_t kModes = 3;       ///< Scalar, VLS, VLA

  Combo& combo(core::Precision prec, core::CompilerId comp,
               core::VectorMode mode);

  const Simulator* sim_;
  const core::KernelSignature* sig_;
  /// pattern_bandwidth_efficiency(sig.pattern), hoisted.
  double pattern_bw_eff_ = 1.0;
  /// Signature byte volumes per precision (indexed by Precision).
  std::array<double, kPrecisions> ws_bytes_{};
  std::array<double, kPrecisions> streamed_bytes_per_iter_{};
  std::array<Combo, kPrecisions * kCompilers * kModes> combos_{};

  // Per-batch scratch (resized once per batch, reused across batches):
  // SoA columns of the per-point model terms plus the resolved combo
  // and placement-table rows each point uses.
  std::vector<double> iters_crit_;
  std::vector<double> compute_per_rep_;
  std::vector<double> memory_per_rep_;
  std::vector<double> sync_per_rep_;
  std::vector<double> atomic_per_rep_;
  std::vector<const Combo*> point_combo_;
  std::vector<const machine::PlacementStats*> point_stats_;
};

}  // namespace sgp::sim
