// Roofline analysis on top of the kernel signatures and machine
// descriptors: arithmetic intensity, the machine's compute/bandwidth
// ceilings, and each kernel's predicted position (memory- vs
// compute-bound and the attainable fraction of peak).
#pragma once

#include <string>
#include <vector>

#include "core/signature.hpp"
#include "machine/descriptor.hpp"
#include "sim/config.hpp"

namespace sgp::sim {

struct RooflinePoint {
  std::string kernel;
  core::Group group = core::Group::Basic;
  /// FLOP per byte of streamed traffic (arithmetic intensity).
  double intensity = 0.0;
  /// Attainable GFLOP/s at this intensity on this machine (single core).
  double attainable_gflops = 0.0;
  /// The machine's compute ceiling for this kernel's code path.
  double compute_ceiling_gflops = 0.0;
  /// True when the kernel sits under the bandwidth slope.
  bool memory_bound = false;
};

struct RooflineModel {
  std::string machine;
  double peak_scalar_gflops = 0.0;
  double peak_vector_gflops_fp32 = 0.0;
  double peak_vector_gflops_fp64 = 0.0;
  double stream_bw_gbs = 0.0;  ///< single-core sustained bandwidth
  /// Intensity where the vector FP32 roof meets the bandwidth slope.
  double ridge_intensity_fp32 = 0.0;
  /// Same for FP64. Machines without an FP64 vector path (the SG2042's
  /// XuanTie C920 runs RVV 0.7.1 FP32-only) ridge at the scalar peak,
  /// far to the left of the FP32 ridge.
  double ridge_intensity_fp64 = 0.0;
};

/// Single-core roofline of a machine.
RooflineModel roofline_for(const machine::MachineDescriptor& m);

/// Positions every kernel on the machine's single-core roofline under a
/// configuration (precision + compiler decide the ceiling that applies).
std::vector<RooflinePoint> roofline_points(
    const machine::MachineDescriptor& m, const SimConfig& cfg,
    const std::vector<core::KernelSignature>& sigs);

}  // namespace sgp::sim
