#include "sim/eval_context.hpp"

#include <stdexcept>

#include "sim/pattern.hpp"
#include "sim/simulator.hpp"

namespace sgp::sim {

EvalContext::EvalContext(const Simulator& sim,
                         const core::KernelSignature& sig)
    : sim_(&sim), sig_(&sig) {
  // Same validation (and exception text) as the scalar entry point, so
  // a malformed signature fails identically through either path.
  if (sig.iters_per_rep <= 0.0 || sig.reps <= 0.0 ||
      sig.working_set_elems <= 0.0) {
    throw std::invalid_argument("Simulator::run: malformed signature for " +
                                sig.name);
  }
  if (sig.seq_fraction < 0.0 || sig.seq_fraction > 1.0) {
    throw std::invalid_argument("Simulator::run: bad seq_fraction for " +
                                sig.name);
  }
  pattern_bw_eff_ = pattern_bandwidth_efficiency(sig.pattern);
  for (const auto prec : core::all_precisions) {
    const auto i = static_cast<std::size_t>(prec);
    ws_bytes_[i] = sig.working_set_bytes(prec);
    streamed_bytes_per_iter_[i] = sig.streamed_bytes_per_iter(prec);
  }
}

EvalContext::Combo& EvalContext::combo(core::Precision prec,
                                       core::CompilerId comp,
                                       core::VectorMode mode) {
  const std::size_t index =
      (static_cast<std::size_t>(prec) * kCompilers +
       static_cast<std::size_t>(comp)) *
          kModes +
      static_cast<std::size_t>(mode);
  Combo& c = combos_[index];
  if (!c.ready) {
    c.plan = compiler::plan(*sig_, prec, comp, mode, sim_->m_);
    c.cost = sim_->core_.cycles_per_iteration(*sig_, c.plan, prec);
    c.ready = true;
  }
  return c;
}

}  // namespace sgp::sim
