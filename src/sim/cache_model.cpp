#include "sim/cache_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace sgp::sim {

namespace {
// Effective usable fraction of a cache's nominal capacity (conflict
// misses, metadata, other-process residue).
constexpr double kUsableFraction = 0.75;
}  // namespace

MemLevel CacheModel::serving_level(double ws_total_bytes,
                                   const machine::PlacementStats& stats,
                                   int nthreads) const {
  if (nthreads < 1) throw std::invalid_argument("serving_level: nthreads");
  const double ws_per_thread = ws_total_bytes / nthreads;

  if (ws_per_thread <=
      kUsableFraction * static_cast<double>(m_.l1d.size_bytes)) {
    return MemLevel::L1;
  }

  // Every active L2 instance must hold the slices of its active threads.
  const int per_cluster = std::max(1, stats.max_per_cluster);
  if (ws_per_thread * per_cluster <=
      kUsableFraction * static_cast<double>(m_.l2.size_bytes)) {
    return MemLevel::L2;
  }

  if (m_.l3.present()) {
    const int instances =
        std::max(1, m_.num_cores / std::max(1, m_.l3.shared_by));
    const int active_instances = std::min(instances, nthreads);
    const double capacity = kUsableFraction *
                            static_cast<double>(m_.l3.size_bytes) *
                            active_instances;
    if (ws_total_bytes <= capacity) return MemLevel::L3;
  }
  return MemLevel::DRAM;
}

double CacheModel::per_thread_bw_gbs(MemLevel level,
                                     const machine::PlacementStats& stats,
                                     int nthreads) const {
  // The whole-machine memory derating (the VisionFive V1 anomaly) slows
  // the entire uncore, shared caches included.
  const double clock =
      m_.core.clock_ghz * m_.memory_derating;  // bytes/cycle -> GB/s
  switch (level) {
    case MemLevel::L1:
      return m_.l1d.bw_bytes_per_cycle * m_.core.clock_ghz;
    case MemLevel::L2: {
      const int sharers = std::max(1, stats.max_per_cluster);
      return m_.l2.bw_bytes_per_cycle * clock / sharers;
    }
    case MemLevel::L3: {
      if (!m_.l3.present()) {
        throw std::invalid_argument("per_thread_bw_gbs: no L3 on " + m_.name);
      }
      const int instances =
          std::max(1, m_.num_cores / std::max(1, m_.l3.shared_by));
      const int active = std::min(instances, nthreads);
      const double aggregate = m_.l3.bw_bytes_per_cycle * clock * active;
      // One thread cannot pull much more out of L3 than it can stream
      // from DRAM (miss-handling concurrency limits apply either way).
      return std::min(aggregate / nthreads, 3.0 * m_.core.stream_bw_gbs);
    }
    case MemLevel::DRAM:
      throw std::invalid_argument(
          "per_thread_bw_gbs: DRAM bandwidth comes from MemoryModel");
  }
  throw std::invalid_argument("per_thread_bw_gbs: bad level");
}

}  // namespace sgp::sim
