// Prices one loop iteration on a core, given the codegen plan.
#pragma once

#include "compiler/model.hpp"
#include "core/signature.hpp"
#include "core/types.hpp"
#include "machine/descriptor.hpp"

namespace sgp::sim {

struct CoreCost {
  double cycles_per_iter = 0.0;
  bool vector_path = false;
};

class CoreModel {
 public:
  explicit CoreModel(const machine::MachineDescriptor& m) : m_(m) {}

  /// Cycles per logical loop iteration (throughput, not latency), the
  /// max over the core's issue-limited resources.
  CoreCost cycles_per_iteration(const core::KernelSignature& sig,
                                const compiler::CodegenPlan& plan,
                                core::Precision prec) const;

 private:
  const machine::MachineDescriptor& m_;
};

}  // namespace sgp::sim
