#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/pattern.hpp"

namespace sgp::sim {

Simulator::Simulator(machine::MachineDescriptor m)
    : m_(std::move(m)), cache_(m_), memory_(m_), core_(m_), sync_(m_) {
  m_.validate();
}

TimeBreakdown Simulator::run(const core::KernelSignature& sig,
                             const SimConfig& cfg) const {
  static obs::Counter& runs = obs::registry().counter("sim.runs");
  static obs::Histogram& run_ns =
      obs::registry().histogram("sim.run_ns");
  const obs::Span span("Simulator::run");
  const auto obs_t0 = std::chrono::steady_clock::now();

  if (cfg.nthreads < 1 || cfg.nthreads > m_.num_cores) {
    throw std::invalid_argument("Simulator::run: nthreads out of range");
  }
  if (sig.iters_per_rep <= 0.0 || sig.reps <= 0.0 ||
      sig.working_set_elems <= 0.0) {
    throw std::invalid_argument("Simulator::run: malformed signature for " +
                                sig.name);
  }
  if (sig.seq_fraction < 0.0 || sig.seq_fraction > 1.0) {
    throw std::invalid_argument("Simulator::run: bad seq_fraction for " +
                                sig.name);
  }

  const auto plan =
      compiler::plan(sig, cfg.precision, cfg.compiler, cfg.vector_mode, m_);
  const auto cores =
      machine::assign_cores(m_, cfg.placement, cfg.nthreads);
  const auto stats = machine::analyze(m_, cores);
  const auto cc = core_.cycles_per_iteration(sig, plan, cfg.precision);

  // Critical-path iterations per thread (Amdahl with seq_fraction).
  const double t = cfg.nthreads;
  const double iters_crit =
      sig.iters_per_rep * ((1.0 - sig.seq_fraction) / t + sig.seq_fraction);

  TimeBreakdown out;
  out.vector_path = plan.vector_path;
  out.note = plan.note;

  const double clock_hz = m_.core.clock_ghz * 1e9;
  const double compute_per_rep = iters_crit * cc.cycles_per_iter / clock_hz;

  // Memory: which level serves the streamed traffic, and how fast.
  const double ws = sig.working_set_bytes(cfg.precision);
  out.serving = cache_.serving_level(ws, stats, cfg.nthreads);

  double memory_per_rep = 0.0;
  if (out.serving != MemLevel::L1) {
    const double eff = pattern_bandwidth_efficiency(sig.pattern);
    const double bytes_per_thread =
        sig.streamed_bytes_per_iter(cfg.precision) * iters_crit / eff;
    double bw = 0.0;
    bool shared_level = false;
    if (out.serving == MemLevel::DRAM) {
      bw = memory_.per_thread_bw_gbs(stats, cfg.nthreads,
                                     SharedLevel::Dram);
      shared_level = true;
    } else if (out.serving == MemLevel::L3 && m_.l3_memory_side) {
      bw = memory_.per_thread_bw_gbs(stats, cfg.nthreads,
                                     SharedLevel::MemorySideL3);
      shared_level = true;
    } else {
      bw = cache_.per_thread_bw_gbs(out.serving, stats, cfg.nthreads);
    }
    // Scalar code exposes less memory-level parallelism than vector
    // code, so it sustains only a fraction of the streaming bandwidth
    // out of the shared levels.
    if (shared_level && !plan.vector_path) {
      bw *= m_.core.scalar_stream_derate;
    }
    bw *= plan.memory_efficiency;
    memory_per_rep = bytes_per_thread / (bw * 1e9);
  }

  const double sync_per_rep = sync_.seconds_per_rep(sig, stats, cfg.nthreads);

  // Contended atomics serialise globally: every atomic op costs a
  // coherence round trip once more than one thread updates the location.
  double atomic_per_rep = 0.0;
  if (sig.atomic) {
    const double ops = sig.iters_per_rep;  // one atomic per iteration
    if (cfg.nthreads == 1) {
      atomic_per_rep = ops * 6e-9;  // uncontended near-L1 latency
    } else {
      const double span_mult = stats.regions_spanned > 1
                                   ? m_.remote_numa_penalty
                                   : 1.0;
      atomic_per_rep = ops * m_.atomic_rtt_ns * 1e-9 * span_mult;
    }
  }

  const double per_rep =
      std::max(compute_per_rep, memory_per_rep) + sync_per_rep +
      atomic_per_rep;
  out.compute_s = compute_per_rep * sig.reps;
  out.memory_s = memory_per_rep * sig.reps;
  out.sync_s = sync_per_rep * sig.reps;
  out.atomic_s = atomic_per_rep * sig.reps;
  out.total_s = per_rep * sig.reps;

  runs.add();
  run_ns.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - obs_t0)
          .count()));
  return out;
}

}  // namespace sgp::sim
