#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/eval_context.hpp"
#include "sim/pattern.hpp"

namespace sgp::sim {

Simulator::Simulator(machine::MachineDescriptor m)
    : m_(std::move(m)), cache_(m_), memory_(m_), core_(m_), sync_(m_) {
  m_.validate();
  // Placement tables: assign_cores + analyze walk the NUMA/cluster
  // topology through ordered maps — ~10 us per call on a 64-core
  // descriptor, which used to dominate every run(). All
  // 3 x num_cores results fit in a few KB, so resolve them once here.
  for (const auto p : machine::all_placements) {
    auto& table = placement_stats_[static_cast<std::size_t>(p)];
    table.reserve(static_cast<std::size_t>(m_.num_cores));
    for (int n = 1; n <= m_.num_cores; ++n) {
      table.push_back(machine::analyze(m_, machine::assign_cores(m_, p, n)));
    }
  }
}

TimeBreakdown Simulator::run(const core::KernelSignature& sig,
                             const SimConfig& cfg) const {
  static obs::Counter& runs = obs::registry().counter("sim.runs");
  static obs::Histogram& run_ns =
      obs::registry().histogram("sim.run_ns");
  const obs::Span span("Simulator::run");
  const auto obs_t0 = std::chrono::steady_clock::now();

  // Thread range first, then signature validation (inside the context
  // constructor), preserving the historical exception precedence.
  if (cfg.nthreads < 1 || cfg.nthreads > m_.num_cores) {
    throw std::invalid_argument("Simulator::run: nthreads out of range");
  }
  EvalContext ctx(*this, sig);
  TimeBreakdown out;
  price(ctx, std::span<const SimConfig>(&cfg, 1),
        std::span<TimeBreakdown>(&out, 1));

  runs.add();
  run_ns.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - obs_t0)
          .count()));
  return out;
}

void Simulator::run_batch(EvalContext& ctx,
                          std::span<const SimConfig> cfgs,
                          std::span<TimeBreakdown> out) const {
  static obs::Counter& batches =
      obs::registry().counter("sim.batch.batches");
  static obs::Counter& points =
      obs::registry().counter("sim.batch.points");
  if (&ctx.simulator() != this) {
    throw std::invalid_argument(
        "Simulator::run_batch: context was built for a different simulator");
  }
  if (cfgs.size() != out.size()) {
    throw std::invalid_argument(
        "Simulator::run_batch: cfgs/out length mismatch");
  }
  const obs::Span span("Simulator::run_batch");
  price(ctx, cfgs, out);
  batches.add();
  points.add(cfgs.size());
}

void Simulator::price(EvalContext& ctx, std::span<const SimConfig> cfgs,
                      std::span<TimeBreakdown> out) const {
  const std::size_t n = cfgs.size();
  if (n == 0) return;
  const core::KernelSignature& sig = *ctx.sig_;

  auto& iters_crit = ctx.iters_crit_;
  auto& compute_per_rep = ctx.compute_per_rep_;
  auto& memory_per_rep = ctx.memory_per_rep_;
  auto& sync_per_rep = ctx.sync_per_rep_;
  auto& atomic_per_rep = ctx.atomic_per_rep_;
  auto& point_combo = ctx.point_combo_;
  auto& point_stats = ctx.point_stats_;
  iters_crit.resize(n);
  compute_per_rep.resize(n);
  memory_per_rep.resize(n);
  sync_per_rep.resize(n);
  atomic_per_rep.resize(n);
  point_combo.resize(n);
  point_stats.resize(n);

  const double clock_hz = m_.core.clock_ghz * 1e9;

  // Resolve pass: validate each config, bind its memoized codegen/core
  // combo and placement-table row, and price the compute term.
  for (std::size_t i = 0; i < n; ++i) {
    const SimConfig& cfg = cfgs[i];
    if (cfg.nthreads < 1 || cfg.nthreads > m_.num_cores) {
      throw std::invalid_argument("Simulator::run: nthreads out of range");
    }
    const EvalContext::Combo& cb =
        ctx.combo(cfg.precision, cfg.compiler, cfg.vector_mode);
    point_combo[i] = &cb;
    point_stats[i] = &placement_stats(cfg.placement, cfg.nthreads);

    // Critical-path iterations per thread (Amdahl with seq_fraction).
    const double t = cfg.nthreads;
    const double ic =
        sig.iters_per_rep * ((1.0 - sig.seq_fraction) / t + sig.seq_fraction);
    iters_crit[i] = ic;
    compute_per_rep[i] = ic * cb.cost.cycles_per_iter / clock_hz;

    out[i].vector_path = cb.plan.vector_path;
    out[i].note = cb.plan.note;
    out[i].note_compiler = cfg.compiler;
    out[i].note_mode = cfg.vector_mode;
    out[i].note_rollback = cb.plan.needs_rollback;
  }

  // Memory pass: which level serves the streamed traffic, and how fast.
  for (std::size_t i = 0; i < n; ++i) {
    const SimConfig& cfg = cfgs[i];
    const machine::PlacementStats& stats = *point_stats[i];
    const compiler::CodegenPlan& plan = point_combo[i]->plan;
    const double ws =
        ctx.ws_bytes_[static_cast<std::size_t>(cfg.precision)];
    const MemLevel serving = cache_.serving_level(ws, stats, cfg.nthreads);
    out[i].serving = serving;

    double mem = 0.0;
    if (serving != MemLevel::L1) {
      const double eff = ctx.pattern_bw_eff_;
      const double bytes_per_thread =
          ctx.streamed_bytes_per_iter_[static_cast<std::size_t>(
              cfg.precision)] *
          iters_crit[i] / eff;
      double bw = 0.0;
      bool shared_level = false;
      if (serving == MemLevel::DRAM) {
        bw = memory_.per_thread_bw_gbs(stats, cfg.nthreads,
                                       SharedLevel::Dram);
        shared_level = true;
      } else if (serving == MemLevel::L3 && m_.l3_memory_side) {
        bw = memory_.per_thread_bw_gbs(stats, cfg.nthreads,
                                       SharedLevel::MemorySideL3);
        shared_level = true;
      } else {
        bw = cache_.per_thread_bw_gbs(serving, stats, cfg.nthreads);
      }
      // Scalar code exposes less memory-level parallelism than vector
      // code, so it sustains only a fraction of the streaming bandwidth
      // out of the shared levels.
      if (shared_level && !plan.vector_path) {
        bw *= m_.core.scalar_stream_derate;
      }
      bw *= plan.memory_efficiency;
      mem = bytes_per_thread / (bw * 1e9);
    }
    memory_per_rep[i] = mem;
  }

  // Sync/atomic pass. Contended atomics serialise globally: every
  // atomic op costs a coherence round trip once more than one thread
  // updates the location.
  for (std::size_t i = 0; i < n; ++i) {
    const SimConfig& cfg = cfgs[i];
    const machine::PlacementStats& stats = *point_stats[i];
    sync_per_rep[i] = sync_.seconds_per_rep(sig, stats, cfg.nthreads);

    double atomic = 0.0;
    if (sig.atomic) {
      const double ops = sig.iters_per_rep;  // one atomic per iteration
      if (cfg.nthreads == 1) {
        atomic = ops * 6e-9;  // uncontended near-L1 latency
      } else {
        const double span_mult = stats.regions_spanned > 1
                                     ? m_.remote_numa_penalty
                                     : 1.0;
        atomic = ops * m_.atomic_rtt_ns * 1e-9 * span_mult;
      }
    }
    atomic_per_rep[i] = atomic;
  }

  // Combine pass: pure SoA arithmetic over the term columns.
  const double reps = sig.reps;
  for (std::size_t i = 0; i < n; ++i) {
    const double per_rep =
        std::max(compute_per_rep[i], memory_per_rep[i]) + sync_per_rep[i] +
        atomic_per_rep[i];
    out[i].compute_s = compute_per_rep[i] * reps;
    out[i].memory_s = memory_per_rep[i] * reps;
    out[i].sync_s = sync_per_rep[i] * reps;
    out[i].atomic_s = atomic_per_rep[i] * reps;
    out[i].total_s = per_rep * reps;
  }
}

}  // namespace sgp::sim
