// Configuration of one simulated benchmark run.
#pragma once

#include "core/types.hpp"
#include "machine/placement.hpp"

namespace sgp::sim {

struct SimConfig {
  core::Precision precision = core::Precision::FP64;
  core::CompilerId compiler = core::CompilerId::Gcc;
  core::VectorMode vector_mode = core::VectorMode::VLS;
  int nthreads = 1;
  machine::Placement placement = machine::Placement::Block;
};

}  // namespace sgp::sim
