#include "sim/memory_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sgp::sim {

double MemoryModel::knee(std::size_t region) const {
  if (region >= m_.numa.size()) {
    throw std::out_of_range("MemoryModel::knee: bad region");
  }
  if (m_.oversubscribe_knee > 0.0) return m_.oversubscribe_knee;
  return static_cast<double>(m_.numa[region].cores.size());
}

double MemoryModel::region_peak_gbs(std::size_t region,
                                    SharedLevel level) const {
  // Validated here rather than in each caller: the DRAM branch indexes
  // m_.numa directly, so a bad region is UB without this check.
  if (region >= m_.numa.size()) {
    throw std::out_of_range("MemoryModel::region_peak_gbs: bad region");
  }
  if (level == SharedLevel::Dram) return m_.numa[region].mem_bw_gbs;
  // Memory-side L3: the package cache's aggregate bandwidth is striped
  // across the NUMA regions' mesh slices.
  const double aggregate = m_.l3.bw_bytes_per_cycle * m_.core.clock_ghz;
  return aggregate / static_cast<double>(m_.numa.size());
}

double MemoryModel::region_bandwidth_gbs(std::size_t region, int n,
                                         SharedLevel level) const {
  if (region >= m_.numa.size()) {
    throw std::out_of_range("region_bandwidth_gbs: bad region");
  }
  if (n <= 0) return 0.0;
  const double peak = region_peak_gbs(region, level);
  const double ramp =
      std::min(static_cast<double>(n) * m_.core.stream_bw_gbs, peak);
  const double over =
      std::max(0.0, static_cast<double>(n) - knee(region));
  const double derate =
      1.0 / (1.0 + m_.oversubscribe_gamma * over * over);
  return ramp * derate;
}

double MemoryModel::per_thread_bw_gbs(const machine::PlacementStats& stats,
                                      int nthreads,
                                      SharedLevel level) const {
  if (nthreads < 1) throw std::invalid_argument("per_thread_bw_gbs: n");
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < stats.threads_per_numa.size(); ++r) {
    const int n = stats.threads_per_numa[r];
    if (n == 0) continue;
    worst = std::min(worst, region_bandwidth_gbs(r, n, level) / n);
  }
  if (!std::isfinite(worst)) {
    throw std::invalid_argument("per_thread_bw_gbs: empty placement");
  }
  // Single-core limit.
  worst = std::min(worst, m_.core.stream_bw_gbs);
  // Cluster mesh-port cap (four cores behind one L2 port on the SG2042).
  if (m_.cluster_bw_gbs > 0.0) {
    for (int k : stats.threads_per_cluster) {
      if (k > 0) worst = std::min(worst, m_.cluster_bw_gbs / k);
    }
  }
  return worst * m_.memory_derating;
}

}  // namespace sgp::sim
