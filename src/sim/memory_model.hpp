// Bandwidth of the shared memory system (DRAM, and the SG2042's
// memory-side L3) under a placement: per-NUMA-region slices, a knee-based
// oversubscription derating, and the per-cluster mesh-port cap.
#pragma once

#include "machine/descriptor.hpp"
#include "machine/placement.hpp"

namespace sgp::sim {

/// Which shared memory resource is being priced.
enum class SharedLevel { Dram, MemorySideL3 };

class MemoryModel {
 public:
  explicit MemoryModel(const machine::MachineDescriptor& m) : m_(m) {}

  /// Effective aggregate bandwidth of one region's slice serving `n`
  /// local threads, GB/s. Rises linearly until the slice saturates, then
  /// falls convexly once `n` passes the machine's oversubscription knee:
  /// bw * 1/(1 + gamma * (n - knee)^2).
  double region_bandwidth_gbs(std::size_t region, int n,
                              SharedLevel level) const;

  /// Bandwidth available to the most-constrained thread, GB/s. Assumes
  /// first-touch-distributed data (each thread streams from its own
  /// region), which OMP_PROC_BIND=true + parallel initialisation gives.
  /// Applies the per-cluster mesh-port cap, the single-core limit and
  /// the machine derating.
  double per_thread_bw_gbs(const machine::PlacementStats& stats,
                           int nthreads, SharedLevel level) const;

  /// Threads per region after which the derate kicks in.
  double knee(std::size_t region) const;

  /// Peak bandwidth of one region's slice of the shared level, GB/s.
  /// Throws std::out_of_range on a bad region index (both level paths —
  /// the DRAM path reads m_.numa[region] directly).
  double region_peak_gbs(std::size_t region, SharedLevel level) const;

 private:
  const machine::MachineDescriptor& m_;
};

}  // namespace sgp::sim
