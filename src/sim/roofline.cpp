#include "sim/roofline.hpp"

#include <algorithm>

#include "compiler/model.hpp"

namespace sgp::sim {

namespace {

double scalar_gflops(const machine::MachineDescriptor& m) {
  return m.core.scalar_flops_per_cycle() * m.core.clock_ghz;
}

double vector_gflops(const machine::MachineDescriptor& m, int elem_bits) {
  const double v = m.core.vector_flops_per_cycle(elem_bits);
  return v > 0.0 ? v * m.core.clock_ghz : scalar_gflops(m);
}

}  // namespace

RooflineModel roofline_for(const machine::MachineDescriptor& m) {
  RooflineModel r;
  r.machine = m.name;
  r.peak_scalar_gflops = scalar_gflops(m);
  r.peak_vector_gflops_fp32 = vector_gflops(m, 32);
  r.peak_vector_gflops_fp64 = vector_gflops(m, 64);
  r.stream_bw_gbs = m.core.stream_bw_gbs;
  r.ridge_intensity_fp32 = r.peak_vector_gflops_fp32 / r.stream_bw_gbs;
  r.ridge_intensity_fp64 = r.peak_vector_gflops_fp64 / r.stream_bw_gbs;
  return r;
}

std::vector<RooflinePoint> roofline_points(
    const machine::MachineDescriptor& m, const SimConfig& cfg,
    const std::vector<core::KernelSignature>& sigs) {
  const auto model = roofline_for(m);
  std::vector<RooflinePoint> out;
  out.reserve(sigs.size());

  for (const auto& sig : sigs) {
    RooflinePoint p;
    p.kernel = sig.name;
    p.group = sig.group;

    const double flops = sig.mix.flops();
    const double bytes = sig.streamed_bytes_per_iter(cfg.precision);
    p.intensity = bytes > 0.0 ? flops / bytes : 1e6;  // cache-resident

    // Which compute roof applies depends on the executed code path.
    const auto plan =
        compiler::plan(sig, cfg.precision, cfg.compiler, cfg.vector_mode, m);
    double ceiling = model.peak_scalar_gflops;
    if (plan.vector_path && !sig.integer_dominated) {
      ceiling = cfg.precision == core::Precision::FP32
                    ? model.peak_vector_gflops_fp32
                    : model.peak_vector_gflops_fp64;
      ceiling *= plan.efficiency;
    }
    p.compute_ceiling_gflops = std::max(ceiling, 1e-9);

    const double bw = plan.vector_path
                          ? model.stream_bw_gbs
                          : model.stream_bw_gbs *
                                m.core.scalar_stream_derate;
    const double bw_bound = p.intensity * bw;
    p.attainable_gflops = std::min(p.compute_ceiling_gflops, bw_bound);
    p.memory_bound = bw_bound < p.compute_ceiling_gflops;
    out.push_back(p);
  }
  return out;
}

}  // namespace sgp::sim
