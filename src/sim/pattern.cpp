#include "sim/pattern.hpp"

namespace sgp::sim {

using core::AccessPattern;

double pattern_bandwidth_efficiency(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::Streaming:     return 1.00;
    case AccessPattern::Strided:       return 0.45;
    case AccessPattern::Stencil1D:     return 0.95;
    case AccessPattern::Stencil2D:     return 0.90;
    case AccessPattern::Stencil3D:     return 0.82;
    case AccessPattern::Gather:        return 0.35;
    case AccessPattern::Reduction:     return 1.00;
    case AccessPattern::Sequential:    return 0.95;
    case AccessPattern::BlockedMatrix: return 1.00;
    case AccessPattern::Sort:          return 0.60;
  }
  return 0.8;
}

double pattern_ilp_derating(AccessPattern p, bool out_of_order) noexcept {
  switch (p) {
    case AccessPattern::Streaming:     return 1.0;
    case AccessPattern::Strided:       return out_of_order ? 1.1 : 1.3;
    case AccessPattern::Stencil1D:     return 1.0;
    case AccessPattern::Stencil2D:     return out_of_order ? 1.05 : 1.2;
    case AccessPattern::Stencil3D:     return out_of_order ? 1.10 : 1.3;
    case AccessPattern::Gather:        return out_of_order ? 1.3 : 1.8;
    case AccessPattern::Reduction:     return out_of_order ? 1.2 : 1.5;
    case AccessPattern::Sequential:    return out_of_order ? 3.0 : 3.5;
    case AccessPattern::BlockedMatrix: return 1.0;
    case AccessPattern::Sort:          return out_of_order ? 2.0 : 2.6;
  }
  return 1.2;
}

}  // namespace sgp::sim
