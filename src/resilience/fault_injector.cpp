#include "resilience/fault_injector.hpp"

#include <functional>
#include <stdexcept>

namespace sgp::resilience {

namespace {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(text.substr(pos));
      break;
    }
    out.emplace_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

double parse_number(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("FaultPlan: bad ") + what +
                                " '" + text + "'");
  }
}

int parse_triggers(const std::string& text) {
  const double v = parse_number(text, "trigger count");
  const int n = static_cast<int>(v);
  if (v != n || n < 1) {
    throw std::invalid_argument("FaultPlan: trigger count must be a "
                                "positive integer, got '" + text + "'");
  }
  return n;
}

}  // namespace

void FaultPlan::add(FaultSpec spec) {
  if (spec.kernel.empty()) {
    throw std::invalid_argument("FaultPlan: empty kernel name");
  }
  if (spec.kind == FaultKind::None) {
    throw std::invalid_argument("FaultPlan: spec for '" + spec.kernel +
                                "' has no fault kind");
  }
  if (spec.kind == FaultKind::Delay && spec.delay_ms <= 0.0) {
    throw std::invalid_argument("FaultPlan: delay for '" + spec.kernel +
                                "' must be > 0 ms");
  }
  if (spec.probability <= 0.0 || spec.probability > 1.0) {
    throw std::invalid_argument("FaultPlan: probability for '" +
                                spec.kernel + "' must be in (0, 1]");
  }
  if (spec.max_triggers == 0 || spec.max_triggers < -1) {
    throw std::invalid_argument("FaultPlan: max_triggers for '" +
                                spec.kernel + "' must be -1 or >= 1");
  }
  specs_.push_back(std::move(spec));
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  for (const auto& entry : split(text, ',')) {
    if (entry.empty()) continue;
    const auto fields = split(entry, ':');
    if (fields.size() < 2) {
      throw std::invalid_argument("FaultPlan: expected 'kernel:kind', got '" +
                                  entry + "'");
    }
    FaultSpec spec;
    spec.kernel = fields[0];

    // The kind token may carry an '@probability' suffix.
    std::string kind = fields[1];
    const auto at = kind.find('@');
    if (at != std::string::npos) {
      spec.probability = parse_number(kind.substr(at + 1), "probability");
      kind = kind.substr(0, at);
    }

    std::size_t next_field = 2;
    if (kind == "throw") {
      spec.kind = FaultKind::Throw;
    } else if (kind == "nan") {
      spec.kind = FaultKind::CorruptChecksum;
    } else if (kind == "torn") {
      spec.kind = FaultKind::TornWrite;
    } else if (kind == "enospc") {
      spec.kind = FaultKind::NoSpace;
    } else if (kind == "bitflip") {
      spec.kind = FaultKind::BitFlipRead;
    } else if (kind == "renamefail") {
      spec.kind = FaultKind::RenameFail;
    } else if (kind == "delay") {
      spec.kind = FaultKind::Delay;
      if (fields.size() < 3) {
        throw std::invalid_argument(
            "FaultPlan: delay needs milliseconds, e.g. '" + spec.kernel +
            ":delay:250'");
      }
      spec.delay_ms = parse_number(fields[2], "delay");
      next_field = 3;
    } else {
      throw std::invalid_argument(
          "FaultPlan: unknown fault kind '" + kind +
          "' (throw | nan | delay | torn | enospc | bitflip | renamefail)");
    }
    if (fields.size() > next_field + 1) {
      throw std::invalid_argument("FaultPlan: trailing fields in '" + entry +
                                  "'");
    }
    if (fields.size() == next_field + 1) {
      spec.max_triggers = parse_triggers(fields[next_field]);
    }
    plan.add(std::move(spec));
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed) {
  // Fold the 64-bit seed into the mt19937's 32-bit state; seeds below
  // 2^32 fold to themselves, preserving historical fault sequences.
  const unsigned folded = static_cast<unsigned>(seed ^ (seed >> 32));
  for (auto& spec : plan.specs()) {
    State st;
    st.spec = spec;
    st.remaining = spec.max_triggers;
    // Per-kernel stream: the same plan + seed always faults the same
    // attempts regardless of suite order or other kernels' draws.
    st.rng.seed(folded ^ static_cast<unsigned>(
                             std::hash<std::string>{}(spec.kernel)));
    states_.push_back(std::move(st));
  }
}

ArmedFault FaultInjector::arm(std::string_view kernel) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& st : states_) {
    if (st.spec.kernel != kernel && st.spec.kernel != "*") continue;
    if (st.remaining == 0) continue;
    if (st.spec.probability < 1.0) {
      std::bernoulli_distribution fire(st.spec.probability);
      if (!fire(st.rng)) continue;
    }
    if (st.remaining > 0) --st.remaining;
    ++st.armed;
    std::uint64_t entropy = 0;
    if (st.spec.kind == FaultKind::TornWrite ||
        st.spec.kind == FaultKind::BitFlipRead) {
      // Two 32-bit draws keep the position/length deterministic for a
      // given (plan, seed) regardless of how other specs drew.
      entropy = (static_cast<std::uint64_t>(st.rng()) << 32) | st.rng();
    }
    return ArmedFault{st.spec.kind, st.spec.delay_ms, entropy};
  }
  return ArmedFault{};
}

int FaultInjector::armed_count(std::string_view kernel) const {
  std::lock_guard<std::mutex> lk(mu_);
  int n = 0;
  for (const auto& st : states_) {
    if (st.spec.kernel == kernel || st.spec.kernel == "*") n += st.armed;
  }
  return n;
}

}  // namespace sgp::resilience
