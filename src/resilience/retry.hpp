// Bounded retry with exponential backoff for transient kernel faults.
#pragma once

#include <cstdint>

namespace sgp::resilience {

/// Governs how many times a failing kernel is re-attempted and how long
/// the runner pauses between attempts. max_attempts == 1 disables retry.
struct RetryPolicy {
  int max_attempts = 1;             ///< total attempts (first + retries)
  double backoff_initial_ms = 10.0; ///< pause before the first retry
  double backoff_multiplier = 2.0;  ///< growth per subsequent retry
  double backoff_max_ms = 2000.0;   ///< cap on any single pause
  /// Deterministic jitter fraction in [0, 1): each pause is scaled by a
  /// factor in [1 - jitter, 1 + jitter) drawn from `jitter_seed`, so a
  /// fleet of retriers hitting the same transient I/O fault spreads out
  /// instead of retrying in lockstep — while the same (policy, seed)
  /// still reproduces the exact same pause sequence run after run.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0x5eedb0ff5eedb0ffull;

  /// Stateless mixer (splitmix64): the jitter draw for retry `n` is a
  /// pure function of (jitter_seed, n).
  static constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Pause before retry number `retry` (1-based: 1 follows the first
  /// failed attempt). Exponential with a hard cap, jittered when
  /// jitter > 0; 0 when out of range. Always <= backoff_max_ms.
  double backoff_ms(int retry) const {
    if (retry < 1 || max_attempts <= 1) return 0.0;
    double d = backoff_initial_ms;
    for (int i = 1; i < retry; ++i) d *= backoff_multiplier;
    if (d > backoff_max_ms) d = backoff_max_ms;
    if (jitter > 0.0) {
      const double u =
          static_cast<double>(
              mix64(jitter_seed ^ static_cast<std::uint64_t>(retry)) >> 11) *
          0x1.0p-53;  // uniform in [0, 1)
      d *= (1.0 - jitter) + 2.0 * jitter * u;  // factor in [1-j, 1+j)
      if (d > backoff_max_ms) d = backoff_max_ms;
    }
    return d;
  }

  bool enabled() const { return max_attempts > 1; }

  /// Throws std::invalid_argument on nonsensical parameters.
  void validate() const;
};

}  // namespace sgp::resilience
