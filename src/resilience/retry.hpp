// Bounded retry with exponential backoff for transient kernel faults.
#pragma once

namespace sgp::resilience {

/// Governs how many times a failing kernel is re-attempted and how long
/// the runner pauses between attempts. max_attempts == 1 disables retry.
struct RetryPolicy {
  int max_attempts = 1;             ///< total attempts (first + retries)
  double backoff_initial_ms = 10.0; ///< pause before the first retry
  double backoff_multiplier = 2.0;  ///< growth per subsequent retry
  double backoff_max_ms = 2000.0;   ///< cap on any single pause

  /// Pause before retry number `retry` (1-based: 1 follows the first
  /// failed attempt). Exponential with a hard cap; 0 when out of range.
  double backoff_ms(int retry) const {
    if (retry < 1 || max_attempts <= 1) return 0.0;
    double d = backoff_initial_ms;
    for (int i = 1; i < retry; ++i) d *= backoff_multiplier;
    return d > backoff_max_ms ? backoff_max_ms : d;
  }

  bool enabled() const { return max_attempts > 1; }

  /// Throws std::invalid_argument on nonsensical parameters.
  void validate() const;
};

}  // namespace sgp::resilience
