// Typed per-kernel run outcomes. A resilient suite run never loses a
// kernel silently: every kernel ends in exactly one of these states and
// the record carries the error detail alongside.
#pragma once

#include <string_view>

namespace sgp::resilience {

/// Terminal state of one kernel's (possibly retried) execution.
enum class Outcome {
  Ok,               ///< ran to completion with a finite checksum
  Failed,           ///< an exception escaped the kernel body
  TimedOut,         ///< the per-kernel soft deadline expired
  Skipped,          ///< quarantined; never attempted
  CorruptChecksum,  ///< completed but the checksum is NaN/Inf
};

constexpr std::string_view to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Ok:              return "ok";
    case Outcome::Failed:          return "failed";
    case Outcome::TimedOut:        return "timed-out";
    case Outcome::Skipped:         return "skipped";
    case Outcome::CorruptChecksum: return "corrupt-checksum";
  }
  return "?";
}

/// True for outcomes that count against the run (Skipped is deliberate).
constexpr bool is_failure(Outcome o) noexcept {
  return o == Outcome::Failed || o == Outcome::TimedOut ||
         o == Outcome::CorruptChecksum;
}

/// Retrying only makes sense for states a later attempt could improve.
constexpr bool is_retryable(Outcome o) noexcept { return is_failure(o); }

}  // namespace sgp::resilience
