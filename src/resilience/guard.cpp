#include "resilience/guard.hpp"

#include "resilience/retry.hpp"

namespace sgp::resilience {

void RetryPolicy::validate() const {
  if (max_attempts < 1) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
  if (backoff_initial_ms < 0.0 || backoff_max_ms < 0.0 ||
      backoff_multiplier < 1.0) {
    throw std::invalid_argument("RetryPolicy: bad backoff parameters");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    throw std::invalid_argument("RetryPolicy: jitter must be in [0, 1)");
  }
}

Watchdog::Watchdog(std::chrono::steady_clock::time_point deadline,
                   CancelToken& token) {
  thread_ = std::thread([this, deadline, &token] {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_until(lk, deadline, [&] { return disarmed_; });
    if (!disarmed_) token.cancel();
  });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    disarmed_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

GuardedExecutor::GuardedExecutor(core::Executor& inner,
                                 const CancelToken* cancel, ArmedFault fault,
                                 std::string kernel)
    : inner_(inner),
      cancel_(cancel),
      fault_(fault),
      kernel_(std::move(kernel)) {}

void GuardedExecutor::check_deadline() const {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    throw DeadlineExceeded("kernel '" + kernel_ +
                           "' exceeded its soft deadline");
  }
}

void GuardedExecutor::parallel_for(std::size_t n, const ChunkFn& fn) {
  check_deadline();
  const ChunkFn guarded = [&](std::size_t b, std::size_t e, int c) {
    // The armed fault fires in exactly one chunk of the attempt; the
    // deadline check runs after any injected sleep so a delayed chunk
    // that blows the deadline is classified TimedOut deterministically.
    if (fault_.kind != FaultKind::None && !fired_.exchange(true)) {
      if (fault_.kind == FaultKind::Delay) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(fault_.delay_ms));
      } else if (fault_.kind == FaultKind::Throw) {
        throw InjectedFault("injected fault in kernel '" + kernel_ +
                            "' (chunk " + std::to_string(c) + ")");
      }
    }
    check_deadline();
    fn(b, e, c);
  };
  inner_.parallel_for(n, guarded);
}

}  // namespace sgp::resilience
