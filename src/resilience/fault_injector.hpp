// Deterministic fault injection for resilience testing. A FaultPlan
// names kernels and the faults they should experience (exception,
// checksum corruption, delay); the FaultInjector arms one fault per
// execution attempt, with per-kernel trigger budgets so transient
// (first-N-attempts-only) faults are expressible, and a per-kernel
// seeded RNG so probabilistic faults are reproducible across runs.
#pragma once

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <vector>

namespace sgp::resilience {

enum class FaultKind {
  None,             ///< no fault armed
  Throw,            ///< throw InjectedFault from inside a kernel chunk
  CorruptChecksum,  ///< replace the kernel's checksum with NaN
  Delay,            ///< sleep inside a kernel chunk (straggler)
  // Filesystem fault points. These are armed at I/O *sites* instead of
  // kernels: the persistence layer asks for "persist.write",
  // "persist.rename" and "persist.read" around each operation, so a
  // plan like "persist.write:torn:1" tears exactly the first segment
  // flush. The entropy word in the ArmedFault picks the torn length /
  // flipped bit deterministically from the per-site seeded RNG.
  TornWrite,   ///< write reports success but only a prefix reaches disk
  NoSpace,     ///< write fails as if the device returned ENOSPC
  BitFlipRead, ///< one bit of the read buffer flips (marginal medium)
  RenameFail,  ///< the atomic temp-to-final rename fails
};

constexpr std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::None:            return "none";
    case FaultKind::Throw:           return "throw";
    case FaultKind::CorruptChecksum: return "nan";
    case FaultKind::Delay:           return "delay";
    case FaultKind::TornWrite:       return "torn";
    case FaultKind::NoSpace:         return "enospc";
    case FaultKind::BitFlipRead:     return "bitflip";
    case FaultKind::RenameFail:      return "renamefail";
  }
  return "?";
}

/// True for the fault kinds that target filesystem operations rather
/// than kernel execution.
constexpr bool is_io_fault(FaultKind k) noexcept {
  return k == FaultKind::TornWrite || k == FaultKind::NoSpace ||
         k == FaultKind::BitFlipRead || k == FaultKind::RenameFail;
}

/// One injection rule, scoped to a kernel name ("*" matches any kernel).
struct FaultSpec {
  std::string kernel;
  FaultKind kind = FaultKind::None;
  double delay_ms = 0.0;    ///< sleep length for FaultKind::Delay
  int max_triggers = -1;    ///< attempts that fault; -1 = every attempt
  double probability = 1.0; ///< chance each attempt arms (seeded RNG)
};

/// An ordered set of FaultSpecs, parseable from the CLI/text form:
///
///   plan   := spec (',' spec)*
///   spec   := site ':' kind
///   site   := kernel name | I/O site ("persist.write", "persist.read",
///             "persist.rename") | '*'
///   kind   := 'throw'      ['@' prob] [':' triggers]
///           | 'nan'        ['@' prob] [':' triggers]
///           | 'delay'      ['@' prob] ':' millis [':' triggers]
///           | 'torn'       ['@' prob] [':' triggers]
///           | 'enospc'     ['@' prob] [':' triggers]
///           | 'bitflip'    ['@' prob] [':' triggers]
///           | 'renamefail' ['@' prob] [':' triggers]
///
/// e.g. "MUL:throw,DOT:nan,TRIAD:delay:250" or a transient
/// first-attempt-only fault "MUL:throw:1", or a seeded intermittent
/// fault "COPY:throw@0.5", or a torn first segment flush
/// "persist.write:torn:1".
class FaultPlan {
 public:
  /// Parses the text form; throws std::invalid_argument on bad syntax.
  static FaultPlan parse(std::string_view text);

  /// Appends a rule; throws std::invalid_argument on malformed specs.
  void add(FaultSpec spec);

  const std::vector<FaultSpec>& specs() const noexcept { return specs_; }
  bool empty() const noexcept { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

/// What the injector decided for one attempt.
struct ArmedFault {
  FaultKind kind = FaultKind::None;
  double delay_ms = 0.0;
  /// Deterministic randomness for faults that need a position or a
  /// length (BitFlipRead, TornWrite); drawn from the spec's seeded RNG
  /// when the fault arms, 0 otherwise.
  std::uint64_t entropy = 0;
};

/// Stateful, thread-safe dispenser of faults. Each arm() call consumes
/// one trigger of the first matching spec with budget remaining, so a
/// spec with max_triggers == 1 faults the first attempt and lets every
/// retry succeed — the shape of a transient platform fault.
class FaultInjector {
 public:
  /// `seed` accepts the full 64-bit range (CLI seeds are parsed as
  /// uint64). Seeds below 2^32 produce the exact same fault sequences
  /// as the historical unsigned-seed constructor.
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 4242u);

  /// Arms (and consumes) the fault for one attempt of `kernel`.
  ArmedFault arm(std::string_view kernel);

  /// Total faults armed so far for `kernel` (diagnostics/tests).
  int armed_count(std::string_view kernel) const;

 private:
  struct State {
    FaultSpec spec;
    int remaining;   ///< triggers left; -1 = unlimited
    int armed = 0;
    std::mt19937 rng;
  };
  std::vector<State> states_;
  mutable std::mutex mu_;
};

}  // namespace sgp::resilience
