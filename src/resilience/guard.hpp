// Execution guards: a watchdog-backed soft deadline and an Executor
// decorator that applies injected faults and cooperative cancellation
// inside kernel chunks — so faults surface on real worker threads and
// deadline checks happen at every chunk boundary without kernels
// knowing about either.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/executor.hpp"
#include "resilience/fault_injector.hpp"

namespace sgp::resilience {

/// Raised by the guard when an armed FaultKind::Throw fires.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Raised at a chunk boundary once the soft deadline has passed.
struct DeadlineExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One-way cancellation flag shared between a watchdog and executors.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Watchdog thread: cancels `token` when `deadline` passes. Destroying
/// the watchdog disarms it (if the deadline has not fired) and joins.
/// The deadline is *soft*: running chunks are never killed, they observe
/// the token at their next boundary.
class Watchdog {
 public:
  Watchdog(std::chrono::steady_clock::time_point deadline,
           CancelToken& token);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

/// Executor decorator for one kernel attempt. Before running each chunk
/// it (a) applies the armed fault exactly once per attempt — sleeping
/// for Delay, throwing InjectedFault for Throw — and (b) throws
/// DeadlineExceeded if the cancel token has fired. Checks run on the
/// worker threads of the wrapped executor, so a throwing chunk also
/// exercises the pool's exception propagation path.
class GuardedExecutor final : public core::Executor {
 public:
  GuardedExecutor(core::Executor& inner, const CancelToken* cancel,
                  ArmedFault fault, std::string kernel);

  int max_chunks() const override { return inner_.max_chunks(); }
  void parallel_for(std::size_t n, const ChunkFn& fn) override;

 private:
  void check_deadline() const;

  core::Executor& inner_;
  const CancelToken* cancel_;  ///< optional; nullptr = no deadline
  ArmedFault fault_;
  std::string kernel_;
  std::atomic<bool> fired_{false};
};

}  // namespace sgp::resilience
