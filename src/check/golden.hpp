// Golden-CSV differ for the figure/table pipelines: parses two CSV
// texts, compares them cell by cell under per-column tolerances, and
// reports the first divergent cell in a form a human can act on.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sgp::check {

/// Absolute/relative tolerance pair: cells pass when
/// |actual - expected| <= abs_tol + rel_tol * |expected|. Applied only
/// when both cells parse fully as numbers; otherwise exact match.
struct CellTolerance {
  double abs_tol = 0.0;
  double rel_tol = 0.0;
};

struct GoldenPolicy {
  /// Tolerance for numeric columns not listed in `columns`.
  CellTolerance default_tol;
  /// Per-column (by header name) overrides.
  std::map<std::string, CellTolerance> columns;
};

/// The first point where actual diverges from golden.
struct CellDiff {
  std::size_t row = 0;  ///< 0-based data row; header mismatches use 0
  std::size_t col = 0;
  std::string column;  ///< header name when known
  std::string expected;
  std::string actual;
  std::string reason;  ///< "header mismatch", "row count", "cell value"
};

std::string to_string(const CellDiff& d);

/// RFC-4180-ish parser: comma-separated, double-quote escaping, quoted
/// cells may contain commas, doubled quotes and newlines. Returns rows
/// of cells; the trailing newline does not produce an empty row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// First divergence between two CSV texts under a policy, or nullopt
/// when they match everywhere within tolerance.
std::optional<CellDiff> diff_csv(const std::string& golden,
                                 const std::string& actual,
                                 const GoldenPolicy& policy = {});

}  // namespace sgp::check
