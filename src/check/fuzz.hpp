// Property-based fuzzing of the model invariants: random-but-valid
// machine descriptors (the generator that started life in
// tests/random_machines_test.cpp, now a library so the check CLI and
// the tests share it) replayed through the InvariantChecker.
#pragma once

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "machine/descriptor.hpp"

namespace sgp::check {

struct FuzzOptions {
  FuzzOptions() {
    // The scalar floor is a calibration property of the paper machines:
    // a random descriptor may pair a strong scalar core with a weak
    // vector unit, making the vector path legitimately slower.
    check.scalar_floor = false;
  }

  CheckOptions check;
  /// Representative kernels: bandwidth-bound, compute-bound, reduction.
  std::vector<std::string> kernels{"TRIAD", "GEMM", "DOT"};
};

/// Deterministic random-but-valid machine descriptor for `seed`.
machine::MachineDescriptor random_machine(unsigned seed);

/// Replays the single-point and thread-monotonicity invariants over
/// `num_seeds` random machines starting at `first_seed`, across both
/// precisions, all placements, and serial/half/full thread counts.
CheckReport fuzz_invariants(unsigned first_seed, unsigned num_seeds,
                            const FuzzOptions& opt = {});

}  // namespace sgp::check
