// Property-based fuzzing of the model invariants: random-but-valid
// machine descriptors (the generator that started life in
// tests/random_machines_test.cpp, now a library so the check CLI and
// the tests share it) replayed through the InvariantChecker.
#pragma once

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "machine/descriptor.hpp"

namespace sgp::check {

struct FuzzOptions {
  FuzzOptions() {
    // The scalar floor is a calibration property of the paper machines:
    // a random descriptor may pair a strong scalar core with a weak
    // vector unit, making the vector path legitimately slower.
    check.scalar_floor = false;
  }

  CheckOptions check;
  /// Representative kernels: bandwidth-bound, compute-bound, reduction.
  std::vector<std::string> kernels{"TRIAD", "GEMM", "DOT"};
};

/// Deterministic random-but-valid machine descriptor for `seed`.
machine::MachineDescriptor random_machine(unsigned seed);

/// Replays the single-point and thread-monotonicity invariants over
/// `num_seeds` random machines starting at `first_seed`, across both
/// precisions, all placements, and serial/half/full thread counts.
/// `jobs` shards the seeds over a ThreadPool (0 = one per hardware
/// thread); per-seed reports are merged in seed order, so the report is
/// byte-identical to a serial run regardless of the worker count.
CheckReport fuzz_invariants(unsigned first_seed, unsigned num_seeds,
                            const FuzzOptions& opt = {}, int jobs = 1);

/// Replays every access pattern through all three cachesim replay
/// paths — the legacy vector-materialized one, the arena-decoded
/// batch/stream engine with steady-state early exit, and the
/// set-sharded parallel single-replay — on machine `m` (plus FIFO and
/// write-around config perturbations of its hierarchy) and demands
/// bit-identical per-level CacheStats, DRAM bytes, access counts and
/// steady miss rates (invariant "cachesim-replay-agreement").
CheckReport cachesim_agreement(const machine::MachineDescriptor& m);

/// cachesim_agreement over `num_seeds` random machines starting at
/// `first_seed`, sharded over `jobs` workers with deterministic
/// seed-order merging like fuzz_invariants.
CheckReport fuzz_cachesim(unsigned first_seed, unsigned num_seeds,
                          int jobs = 1);

/// Fuzzes the durable-segment parser (engine/persist.hpp): per seed,
/// builds a random-but-valid segment of encoded cache entries, checks
/// it round-trips byte-identically, then applies a seeded mutation
/// (truncation, bit flip, version bump, magic corruption, trailing
/// garbage) and demands the loader detect it — never crash, never
/// deliver a payload from a bad segment, classify deterministically,
/// and quarantine corrupt files on disk (invariant
/// "persist-segment-robustness"). Scratch files live under `dir`
/// (created if missing, one file per seed so shards never collide).
CheckReport fuzz_segments(unsigned first_seed, unsigned num_seeds,
                          const std::string& dir, int jobs = 1);

/// Fuzzes the sgp-serve request parser (serve/protocol.hpp): per seed,
/// builds a random-but-valid request line, checks it parses cleanly,
/// then applies a seeded mutation (truncation, byte garbage, bad
/// UTF-8, unknown fields, duplicate keys, oversized payloads) and
/// demands the parser never crash, classify deterministically (two
/// parses of the same bytes agree exactly), and on failure produce a
/// structured error whose rendered response line is itself valid JSON
/// (invariant "serve-request-robustness").
CheckReport fuzz_requests(unsigned first_seed, unsigned num_seeds,
                          int jobs = 1);

/// Fuzzes the machine INI serializer/parser and the machine registry
/// (invariant "machine-ini-roundtrip"): per seed, a random machine must
/// round-trip byte-identically through to_ini/from_ini — including a
/// heterogeneous-cluster variant, which exercises the explicit
/// cluster.N membership form — corrupted texts (duplicate section
/// header, duplicate key, empty value) must be rejected with a
/// line-localised error, and the descriptor must register and resolve
/// through a MachineRegistry.
CheckReport fuzz_ini_roundtrip(unsigned first_seed, unsigned num_seeds,
                               int jobs = 1);

/// Fuzzes the batched evaluation paths against the scalar oracle
/// (invariant "sim-batch-identity"): per seed, a random machine runs
/// ragged random batches — empty, single-point and larger mixed-kernel
/// grids — through (a) per-point Simulator::run, (b) a reused
/// EvalContext + Simulator::run_batch, and (c) SweepEngine::run_batch
/// twice (memo-miss pass, then the memo-hit replay), and demands every
/// TimeBreakdown field match bit-for-bit across all paths.
CheckReport fuzz_batch_identity(unsigned first_seed, unsigned num_seeds,
                                int jobs = 1);

}  // namespace sgp::check
