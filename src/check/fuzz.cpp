#include "check/fuzz.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "kernels/register_all.hpp"
#include "machine/placement.hpp"

namespace sgp::check {

machine::MachineDescriptor random_machine(unsigned seed) {
  std::mt19937 rng(seed);
  auto uniform = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto pick = [&rng](std::initializer_list<int> opts) {
    std::vector<int> v(opts);
    return v[std::uniform_int_distribution<std::size_t>(0, v.size() - 1)(
        rng)];
  };

  machine::MachineDescriptor m;
  m.name = "random-" + std::to_string(seed);

  const int cluster_width = pick({1, 2, 4});
  const int clusters_per_region = pick({1, 2, 4});
  const int regions = pick({1, 2, 4});
  const int cores_per_region = cluster_width * clusters_per_region;
  m.num_cores = cores_per_region * regions;

  machine::CoreSpec c;
  c.clock_ghz = uniform(0.8, 4.0);
  c.decode_width = pick({2, 3, 4, 5});
  c.issue_width = c.decode_width * 2;
  c.out_of_order = pick({0, 1}) != 0;
  c.fp_pipes = pick({1, 2});
  c.fma = pick({0, 1}) != 0;
  c.mem_ports = pick({1, 2, 3});
  c.scalar_eff = uniform(0.1, 0.9);
  c.stream_bw_gbs = uniform(0.5, 25.0);
  c.scalar_stream_derate = uniform(0.3, 1.0);
  if (pick({0, 1}) != 0) {
    machine::VectorUnit v;
    v.isa = "RVV v0.7.1";
    v.width_bits = pick({128, 256, 512});
    v.fp32 = true;
    v.fp64 = pick({0, 1}) != 0;
    v.efficiency_fp32 = uniform(0.2, 0.9);
    v.efficiency_fp64 = v.fp64 ? uniform(0.2, 0.9) : 0.0;
    c.vector = v;
  }
  m.core = c;

  m.l1d = machine::CacheSpec{
      static_cast<std::size_t>(pick({16, 32, 64})) * 1024, 64, 1, 32.0,
      4.0};
  m.l2 = machine::CacheSpec{
      static_cast<std::size_t>(pick({256, 512, 1024, 2048})) * 1024, 64,
      cluster_width, 24.0, 16.0};
  if (pick({0, 1}) != 0) {
    m.l3 = machine::CacheSpec{
        static_cast<std::size_t>(pick({4, 16, 64})) * 1024 * 1024, 64,
        m.num_cores, uniform(20.0, 200.0), 60.0};
    m.l3_memory_side = pick({0, 1}) != 0;
  } else {
    m.l3 = machine::CacheSpec{};
  }

  for (int r = 0; r < regions; ++r) {
    machine::NumaRegion region;
    for (int i = 0; i < cores_per_region; ++i) {
      region.cores.push_back(r * cores_per_region + i);
    }
    region.controllers = 1;
    region.mem_bw_gbs = uniform(2.0, 60.0);
    m.numa.push_back(region);
  }
  for (int base = 0; base < m.num_cores; base += cluster_width) {
    std::vector<int> cl;
    for (int i = 0; i < cluster_width; ++i) cl.push_back(base + i);
    m.clusters.push_back(cl);
  }

  m.cluster_bw_gbs = pick({0, 1}) != 0 ? uniform(1.0, 20.0) : 0.0;
  m.fork_join_us = uniform(0.5, 10.0);
  m.barrier_us_per_thread = uniform(0.01, 1.0);
  m.numa_span_sync_factor = uniform(1.0, 1.5);
  m.oversubscribe_gamma = uniform(0.0, 1.0);
  m.oversubscribe_knee =
      pick({0, 1}) != 0 ? 0.0 : cores_per_region / 2.0;
  m.atomic_rtt_ns = uniform(20.0, 150.0);
  return m;
}

CheckReport fuzz_invariants(unsigned first_seed, unsigned num_seeds,
                            const FuzzOptions& opt) {
  std::vector<core::KernelSignature> sigs;
  for (const auto& name : opt.kernels) {
    bool found = false;
    for (const auto& s : kernels::all_signatures()) {
      if (s.name == name) {
        sigs.push_back(s);
        found = true;
      }
    }
    if (!found) {
      throw std::invalid_argument("fuzz_invariants: unknown kernel " + name);
    }
  }

  CheckReport report;
  for (unsigned seed = first_seed; seed < first_seed + num_seeds; ++seed) {
    const auto m = random_machine(seed);
    const InvariantChecker checker(m, opt.check);

    const int n = m.num_cores;
    std::vector<int> thread_grid{1, std::max(1, n / 2), n};
    std::sort(thread_grid.begin(), thread_grid.end());
    thread_grid.erase(
        std::unique(thread_grid.begin(), thread_grid.end()),
        thread_grid.end());

    for (const auto& sig : sigs) {
      for (const auto prec : core::all_precisions) {
        for (const auto placement : machine::all_placements) {
          sim::SimConfig cfg;
          cfg.precision = prec;
          cfg.placement = placement;
          for (const int t : thread_grid) {
            cfg.nthreads = t;
            checker.check_point(sig, cfg, report);
          }
          checker.check_thread_monotonicity(sig, cfg, thread_grid, report);
        }
      }
    }
  }
  return report;
}

}  // namespace sgp::check
